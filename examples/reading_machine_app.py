"""The Reading&Machine deployment scenario.

The paper's application is a VR GUI in Turin's public libraries: a reader
walks up, the system recommends k = 20 books. This example reproduces that
serving path, including the operational pieces the paper's Table 2 measures:

1. build + persist the merged dataset and a trained BPR model (the
   "offline" phase);
2. restart from disk (no retraining — what the kiosk does on boot);
3. answer interactive recommendation requests with latency accounting;
4. show a reader's shelf (their borrowing history) next to the suggestions.

Run with:  python examples/reading_machine_app.py
"""

import tempfile
from pathlib import Path

from repro.app import (
    RecommendationRequest,
    RecommendationService,
    load_bpr,
    load_dataset,
    save_bpr,
    save_dataset,
)
from repro.core import BPR, BPRConfig
from repro.datasets import WorldConfig, generate_sources
from repro.eval import split_readings
from repro.pipeline import MergeConfig, build_merged_dataset


def offline_phase(workdir: Path) -> None:
    """Nightly batch job: rebuild the dataset and retrain the model."""
    print("[offline] building dataset and training BPR ...")
    sources = generate_sources(
        WorldConfig(n_books=400, n_authors=160, n_bct_users=160,
                    n_anobii_users=900)
    )
    merged, _ = build_merged_dataset(
        sources.bct, sources.anobii,
        MergeConfig(min_user_readings=10, min_book_readings=8),
    )
    split = split_readings(merged)
    model = BPR(BPRConfig(epochs=10, seed=1)).fit(split.train, merged)
    save_dataset(merged, workdir / "dataset")
    save_bpr(model, split.train, workdir / "model.npz")
    print(f"[offline] artefacts saved under {workdir}")


def serve_phase(workdir: Path) -> None:
    """Kiosk boot: load artefacts and answer requests."""
    print("[serve] loading artefacts ...")
    merged = load_dataset(workdir / "dataset")
    model, train = load_bpr(workdir / "model.npz")
    service = RecommendationService(model, train, merged)

    for user_id in merged.bct_user_ids[:3]:
        shelf = service.history(user_id)
        print(f"\n[serve] reader {user_id} — shelf has {len(shelf)} books, "
              f"e.g. '{shelf[0].title}' by {shelf[0].author}")
        print("        recommendations:")
        for book in service.recommend(RecommendationRequest(user_id, k=5)):
            print(f"          {book.rank}. {book.title} — {book.author}")

    stats = service.stats
    print(
        f"\n[serve] {stats.requests} requests, "
        f"mean {stats.mean_seconds * 1000:.2f} ms, "
        f"p95 {stats.percentile(0.95) * 1000:.2f} ms per recommendation "
        f"(paper Table 2 reports ~40-50 ms on its hardware)"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        offline_phase(workdir)
        serve_phase(workdir)


if __name__ == "__main__":
    main()

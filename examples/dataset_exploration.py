"""Dataset characterisation walk-through (Section 3, Figs 1-2).

Shows the data-integration half of the paper in isolation: source-level
cleaning reports, the entropy-guided genre aggregation (watch the 41 raw
crowd-voted labels collapse to ~12), and the merged dataset's descriptive
statistics, using the library's own columnar table engine throughout.

Run with:  python examples/dataset_exploration.py
"""

from repro.datasets import WorldConfig, generate_sources
from repro.pipeline import MergeConfig, build_merged_dataset, stats
from repro.tables import ops


def main() -> None:
    sources = generate_sources(
        WorldConfig(n_books=500, n_authors=200, n_bct_users=200,
                    n_anobii_users=1100)
    )
    merged, report = build_merged_dataset(
        sources.bct, sources.anobii,
        MergeConfig(min_user_readings=10, min_book_readings=10),
    )

    print("== pipeline report ==")
    print(report)

    model = report.genre_model
    print("\n== genre aggregation ==")
    print(f"dropped (ubiquitous/rare): {', '.join(model.dropped_genres)}")
    print(f"merges performed: {len(model.merge_trace)}")
    for absorbed, kept in model.merge_trace[:8]:
        print(f"  {absorbed!r} -> {kept!r}")
    print(f"canonical genres ({len(model.canonical_genres)}): "
          f"{', '.join(model.canonical_genres)}")

    print("\n== merged dataset summary (Fig. 1 marginals) ==")
    for key, value in stats.summary(merged).items():
        print(f"  {key:28s} {value:10.0f}")

    print("\n== genre shares of readings (Fig. 2) ==")
    shares = stats.genre_reading_shares(merged)
    for genre, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(share * 80)
        print(f"  {genre:20s} {share * 100:5.1f}%  {bar}")
    dominance = stats.two_genre_dominance_share(merged)
    print(f"\nusers dominated by two genres (>=10x): {dominance * 100:.1f}% "
          f"(paper: 99%)")

    print("\n== table-engine queries on the readings table ==")
    readings = merged.readings
    by_source = readings.group_by("source").aggregate(
        {"n": ("book_id", ops.count)}
    )
    for row in by_source.iter_rows():
        print(f"  {row['source']:8s} {row['n']} readings")
    busiest = (
        merged.readings_per_user().sort("n_readings", descending=True).head(3)
    )
    for row in busiest.iter_rows():
        print(f"  busiest reader {row['user_id']}: {row['n_readings']} readings")


if __name__ == "__main__":
    main()

"""Quickstart: build the dataset, train the paper's recommenders, evaluate.

Walks the full pipeline end to end at a small scale (~10 seconds):

1. generate the synthetic BCT + Anobii dumps (the proprietary-data stand-in);
2. run the Section-3 merge pipeline;
3. split per the Section-5 protocol;
4. fit the two personalised recommenders (Closest Items, BPR);
5. print their Table-1 KPIs and a sample recommendation list.

Run with:  python examples/quickstart.py
"""

from repro.core import BPR, BPRConfig, ClosestItems
from repro.datasets import WorldConfig, generate_sources
from repro.eval import fit_and_evaluate, split_readings
from repro.pipeline import MergeConfig, build_merged_dataset


def main() -> None:
    print("1) generating synthetic sources ...")
    sources = generate_sources(
        WorldConfig(n_books=400, n_authors=160, n_bct_users=160,
                    n_anobii_users=900)
    )
    print(f"   BCT: {sources.bct.n_books} books, {sources.bct.n_loans} loans")
    print(
        f"   Anobii: {sources.anobii.n_items} items, "
        f"{sources.anobii.n_ratings} ratings"
    )

    print("2) merging (filters, genre aggregation, activity floors) ...")
    merged, report = build_merged_dataset(
        sources.bct, sources.anobii,
        MergeConfig(min_user_readings=10, min_book_readings=8),
    )
    print("   " + str(report).replace("\n", "\n   "))

    print("3) splitting train/validation/test per user ...")
    split = split_readings(merged)
    print(
        f"   {split.train.n_interactions} training interactions, "
        f"{len(split.test_items)} BCT test users"
    )

    print("4) fitting and evaluating (k=20) ...")
    for model in (
        ClosestItems(fields=("author", "genres")),
        BPR(BPRConfig(epochs=10, seed=1)),
    ):
        result = fit_and_evaluate(model, split, merged, ks=(20,))
        kpi = result.report(20)
        print(
            f"   {model.name:15s} URR={kpi.urr:.3f} NRR={kpi.nrr:.3f} "
            f"P={kpi.precision:.3f} R={kpi.recall:.3f} "
            f"FR={kpi.first_rank:.0f} (fit {result.fit_seconds:.2f}s)"
        )

    print("5) a sample recommendation list ...")
    model = BPR(BPRConfig(epochs=10, seed=1)).fit(split.train, merged)
    user_id = merged.bct_user_ids[0]
    user_index = split.users.index_of(user_id)
    titles = dict(zip(merged.books["book_id"], merged.books["title"]))
    authors = dict(zip(merged.books["book_id"], merged.books["author"]))
    print(f"   top 5 for {user_id}:")
    for rank, item in enumerate(model.recommend(int(user_index), 5), start=1):
        book_id = int(split.items.id_of(int(item)))
        print(f"     {rank}. {titles[book_id]} — {authors[book_id]}")


if __name__ == "__main__":
    main()

"""History-size analysis: who should get CB vs CF recommendations? (Fig. 4)

The paper's Fig. 4 shows that collaborative filtering wins for light
readers while the content-based model catches up — and overtakes — for
devoted readers. This example reproduces that analysis and then
demonstrates the natural operational consequence the paper leaves as future
work: a hybrid that blends both models.

Run with:  python examples/cold_start_analysis.py
"""

from repro.core import BPR, ClosestItems, HybridRecommender
from repro.eval import evaluate_model, fit_and_evaluate
from repro.eval.groups import equal_population_bins, evaluate_by_history_size
from repro.experiments import ExperimentContext
from repro.experiments.config import config_for_scale


def main() -> None:
    context = ExperimentContext(config_for_scale("small"))
    split, merged = context.split, context.merged
    k = context.config.k

    print("evaluating by training-history size (Fig. 4) ...\n")
    bpr_eval = context.evaluation("bpr")
    cb_eval = context.evaluation("closest")
    bins = equal_population_bins(bpr_eval.per_user.train_sizes, 4)
    header = "  ".join(f"{b.label:>8s}" for b in bins)
    print(f"{'NRR by history bin':28s}  {header}")
    for name, result in (("Closest Items", cb_eval), ("BPR", bpr_eval)):
        groups = evaluate_by_history_size(result, k, bins=bins)
        cells = "  ".join(f"{v:8.3f}" for v in groups.nrr)
        print(f"{name:28s}  {cells}")

    print("\nblending both (extension beyond the paper) ...")
    for weight in (0.0, 0.25, 0.5, 0.75, 1.0):
        hybrid = HybridRecommender(
            ClosestItems(fields=context.config.closest_fields),
            BPR(context.config.bpr),
            weight=weight,
        )
        result = fit_and_evaluate(hybrid, split, merged, ks=(k,))
        kpi = result.report(k)
        print(
            f"  CB weight {weight:.2f}: URR={kpi.urr:.3f} NRR={kpi.nrr:.3f}"
        )
    print(
        "\nreading: weight 0.0 is pure BPR, 1.0 pure content-based; the\n"
        "best blend typically sits in between, confirming the models catch\n"
        "complementary signals (community taste vs author loyalty)."
    )


if __name__ == "__main__":
    main()

"""Metadata-summary ablation for the content-based recommender (Fig. 5).

The paper's Section 6.2 asks: which book metadata makes two books
"similar" in a way that predicts future borrowing? This example sweeps the
summary compositions (title / plot / keywords / author / genres and
combinations), prints the KPI table, and reports the best combination —
author + genres in the paper, and in this reproduction.

Run with:  python examples/metadata_ablation.py
"""

from repro.experiments import ExperimentContext
from repro.experiments.config import config_for_scale
from repro.experiments import fig5


def main() -> None:
    context = ExperimentContext(config_for_scale("small"))
    print("building dataset and evaluating metadata compositions ...\n")
    result = fig5.run(context)
    print(result.render())
    best = result.best()
    print(f"\nbest composition: {'+'.join(best)} "
          f"(URR={result.rows[best].urr:.3f})")
    print(
        "\npaper's finding reproduced: title-only is no better than random\n"
        "(titles carry no preference signal), while the author field —\n"
        "readers follow authors — plus the crowd-sourced Anobii genres is\n"
        "the strongest summary."
    )


if __name__ == "__main__":
    main()

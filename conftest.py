"""Repo-level pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run against
the working tree even without an editable install (the sandbox used for
development has no network, which blocks ``pip install -e .`` from fetching
the ``wheel`` build dependency).
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

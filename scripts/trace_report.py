#!/usr/bin/env python
"""Render a JSONL trace file into a per-stage timing table.

Reads a trace exported by ``python -m repro metrics --trace out.jsonl``
(or any :meth:`repro.obs.trace.Tracer.export_jsonl` output), groups the
spans by name, and prints calls / wall time / mean latency / CPU time /
share-of-total / error counts per stage. The script adds ``src/`` to
``sys.path`` itself, so it works from a plain checkout.

Usage::

    python scripts/trace_report.py out.jsonl [--top N]
"""

import argparse
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs.report import (  # noqa: E402
    load_trace_jsonl,
    render_stage_table,
    stage_profiles,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="per-stage timing table for a JSONL trace"
    )
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="only show the N stages with the most wall time",
    )
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"trace_report: {path} does not exist", file=sys.stderr)
        return 1
    spans = load_trace_jsonl(path)
    if not spans:
        print(f"trace_report: {path} contains no spans", file=sys.stderr)
        return 1
    profiles = stage_profiles(spans)
    if args.top is not None:
        keep = {p.name for p in profiles[: args.top]}
        spans = [s for s in spans if s.get("name") in keep]
    errors = sum(p.errors for p in profiles)
    print(f"trace {path}: {len(spans)} spans, {len(profiles)} stages")
    print(render_stage_table(spans))
    if errors:
        print(f"({errors} span(s) ended in error)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

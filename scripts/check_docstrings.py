#!/usr/bin/env python
"""Docstring-coverage gate for the growth-layer packages (thin shim).

The checking logic lives in :mod:`repro.analysis.rules.docs`, where it
runs as the ``docstrings`` rule of ``python -m repro check`` alongside
the other repository invariants. This script keeps the original
standalone CLI and exit codes so CI and existing tests are untouched:
it bootstraps ``src/`` onto ``sys.path`` (stdlib only — the docs CI job
has no third-party packages installed) and re-exports the rule's
functions under their historical names.

Usage::

    python scripts/check_docstrings.py [src-root]
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.rules.docs import (  # noqa: E402
    CHECKED_PACKAGES,
    check_packages,
    missing_docstrings,
    missing_docstrings_in_tree,
)

__all__ = [
    "CHECKED_PACKAGES",
    "check_packages",
    "missing_docstrings",
    "missing_docstrings_in_tree",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """Check the gated packages under ``src-root``; 0 = fully documented."""
    argv = sys.argv[1:] if argv is None else argv
    src_root = (
        Path(argv[0]).resolve()
        if argv
        else Path(__file__).resolve().parent.parent / "src"
    )
    failures = check_packages(src_root)
    if failures:
        print(f"{len(failures)} undocumented public definition(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        "docstring check: public API of "
        + ", ".join(CHECKED_PACKAGES)
        + " is fully documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

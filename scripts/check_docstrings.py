#!/usr/bin/env python
"""Docstring-coverage gate for the growth-layer packages.

Walks the packages named in :data:`CHECKED_PACKAGES` with ``ast`` (no
imports, so it is fast and side-effect free) and requires a docstring
on:

- every module,
- every public class,
- every public function and public method.

"Public" means the name does not start with ``_`` and is not inside a
private class; ``__init__`` and friends are exempt (the class docstring
documents construction — argparse-style), as are ``@overload`` stubs.
CI runs this so new public surface in the parallel, observability, and
resilience layers cannot land undocumented.

Usage::

    python scripts/check_docstrings.py [src-root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Packages (relative to ``src/``) whose public API must be documented.
CHECKED_PACKAGES = (
    "repro/parallel",
    "repro/obs",
    "repro/resilience",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _has_docstring(node: ast.AST) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _missing_in_scope(
    node: ast.AST, scope: str, public_scope: bool
) -> list[tuple[int, str]]:
    """``(line, qualified name)`` for every undocumented public def."""
    missing: list[tuple[int, str]] = []
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not public_scope or not _is_public(child.name):
                continue
            qualified = f"{scope}{child.name}"
            if not _has_docstring(child):
                missing.append((child.lineno, f"function {qualified}"))
        elif isinstance(child, ast.ClassDef):
            class_public = public_scope and _is_public(child.name)
            qualified = f"{scope}{child.name}"
            if class_public and not _has_docstring(child):
                missing.append((child.lineno, f"class {qualified}"))
            missing.extend(
                _missing_in_scope(child, f"{qualified}.", class_public)
            )
    return missing


def missing_docstrings(path: Path) -> list[tuple[int, str]]:
    """All undocumented public definitions in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    missing = []
    if not _has_docstring(tree):
        missing.append((1, "module"))
    missing.extend(_missing_in_scope(tree, "", True))
    return missing


def check_packages(src_root: Path) -> list[str]:
    """Failure lines for every undocumented definition under the gate."""
    failures = []
    for package in CHECKED_PACKAGES:
        package_root = src_root / package
        if not package_root.is_dir():
            failures.append(f"{package}: package directory missing")
            continue
        for path in sorted(package_root.rglob("*.py")):
            for line, what in missing_docstrings(path):
                failures.append(
                    f"{path.relative_to(src_root)}:{line}: "
                    f"missing docstring on {what}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    src_root = (
        Path(argv[0]).resolve()
        if argv
        else Path(__file__).resolve().parent.parent / "src"
    )
    failures = check_packages(src_root)
    if failures:
        print(f"{len(failures)} undocumented public definition(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        "docstring check: public API of "
        + ", ".join(CHECKED_PACKAGES)
        + " is fully documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

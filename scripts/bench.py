#!/usr/bin/env python
"""Run the fast-path perf bench and write ``BENCH_fastpath.json``.

Equivalent to ``python -m repro bench``; kept as a standalone entry point
so CI and cron jobs can call it without the experiment CLI. The script
adds ``src/`` to ``sys.path`` itself, so it works from a plain checkout.

Usage::

    python scripts/bench.py [--bench-output PATH] [--repeats N] [--quick]
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))

#!/usr/bin/env python
"""Fail on broken intra-repo links in the markdown documentation.

Scans every tracked ``*.md`` file under the repository root (and
``docs/``) for markdown links ``[text](target)``. External targets
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#section``)
are ignored; every other target must resolve to an existing file or
directory relative to the file that links it (an ``#anchor`` suffix is
stripped before the check). CI runs this so documentation cannot drift
ahead of the tree it describes.

Usage::

    python scripts/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — target captured lazily so nested parens in text
#: don't confuse the scan; images (``![alt](...)``) match too, which is
#: intended.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Directories never scanned for markdown sources.
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules"}

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` under ``root``, skipping VCS/cache directories."""
    return sorted(
        path
        for path in root.rglob("*.md")
        if not any(part in SKIP_DIRS for part in path.parts)
    )


def broken_links(path: Path, root: Path) -> list[tuple[int, str]]:
    """``(line number, target)`` for every unresolvable link in ``path``."""
    failures: list[tuple[int, str]] = []
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if relative.startswith("/"):
                resolved = root / relative.lstrip("/")
            else:
                resolved = path.parent / relative
            if not resolved.exists():
                failures.append((line_number, target))
    return failures


def check_tree(root: Path) -> list[str]:
    """Human-readable failure lines for every broken link under ``root``."""
    failures = []
    for path in markdown_files(root):
        for line_number, target in broken_links(path, root):
            failures.append(
                f"{path.relative_to(root)}:{line_number}: broken link -> "
                f"{target}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    failures = check_tree(root)
    if failures:
        print(f"{len(failures)} broken intra-repo link(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    count = len(markdown_files(root))
    print(f"link check: {count} markdown file(s), all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())

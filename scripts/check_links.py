#!/usr/bin/env python
"""Fail on broken intra-repo markdown links (thin shim).

The checking logic lives in :mod:`repro.analysis.rules.docs`, where it
runs as the ``links`` rule of ``python -m repro check`` alongside the
other repository invariants. This script keeps the original standalone
CLI and exit codes so CI and existing tests are untouched: it
bootstraps ``src/`` onto ``sys.path`` (stdlib only — the docs CI job
has no third-party packages installed) and re-exports the rule's
functions under their historical names.

Usage::

    python scripts/check_links.py [root]
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.rules.docs import (  # noqa: E402
    EXTERNAL_PREFIXES,
    LINK_PATTERN,
    SKIP_DIRS,
    broken_links,
    check_tree,
    markdown_files,
)

__all__ = [
    "EXTERNAL_PREFIXES",
    "LINK_PATTERN",
    "SKIP_DIRS",
    "broken_links",
    "check_tree",
    "markdown_files",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """Check every markdown file under ``root``; 0 = all links resolve."""
    argv = sys.argv[1:] if argv is None else argv
    root = (
        Path(argv[0]).resolve()
        if argv
        else Path(__file__).resolve().parent.parent
    )
    failures = check_tree(root)
    if failures:
        print(f"{len(failures)} broken intra-repo link(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    count = len(markdown_files(root))
    print(f"link check: {count} markdown file(s), all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())

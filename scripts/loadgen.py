#!/usr/bin/env python
"""Concurrent load generator for the :class:`RecommendationService`.

Builds the demo world (the same fixture ``python -m repro metrics`` uses),
fits BPR, stands up one shared service instance, and hammers it from N
threads at once. Every thread draws a seeded stream of user ids — mostly
known users, a slice of cold-start ones — so the run exercises the cache,
the primary scoring path, and the degradation chain under real contention.

When the storm settles the script audits the shared accounting: the
request counter, the cache hit/miss tally, and the latency histogram
(the single source behind ``ServiceStats.percentile`` and ``health()``)
must all equal the number of requests issued — a lost increment anywhere
fails the run. It then prints throughput and p50/p95/p99 latency and
exits non-zero if any request errored.

Usage::

    python scripts/loadgen.py [--threads 8] [--requests 2000] [--seed 0]
    python scripts/loadgen.py --retrieval ivf --probe-cells 6 --zipf 1.1

``--retrieval ivf`` serves through the approximate IVF tier (see
``docs/serving.md``); ``--zipf S`` draws users from a seeded Zipf
popularity distribution (p ∝ 1/rank^S) instead of uniformly, so the
cache and shard residency see realistic head/tail skew.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.app.service import (  # noqa: E402
    RecommendationRequest,
    RecommendationService,
)
from repro.core.bpr import BPR, BPRConfig  # noqa: E402
from repro.core.most_read import MostReadItems  # noqa: E402
from repro.datasets.synthetic import generate_sources  # noqa: E402
from repro.datasets.world import WorldConfig  # noqa: E402
from repro.eval.split import split_readings  # noqa: E402
from repro.obs.demo import DEMO_EPOCHS, DEMO_MERGE, DEMO_WORLD  # noqa: E402
from repro.pipeline.merge import build_merged_dataset  # noqa: E402

#: One in this many requests targets an unknown (cold-start) user.
COLD_START_EVERY = 10


def build_service(
    seed: int,
    cache_size: int,
    retrieval: str = "exact",
    probe_cells: int | None = None,
) -> RecommendationService:
    """Stand up a demo-world service (mirrors ``repro.obs.demo``)."""
    world = WorldConfig(
        n_books=DEMO_WORLD.n_books,
        n_authors=DEMO_WORLD.n_authors,
        n_bct_users=DEMO_WORLD.n_bct_users,
        n_anobii_users=DEMO_WORLD.n_anobii_users,
        seed=seed,
    )
    sources = generate_sources(world)
    merged, _ = build_merged_dataset(sources.bct, sources.anobii, DEMO_MERGE)
    split = split_readings(merged)
    model = BPR(BPRConfig(epochs=DEMO_EPOCHS, seed=seed)).fit(split.train)
    most_read = MostReadItems().fit(split.train, merged)
    return RecommendationService(
        model,
        split.train,
        merged,
        cold_start_fallback=most_read,
        cache_size=cache_size,
        degrade_unknown_users=True,
        retrieval=retrieval,
        probe_cells=probe_cells,
    )


def run_load(
    service: RecommendationService,
    threads: int,
    requests: int,
    k: int,
    seed: int,
    zipf: float | None = None,
) -> dict:
    """Fire ``requests`` requests from ``threads`` threads; return a report.

    Each worker thread gets its own seeded RNG (``seed + thread index``)
    and an equal share of the request budget, so a run is reproducible
    up to scheduling order — which is exactly the order the shared
    accounting must be indifferent to. With ``zipf`` set, user draws
    follow a Zipf popularity law over a seeded rank permutation
    (p ∝ 1/rank^zipf) instead of the uniform default.
    """
    users = [str(user) for user in service.train.users.ids]
    cum_weights: list[float] | None = None
    if zipf is not None:
        random.Random(seed).shuffle(users)
        total = 0.0
        cum_weights = []
        for rank in range(1, len(users) + 1):
            total += 1.0 / rank ** zipf
            cum_weights.append(total)
    per_thread = [requests // threads] * threads
    for index in range(requests % threads):
        per_thread[index] += 1
    errors: list[str] = []
    errors_lock = threading.Lock()

    def worker(thread_index: int, budget: int) -> None:
        rng = random.Random(seed + thread_index)
        for shot in range(budget):
            if shot % COLD_START_EVERY == COLD_START_EVERY - 1:
                user_id = f"cold-start-{thread_index}-{shot}"
            elif cum_weights is not None:
                user_id = rng.choices(users, cum_weights=cum_weights)[0]
            else:
                user_id = rng.choice(users)
            try:
                response = service.recommend_response(
                    RecommendationRequest(user_id=user_id, k=k)
                )
            except Exception as exc:  # noqa: BLE001 — the run must audit all
                with errors_lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                continue
            if not response.books:
                with errors_lock:
                    errors.append(
                        f"empty response for {user_id!r} "
                        f"(served_by={response.served_by})"
                    )

    pool = [
        threading.Thread(target=worker, args=(index, budget))
        for index, budget in enumerate(per_thread)
    ]
    started = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started

    stats = service.stats
    audit_failures = []
    if stats.requests != requests:
        audit_failures.append(
            f"request counter {stats.requests} != issued {requests}"
        )
    if stats.cache_hits + stats.cache_misses != requests:
        audit_failures.append(
            f"cache tally {stats.cache_hits}+{stats.cache_misses} "
            f"!= issued {requests}"
        )
    observed = stats.histogram.count
    if observed != requests:
        audit_failures.append(
            f"histogram observations {observed} != issued {requests}"
        )
    return {
        "threads": threads,
        "requests": requests,
        "k": k,
        "zipf": zipf,
        "seconds": round(elapsed, 4),
        "throughput_rps": round(requests / elapsed, 1) if elapsed else None,
        "latency": {
            "mean_seconds": round(stats.mean_seconds, 6),
            "p50": round(stats.percentile(0.50), 6),
            "p95": round(stats.percentile(0.95), 6),
            "p99": round(stats.percentile(0.99), 6),
        },
        "cache_hit_rate": round(stats.cache_hit_rate, 4),
        "degradations": dict(stats.degradations),
        "errors": len(errors),
        "error_samples": errors[:5],
        "audit_failures": audit_failures,
        "health": service.health(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Drive the recommendation service from many threads."
    )
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--requests", type=int, default=2000,
                        help="total requests across all threads")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--retrieval", choices=("exact", "ivf"),
                        default="exact",
                        help="serving retrieval tier (see docs/serving.md)")
    parser.add_argument("--probe-cells", type=int, default=None,
                        help="IVF probe width (default: half the cells)")
    parser.add_argument("--zipf", type=float, default=None, metavar="S",
                        help="draw users Zipf-distributed with exponent S "
                        "instead of uniformly")
    args = parser.parse_args(argv)
    if args.threads < 1 or args.requests < 1:
        parser.error("--threads and --requests must be >= 1")
    if args.zipf is not None and args.zipf <= 0:
        parser.error("--zipf must be > 0")

    print(f"building demo-world service (seed={args.seed}) ...", flush=True)
    service = build_service(
        args.seed, args.cache_size,
        retrieval=args.retrieval, probe_cells=args.probe_cells,
    )
    print(
        f"firing {args.requests} requests from {args.threads} threads ...",
        flush=True,
    )
    report = run_load(
        service, args.threads, args.requests, args.k, args.seed,
        zipf=args.zipf,
    )
    print(json.dumps(report, indent=2))
    if report["audit_failures"]:
        print("ACCOUNTING AUDIT FAILED:", *report["audit_failures"],
              sep="\n  ", file=sys.stderr)
        return 1
    if report["errors"]:
        print(f"{report['errors']} request(s) errored", file=sys.stderr)
        return 1
    print(
        f"OK: {args.requests} requests, 0 errors, "
        f"p99={report['latency']['p99']}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared fixtures: one tiny world, pipeline output, and split per session.

Dataset generation and model fitting dominate test runtime, so everything
derived from the default tiny configuration is session-scoped and
treated as read-only by tests. Tests that need a differently-shaped world
build their own (see ``make_world``).
"""

from __future__ import annotations

import pytest

from repro.core import BPR, BPRConfig
from repro.datasets import WorldConfig, generate_sources
from repro.eval import split_readings
from repro.experiments import ExperimentContext
from repro.experiments.config import ExperimentConfig
from repro.pipeline import MergeConfig, build_merged_dataset

TINY_WORLD = WorldConfig(
    n_books=220,
    n_authors=90,
    n_bct_users=90,
    n_anobii_users=380,
    seed=424242,
)

TINY_MERGE = MergeConfig(min_user_readings=10, min_book_readings=5)

TINY_BPR = BPRConfig(epochs=6, seed=1)


@pytest.fixture(scope="session")
def tiny_sources():
    """Raw BCT + Anobii dumps of the tiny world (read-only)."""
    return generate_sources(TINY_WORLD)


@pytest.fixture(scope="session")
def tiny_world(tiny_sources):
    return tiny_sources.world


@pytest.fixture(scope="session")
def tiny_merged(tiny_sources):
    """The merged dataset of the tiny world (read-only)."""
    merged, _ = build_merged_dataset(
        tiny_sources.bct, tiny_sources.anobii, TINY_MERGE
    )
    return merged


@pytest.fixture(scope="session")
def tiny_merge_report(tiny_sources):
    _, report = build_merged_dataset(
        tiny_sources.bct, tiny_sources.anobii, TINY_MERGE
    )
    return report


@pytest.fixture(scope="session")
def tiny_split(tiny_merged):
    """The paper's train/val/test split over the tiny dataset (read-only)."""
    return split_readings(tiny_merged)


@pytest.fixture(scope="session")
def tiny_bpr(tiny_split, tiny_merged):
    """A fitted BPR model on the tiny dataset (read-only)."""
    model = BPR(TINY_BPR)
    model.fit(tiny_split.train, tiny_merged)
    return model


@pytest.fixture(scope="session")
def tiny_context():
    """An ExperimentContext over the tiny configuration (read-only)."""
    config = ExperimentConfig(
        scale="small",
        seed=TINY_WORLD.seed,
        world=TINY_WORLD,
        merge=TINY_MERGE,
        bpr=TINY_BPR,
    )
    return ExperimentContext(config)

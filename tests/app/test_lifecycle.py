"""ModelStore: versioned publish / rollback / gc and the health report.

The store's contract is that published versions are immutable, numbered
monotonically, and checksummed; ``CURRENT`` only ever names a version
that passed verification at publish (or rollback) time. These tests
cover the happy paths and every documented error; the crash-safety half
of the contract lives in ``tests/resilience/test_lifecycle_chaos.py``.
"""

import numpy as np
import pytest

from repro.app.lifecycle import (
    CURRENT_NAME,
    DEFAULT_GC_KEEP,
    ModelStore,
    ModelVersion,
    version_name,
)
from repro.errors import PersistenceError
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def store(tmp_path):
    return ModelStore(tmp_path / "store")


@pytest.fixture()
def published(store, tiny_bpr, tiny_split):
    """A store with one published version."""
    version = store.publish(tiny_bpr, tiny_split.train)
    return store, version


def corrupt(version: ModelVersion) -> None:
    """Flip bytes in a version's artefact so its checksum no longer holds."""
    data = bytearray(version.model_path.read_bytes())
    data[:16] = b"\x00" * 16
    version.model_path.write_bytes(bytes(data))


class TestPublish:
    def test_first_publish_creates_v1_and_points_current(self, published):
        store, version = published
        assert version.name == "v000001"
        assert version.number == 1
        assert version.model_path.exists()
        assert version.model_path.with_name(
            "model.npz.manifest.json"
        ).exists()
        assert store.current_name() == "v000001"
        assert store.current() == version

    def test_versions_are_monotonic(self, published, tiny_bpr, tiny_split):
        store, _ = published
        second = store.publish(tiny_bpr, tiny_split.train)
        third = store.publish(tiny_bpr, tiny_split.train)
        assert [v.name for v in store.versions()] == [
            "v000001", "v000002", "v000003",
        ]
        assert second.number == 2 and third.number == 3
        assert store.current() == third

    def test_load_round_trips_factors(self, published, tiny_bpr):
        store, _ = published
        model, train = store.load()
        assert np.array_equal(model.user_factors, tiny_bpr.user_factors)
        assert np.array_equal(model.item_factors, tiny_bpr.item_factors)
        assert train.n_users == len(tiny_bpr.user_factors)

    def test_publish_counts_metric(self, tmp_path, tiny_bpr, tiny_split):
        metrics = MetricsRegistry()
        store = ModelStore(tmp_path / "store", metrics=metrics)
        store.publish(tiny_bpr, tiny_split.train)
        store.publish(tiny_bpr, tiny_split.train)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["lifecycle.publishes"]["value"] == 2


class TestResolve:
    def test_resolve_by_name_number_instance_and_none(self, published):
        store, version = published
        assert store.resolve("v000001") == version
        assert store.resolve(1) == version
        assert store.resolve(version) == version
        assert store.resolve(None) == version

    def test_unknown_version_raises(self, published):
        store, _ = published
        with pytest.raises(PersistenceError, match="no version"):
            store.resolve("v000042")
        with pytest.raises(PersistenceError, match="no version"):
            store.resolve(42)

    def test_empty_store_has_no_current(self, store):
        assert store.versions() == []
        assert store.current_name() is None
        assert store.current() is None
        with pytest.raises(PersistenceError, match="no published version"):
            store.resolve(None)

    def test_dangling_current_raises(self, published):
        store, version = published
        (store.root / CURRENT_NAME).write_text("v000099\n", encoding="utf-8")
        with pytest.raises(PersistenceError, match="does not exist"):
            store.current()

    def test_version_name_is_zero_padded(self):
        assert version_name(1) == "v000001"
        assert version_name(123456) == "v123456"


class TestVerify:
    def test_status_ok_for_intact_version(self, published):
        store, version = published
        assert store.status(version) == "ok"
        manifest = store.verify(version)
        assert manifest["kind"] == "bpr-model"

    def test_status_names_the_error_for_corrupt_version(self, published):
        store, version = published
        corrupt(version)
        assert store.status(version) == "ChecksumMismatchError"
        with pytest.raises(PersistenceError):
            store.load(version)


class TestRollback:
    def test_default_rollback_targets_previous_intact(
        self, published, tiny_bpr, tiny_split
    ):
        store, first = published
        store.publish(tiny_bpr, tiny_split.train)
        target = store.rollback()
        assert target == first
        assert store.current() == first

    def test_rollback_skips_broken_versions(
        self, published, tiny_bpr, tiny_split
    ):
        store, first = published
        second = store.publish(tiny_bpr, tiny_split.train)
        store.publish(tiny_bpr, tiny_split.train)
        corrupt(second)
        assert store.rollback() == first

    def test_explicit_rollback_verifies_target(
        self, published, tiny_bpr, tiny_split
    ):
        store, first = published
        store.publish(tiny_bpr, tiny_split.train)
        corrupt(first)
        with pytest.raises(PersistenceError):
            store.rollback(to=first)
        # CURRENT never moved onto the broken target.
        assert store.current_name() == "v000002"

    def test_rollback_with_nothing_earlier_raises(self, published):
        store, _ = published
        with pytest.raises(PersistenceError, match="no intact earlier"):
            store.rollback()


class TestGc:
    def test_keeps_newest_intact_and_current(
        self, published, tiny_bpr, tiny_split
    ):
        store, first = published
        for _ in range(3):
            store.publish(tiny_bpr, tiny_split.train)
        store.rollback(to=first)  # CURRENT pinned to the oldest
        removed = store.gc(keep=DEFAULT_GC_KEEP)
        kept = {v.name for v in store.versions()}
        # the two newest intact versions plus the CURRENT target survive
        assert kept == {"v000001", "v000003", "v000004"}
        assert {v.name for v in removed} == {"v000002"}

    def test_removes_broken_non_current_versions(
        self, published, tiny_bpr, tiny_split
    ):
        store, _ = published
        second = store.publish(tiny_bpr, tiny_split.train)
        store.publish(tiny_bpr, tiny_split.train)
        corrupt(second)
        removed = store.gc(keep=2)
        assert {v.name for v in removed} == {"v000002"}

    def test_never_removes_current_even_if_corrupt(
        self, published, tiny_bpr, tiny_split
    ):
        store, _ = published
        current = store.publish(tiny_bpr, tiny_split.train)
        corrupt(current)
        store.gc(keep=1)
        assert store.current_name() == current.name
        assert current.path.exists()

    def test_keep_must_be_positive(self, published):
        store, _ = published
        with pytest.raises(PersistenceError, match="keep must be"):
            store.gc(keep=0)

    def test_gc_after_publishes_numbers_keep_growing(
        self, published, tiny_bpr, tiny_split
    ):
        store, _ = published
        for _ in range(2):
            store.publish(tiny_bpr, tiny_split.train)
        store.gc(keep=1)
        version = store.publish(tiny_bpr, tiny_split.train)
        # numbers are monotonic even across gc: no name is ever reused
        assert version.name == "v000004"


class TestHealthReport:
    def test_healthy_store(self, published, tiny_bpr, tiny_split):
        store, _ = published
        store.publish(tiny_bpr, tiny_split.train)
        report = store.health_report()
        assert report["status"] == "ok"
        assert report["current"] == "v000002"
        assert report["current_status"] == "ok"
        assert [v["status"] for v in report["versions"]] == ["ok", "ok"]

    def test_broken_old_version_does_not_fail_the_store(
        self, published, tiny_bpr, tiny_split
    ):
        store, first = published
        store.publish(tiny_bpr, tiny_split.train)
        corrupt(first)
        report = store.health_report()
        assert report["status"] == "ok"
        statuses = {v["name"]: v["status"] for v in report["versions"]}
        assert statuses["v000001"] == "ChecksumMismatchError"

    def test_dangling_current_is_corrupt(self, published):
        store, _ = published
        (store.root / CURRENT_NAME).write_text("v000099\n", encoding="utf-8")
        report = store.health_report()
        assert report["status"] == "corrupt"
        assert report["current_status"] == "dangling"

    def test_corrupt_current_is_corrupt(self, published):
        store, version = published
        corrupt(version)
        report = store.health_report()
        assert report["status"] == "corrupt"
        assert report["current_status"] == "ChecksumMismatchError"

    def test_unpublished_store(self, store):
        report = store.health_report()
        assert report["current"] is None
        assert report["current_status"] == "unpublished"
        assert report["status"] == "corrupt"


class TestIsStore:
    def test_recognises_store_directories(self, published, tmp_path):
        store, _ = published
        assert ModelStore.is_store(store.root)
        assert not ModelStore.is_store(tmp_path)  # plain directory
        assert not ModelStore.is_store(tmp_path / "missing")

    def test_version_directory_without_current_counts(self, tmp_path):
        (tmp_path / "v000001").mkdir()
        assert ModelStore.is_store(tmp_path)

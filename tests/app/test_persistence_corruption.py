"""Corruption coverage: every broken artefact fails with a precise error."""

import json

import numpy as np
import pytest

from repro.app.persistence import (
    BPR_KIND,
    DATASET_KIND,
    load_bpr,
    load_dataset,
    save_bpr,
    save_dataset,
)
from repro.errors import (
    ArtefactVersionError,
    ChecksumMismatchError,
    ManifestMissingError,
    PersistenceError,
    TruncatedArtefactError,
)
from repro.resilience.artefacts import (
    MANIFEST_NAME,
    manifest_path_for,
    write_manifest,
)


@pytest.fixture()
def saved_model(tmp_path, tiny_bpr, tiny_split):
    path = tmp_path / "model.npz"
    save_bpr(tiny_bpr, tiny_split.train, path)
    return path


@pytest.fixture()
def saved_dataset(tmp_path, tiny_merged):
    directory = tmp_path / "dataset"
    save_dataset(tiny_merged, directory)
    return directory


def rewrite_npz(path, **overrides):
    """Rewrite the archive with some arrays replaced, manifest kept valid."""
    with np.load(path, allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files}
    arrays.update(overrides)
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    write_manifest(path, [path], kind=BPR_KIND)


class TestModelCorruption:
    def test_roundtrip_is_clean(self, saved_model, tiny_bpr):
        model, train = load_bpr(saved_model)
        assert np.array_equal(model.item_factors, tiny_bpr.item_factors)
        assert train.n_users == len(train.users)

    def test_truncated_archive(self, saved_model):
        blob = saved_model.read_bytes()
        saved_model.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TruncatedArtefactError, match="truncated"):
            load_bpr(saved_model)

    def test_flipped_bytes_same_length(self, saved_model):
        blob = bytearray(saved_model.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        saved_model.write_bytes(bytes(blob))
        with pytest.raises(ChecksumMismatchError, match="corrupt"):
            load_bpr(saved_model)

    def test_missing_manifest(self, saved_model):
        manifest_path_for(saved_model).unlink()
        with pytest.raises(ManifestMissingError, match="manifest"):
            load_bpr(saved_model)

    def test_verify_false_escape_hatch(self, saved_model, tiny_bpr):
        manifest_path_for(saved_model).unlink()
        model, _ = load_bpr(saved_model, verify=False)
        assert np.array_equal(model.item_factors, tiny_bpr.item_factors)

    def test_future_manifest_version(self, saved_model):
        manifest_path = manifest_path_for(saved_model)
        manifest = json.loads(manifest_path.read_text())
        manifest["manifest_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtefactVersionError, match="manifest_version 99"):
            load_bpr(saved_model)

    def test_kind_mismatch(self, saved_model):
        manifest_path = manifest_path_for(saved_model)
        manifest = json.loads(manifest_path.read_text())
        manifest["kind"] = DATASET_KIND
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtefactVersionError, match="expected 'bpr-model'"):
            load_bpr(saved_model)

    def test_future_format_version(self, saved_model):
        rewrite_npz(
            saved_model,
            format_version=np.asarray([99], dtype=np.int64),
        )
        with pytest.raises(ArtefactVersionError, match="format version 99"):
            load_bpr(saved_model)

    def test_tampered_item_factor_shape(self, saved_model):
        with np.load(saved_model, allow_pickle=False) as archive:
            item_factors = archive["item_factors"]
        rewrite_npz(saved_model, item_factors=item_factors[:-3])
        with pytest.raises(PersistenceError, match="item factors"):
            load_bpr(saved_model)

    def test_tampered_user_factor_shape(self, saved_model):
        with np.load(saved_model, allow_pickle=False) as archive:
            user_factors = archive["user_factors"]
        rewrite_npz(saved_model, user_factors=user_factors[:, :-1])
        with pytest.raises(PersistenceError, match="user factors"):
            load_bpr(saved_model)

    def test_inconsistent_csr_lengths(self, saved_model):
        with np.load(saved_model, allow_pickle=False) as archive:
            data = archive["train_data"]
        rewrite_npz(saved_model, train_data=data[:-5])
        with pytest.raises(PersistenceError, match="disagree"):
            load_bpr(saved_model)

    def test_non_monotonic_indptr(self, saved_model):
        with np.load(saved_model, allow_pickle=False) as archive:
            indptr = archive["train_indptr"].copy()
        indptr[1], indptr[2] = indptr[2] + 1, indptr[1]
        rewrite_npz(saved_model, train_indptr=indptr)
        with pytest.raises(PersistenceError, match="monotonic"):
            load_bpr(saved_model)

    def test_out_of_range_indices(self, saved_model):
        with np.load(saved_model, allow_pickle=False) as archive:
            indices = archive["train_indices"].copy()
        indices[0] = 10_000_000
        rewrite_npz(saved_model, train_indices=indices)
        with pytest.raises(PersistenceError, match="outside"):
            load_bpr(saved_model)

    def test_missing_model_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no saved model"):
            load_bpr(tmp_path / "nope.npz")


class TestDatasetCorruption:
    def test_roundtrip_is_clean(self, saved_dataset, tiny_merged):
        loaded = load_dataset(saved_dataset)
        assert list(loaded.books["book_id"]) == list(
            tiny_merged.books["book_id"]
        )

    def test_truncated_csv(self, saved_dataset):
        readings = saved_dataset / "readings.csv"
        blob = readings.read_bytes()
        readings.write_bytes(blob[: len(blob) - 40])
        with pytest.raises(TruncatedArtefactError, match="truncated"):
            load_dataset(saved_dataset)

    def test_checksum_mismatched_csv(self, saved_dataset):
        books = saved_dataset / "books.csv"
        blob = bytearray(books.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        books.write_bytes(bytes(blob))
        with pytest.raises(ChecksumMismatchError, match="books.csv"):
            load_dataset(saved_dataset)

    def test_missing_manifest(self, saved_dataset):
        (saved_dataset / MANIFEST_NAME).unlink()
        with pytest.raises(ManifestMissingError):
            load_dataset(saved_dataset)

    def test_verify_false_escape_hatch(self, saved_dataset, tiny_merged):
        (saved_dataset / MANIFEST_NAME).unlink()
        loaded = load_dataset(saved_dataset, verify=False)
        assert loaded.books.num_rows == tiny_merged.books.num_rows

    def test_missing_table(self, saved_dataset):
        (saved_dataset / "genres.csv").unlink()
        with pytest.raises(PersistenceError, match="genres.csv"):
            load_dataset(saved_dataset)

    def test_kind_mismatch(self, saved_dataset):
        manifest_path = saved_dataset / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["kind"] = BPR_KIND
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtefactVersionError, match="expected 'dataset'"):
            load_dataset(saved_dataset)

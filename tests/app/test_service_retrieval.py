"""Service-level retrieval-tier tests: IVF serving, shard-backed scoring,
batch coalescing, the recall gauge, and the cache/model swap race."""

import numpy as np
import pytest

from repro.app.service import (
    RETRIEVAL_EXACT,
    RETRIEVAL_IVF,
    RecommendationRequest,
    RecommendationService,
)
from repro.core.bpr import BPR
from repro.core.most_read import MostReadItems
from repro.errors import ConfigurationError
from repro.retrieval.ivf import default_probe_cells
from repro.retrieval.shards import UserShardStore, write_user_shards

from tests.conftest import TINY_BPR

K = 10


@pytest.fixture(scope="module")
def exact_service(tiny_bpr, tiny_split, tiny_merged):
    return RecommendationService(
        tiny_bpr, tiny_split.train, tiny_merged, cache_size=0
    )


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, tiny_bpr):
    root = tmp_path_factory.mktemp("service-shards") / "user-shards"
    return write_user_shards(root, tiny_bpr.user_factors, n_shards=6)


@pytest.fixture(scope="module")
def user_ids(tiny_split):
    return [str(uid) for uid in tiny_split.train.users.ids[:40]]


def serve_lists(service, user_ids, k=K):
    return [
        [book.book_id for book in service.recommend(
            RecommendationRequest(user_id=user_id, k=k)
        )]
        for user_id in user_ids
    ]


def batch_lists(service, user_ids, k=K):
    return [
        [book.book_id for book in books]
        for books in service.recommend_many(
            [RecommendationRequest(user_id=uid, k=k) for uid in user_ids]
        )
    ]


class TestProbeAllEquivalence:
    def test_probe_all_single_requests_match_exact(
        self, tiny_bpr, tiny_split, tiny_merged, exact_service, user_ids
    ):
        probe_all = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF, probe_cells=tiny_split.train.n_items,
        )
        assert serve_lists(probe_all, user_ids) == serve_lists(
            exact_service, user_ids
        )

    def test_probe_all_batches_match_exact(
        self, tiny_bpr, tiny_split, tiny_merged, exact_service, user_ids
    ):
        probe_all = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF, probe_cells=tiny_split.train.n_items,
        )
        assert batch_lists(probe_all, user_ids) == serve_lists(
            exact_service, user_ids
        )


class TestShardStoreEquivalence:
    def test_shard_single_requests_match_exact(
        self, tiny_bpr, tiny_split, tiny_merged, exact_service, store_root,
        user_ids,
    ):
        sharded = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            user_shards=UserShardStore(store_root, max_resident=2),
        )
        assert serve_lists(sharded, user_ids) == serve_lists(
            exact_service, user_ids
        )

    def test_shard_batches_match_exact_and_stay_bounded(
        self, tiny_bpr, tiny_split, tiny_merged, exact_service, store_root,
        user_ids,
    ):
        store = UserShardStore(store_root, max_resident=2)
        sharded = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            user_shards=store,
        )
        assert batch_lists(sharded, user_ids) == serve_lists(
            exact_service, user_ids
        )
        assert store.stats()["resident"] <= 2

    def test_batches_coalesce_per_shard(
        self, tiny_bpr, tiny_split, tiny_merged, store_root, user_ids
    ):
        store = UserShardStore(store_root, max_resident=2)
        sharded = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            user_shards=store,
        )
        indices = [
            int(tiny_split.train.users.index_of(uid)) for uid in user_ids
        ]
        expected_groups = len({store.shard_of(index) for index in indices})
        batch_lists(sharded, user_ids)
        counters = sharded.metrics_snapshot()["counters"]
        groups = counters["service.retrieval.groups"]["labels"]
        assert groups[f"tier={RETRIEVAL_EXACT}"] == expected_groups

    def test_store_user_count_must_match_train(
        self, tiny_bpr, tiny_split, tiny_merged, tmp_path
    ):
        root = write_user_shards(
            tmp_path / "wrong", tiny_bpr.user_factors[:-1], n_shards=2
        )
        with pytest.raises(ConfigurationError):
            RecommendationService(
                tiny_bpr, tiny_split.train, tiny_merged,
                user_shards=UserShardStore(root),
            )


class TestIVFServing:
    def test_health_reports_the_active_tier(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF,
        )
        retrieval = service.health()["retrieval"]
        assert retrieval["requested"] == RETRIEVAL_IVF
        assert retrieval["active"] == RETRIEVAL_IVF
        assert retrieval["cells"] >= 1
        assert retrieval["probe_cells"] == default_probe_cells(
            retrieval["cells"]
        )

    def test_ivf_responses_are_full_and_unseen(
        self, tiny_bpr, tiny_split, tiny_merged, user_ids
    ):
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF,
        )
        train = tiny_split.train
        for user_id in user_ids[:10]:
            books = service.recommend(
                RecommendationRequest(user_id=user_id, k=K)
            )
            assert len(books) == K
            seen = {
                int(train.items.id_of(int(item)))
                for item in train.user_items(
                    int(train.users.index_of(user_id))
                )
            }
            assert not seen & {book.book_id for book in books}

    def test_tier_counters_move(
        self, tiny_bpr, tiny_split, tiny_merged, user_ids
    ):
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF,
        )
        serve_lists(service, user_ids[:5])
        counters = service.metrics_snapshot()["counters"]
        requests = counters["service.retrieval.requests"]["labels"]
        assert requests[f"tier={RETRIEVAL_IVF}"] == 5
        assert counters["service.retrieval.candidates"]["value"] > 0

    def test_recall_gauge_follows_measurement(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF, seed=5,
        )
        recall = service.measure_retrieval_recall(k=10, sample_users=16)
        assert 0.0 <= recall <= 1.0
        gauges = service.metrics_snapshot()["gauges"]
        assert gauges["service.retrieval.recall_at_k"]["value"] == recall

    def test_exact_serving_reports_recall_one(self, exact_service):
        assert exact_service.measure_retrieval_recall() == 1.0

    def test_factor_less_model_serves_exactly(
        self, tiny_split, tiny_merged
    ):
        most_read = MostReadItems().fit(tiny_split.train, tiny_merged)
        service = RecommendationService(
            most_read, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF,
        )
        retrieval = service.health()["retrieval"]
        assert retrieval["requested"] == RETRIEVAL_IVF
        assert retrieval["active"] == RETRIEVAL_EXACT
        user_id = str(tiny_split.train.users.ids[0])
        assert service.recommend(RecommendationRequest(user_id=user_id, k=5))

    def test_invalid_configuration_rejected(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        for kwargs in (
            {"retrieval": "annoy"},
            {"probe_cells": 0},
            {"ivf_cells": 0},
        ):
            with pytest.raises(ConfigurationError):
                RecommendationService(
                    tiny_bpr, tiny_split.train, tiny_merged, **kwargs
                )

    def test_probe_cells_clamped_to_cell_count(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF, probe_cells=10_000,
        )
        assert service.probe_cells == service.health()["retrieval"]["cells"]


class TestRefresh:
    def test_refresh_rebuilds_the_index_and_drops_the_store(
        self, tiny_bpr, tiny_split, tiny_merged, store_root
    ):
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0,
            retrieval=RETRIEVAL_IVF,
            user_shards=UserShardStore(store_root, max_resident=2),
        )
        retrained = BPR(TINY_BPR).fit(tiny_split.train, tiny_merged)
        service.refresh_model(retrained, model_version="v2")
        retrieval = service.health()["retrieval"]
        assert retrieval["active"] == RETRIEVAL_IVF
        assert retrieval["shards"] is None  # old rows belong to the old model
        user_id = str(tiny_split.train.users.ids[0])
        response = service.recommend_response(
            RecommendationRequest(user_id=user_id, k=5)
        )
        assert response.model_version == "v2"

    def test_refresh_keeps_a_matching_store(
        self, tiny_bpr, tiny_split, tiny_merged, tmp_path
    ):
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0
        )
        retrained = BPR(TINY_BPR).fit(tiny_split.train, tiny_merged)
        root = write_user_shards(
            tmp_path / "fresh", retrained.user_factors, n_shards=3
        )
        service.refresh_model(
            retrained, user_shards=UserShardStore(root)
        )
        assert service.health()["retrieval"]["shards"]["n_shards"] == 3

    def test_refresh_rejects_mismatched_store(
        self, tiny_bpr, tiny_split, tiny_merged, tmp_path
    ):
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0
        )
        root = write_user_shards(
            tmp_path / "short", tiny_bpr.user_factors[:-1], n_shards=2
        )
        with pytest.raises(ConfigurationError):
            service.refresh_model(
                tiny_bpr, user_shards=UserShardStore(root)
            )


class SwapDuringScore(BPR):
    """A model that hot-swaps the service mid-request (the race window)."""

    service = None
    replacement = None
    fired = False

    def recommend(self, user_index, k):
        items = super().recommend(user_index, k)
        if not SwapDuringScore.fired:
            SwapDuringScore.fired = True
            SwapDuringScore.service.refresh_model(
                SwapDuringScore.replacement, model_version="v2"
            )
        return items


class TestCacheSwapRace:
    def test_in_flight_response_never_enters_the_fresh_cache(
        self, tiny_split, tiny_merged
    ):
        """A response resolved against model v1 must not be cached after
        refresh_model swapped in v2 — the v(N)/v(N+1) provenance race."""
        racer = SwapDuringScore(TINY_BPR).fit(tiny_split.train, tiny_merged)
        replacement = BPR(TINY_BPR).fit(tiny_split.train, tiny_merged)
        service = RecommendationService(
            racer, tiny_split.train, tiny_merged, cache_size=64,
            model_version="v1",
        )
        SwapDuringScore.service = service
        SwapDuringScore.replacement = replacement
        SwapDuringScore.fired = False
        user_id = str(tiny_split.train.users.ids[0])
        request = RecommendationRequest(user_id=user_id, k=5)

        first = service.recommend_response(request)
        # The swap happened mid-request: the response is stamped with the
        # *published* version, and the stale list was NOT cached.
        assert first.model_version == "v2"
        assert not first.from_cache
        assert service.cached_entries == 0

        second = service.recommend_response(request)
        assert second.model_version == "v2"
        assert not second.from_cache  # freshly scored by v2
        assert service.cached_entries == 1

        third = service.recommend_response(request)
        assert third.from_cache
        assert third.model_version == "v2"
        assert [b.book_id for b in third.books] == [
            b.book_id for b in second.books
        ]

"""The service's thread-safety contract under real contention.

``RecommendationService`` promises that one instance may be shared by
any number of request threads with *exact* accounting: no lost counter
increments, no torn cache state, no corrupted breaker transitions. These
tests hammer a shared instance from many threads and assert the final
counts equal the work submitted — a lost update anywhere fails the run.
"""

import threading

import pytest

from repro.app.service import (
    RecommendationRequest,
    RecommendationService,
    ServiceStats,
)
from repro.core.most_read import MostReadItems
from repro.resilience.breaker import STATE_CLOSED, STATE_OPEN, CircuitBreaker

N_THREADS = 8
REQUESTS_PER_THREAD = 60


def _run_threads(worker, n_threads=N_THREADS):
    """Start ``n_threads`` running ``worker(index)``; re-raise failures."""
    failures = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


@pytest.fixture()
def service(tiny_bpr, tiny_split, tiny_merged):
    most_read = MostReadItems().fit(tiny_split.train, tiny_merged)
    return RecommendationService(
        tiny_bpr,
        tiny_split.train,
        tiny_merged,
        cold_start_fallback=most_read,
        cache_size=32,
        degrade_unknown_users=True,
    )


class TestConcurrentServing:
    def test_exact_accounting_under_contention(self, service, tiny_split):
        users = [str(user) for user in tiny_split.train.users.ids]

        def worker(index):
            for shot in range(REQUESTS_PER_THREAD):
                user_id = users[(index * 31 + shot * 7) % len(users)]
                response = service.recommend_response(
                    RecommendationRequest(user_id=user_id, k=5)
                )
                assert response.books

        _run_threads(worker)
        total = N_THREADS * REQUESTS_PER_THREAD
        stats = service.stats
        assert stats.requests == total
        assert stats.cache_hits + stats.cache_misses == total
        assert stats.histogram.count == total
        assert stats.errors == 0
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["service.requests"]["value"] == total

    def test_cache_stays_bounded_under_contention(self, service, tiny_split):
        users = [str(user) for user in tiny_split.train.users.ids]

        def worker(index):
            for shot in range(REQUESTS_PER_THREAD):
                user_id = users[(index + shot) % len(users)]
                service.recommend_response(
                    RecommendationRequest(user_id=user_id, k=5)
                )

        _run_threads(worker)
        assert service.cached_entries <= service.cache_size

    def test_refresh_model_during_serving(
        self, service, tiny_bpr, tiny_split
    ):
        users = [str(user) for user in tiny_split.train.users.ids]
        stop = threading.Event()

        def refresher():
            while not stop.is_set():
                service.refresh_model(tiny_bpr)

        churn = threading.Thread(target=refresher)
        churn.start()
        try:
            def worker(index):
                for shot in range(REQUESTS_PER_THREAD):
                    user_id = users[(index * 13 + shot) % len(users)]
                    response = service.recommend_response(
                        RecommendationRequest(user_id=user_id, k=5)
                    )
                    assert response.books

            _run_threads(worker)
        finally:
            stop.set()
            churn.join()
        total = N_THREADS * REQUESTS_PER_THREAD
        assert service.stats.requests == total
        assert service.stats.errors == 0

    def test_batch_and_single_paths_share_accounting(
        self, service, tiny_split
    ):
        users = [str(user) for user in tiny_split.train.users.ids]
        requests = [
            RecommendationRequest(user_id=user, k=5) for user in users[:10]
        ]

        def worker(index):
            if index % 2:
                for _ in range(10):
                    service.recommend_many_responses(requests)
            else:
                for _ in range(10 * len(requests)):
                    service.recommend_response(requests[index % len(requests)])

        _run_threads(worker)
        total = N_THREADS // 2 * 10 * len(requests) * 2
        assert service.stats.requests == total
        assert service.stats.histogram.count == total


class TestServiceStatsConcurrency:
    def test_note_methods_never_lose_increments(self):
        stats = ServiceStats()
        per_thread = 500

        def worker(index):
            for shot in range(per_thread):
                stats.record(0.001)
                stats.note_cache(hit=shot % 2 == 0)
                stats.note_error("err")
                stats.note_degraded("static", error="why")

        _run_threads(worker)
        total = N_THREADS * per_thread
        assert stats.requests == total
        assert stats.cache_hits + stats.cache_misses == total
        assert stats.errors == total
        assert stats.degradations["static"] == total
        assert stats.histogram.count == total


class TestBreakerConcurrency:
    def test_concurrent_outcomes_keep_state_machine_consistent(self):
        breaker = CircuitBreaker(
            failure_threshold=0.5, min_calls=5, window=20,
            cooldown_seconds=1000.0,
        )

        def worker(index):
            for _ in range(200):
                if breaker.allow():
                    breaker.record_failure()

        _run_threads(worker)
        # Every thread fails every call: the breaker must have opened
        # exactly once and stayed open (cooldown far in the future).
        assert breaker.state == STATE_OPEN
        assert breaker.opened_count == 1

    def test_concurrent_successes_keep_breaker_closed(self):
        breaker = CircuitBreaker()

        def worker(index):
            for _ in range(200):
                assert breaker.allow()
                breaker.record_success()

        _run_threads(worker)
        assert breaker.state == STATE_CLOSED
        assert breaker.failure_rate == 0.0

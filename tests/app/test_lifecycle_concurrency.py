"""Zero-downtime hot swap under real contention.

While one thread alternates ``refresh_from_store`` between two published
versions, request threads hammer the single and batch serving paths. The
contract: zero errors, *exact* request accounting (a lost increment
anywhere fails the run), every refresh accounted, and every response's
provenance naming a version that was actually published — never a blank,
never a torn in-between state.
"""

import threading

import pytest

from repro.app.lifecycle import ModelStore
from repro.app.service import RecommendationRequest, RecommendationService

N_THREADS = 8
REQUESTS_PER_THREAD = 40


def _run_threads(worker, n_threads=N_THREADS):
    """Start ``n_threads`` running ``worker(index)``; re-raise failures."""
    failures = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


@pytest.fixture()
def store(tmp_path, tiny_bpr, tiny_split):
    """A store with two published versions to swap between."""
    store = ModelStore(tmp_path / "store")
    store.publish(tiny_bpr, tiny_split.train)
    store.publish(tiny_bpr, tiny_split.train)
    return store


@pytest.fixture()
def service(store, tiny_merged):
    model, train = store.load(1)
    service = RecommendationService(model, train, tiny_merged, cache_size=32)
    assert service.refresh_from_store(store, version=1)
    return service


class TestConcurrentHotSwap:
    def test_soak_swapping_while_serving(self, service, store, tiny_split):
        users = [str(user) for user in tiny_split.train.users.ids]
        published = {"v000001", "v000002"}
        stop = threading.Event()
        swaps = []

        def refresher():
            while not stop.is_set():
                version = 1 + len(swaps) % 2
                assert service.refresh_from_store(store, version=version)
                swaps.append(version)

        churn = threading.Thread(target=refresher)
        churn.start()
        try:
            def worker(index):
                for shot in range(REQUESTS_PER_THREAD):
                    user_id = users[(index * 31 + shot * 7) % len(users)]
                    response = service.recommend_response(
                        RecommendationRequest(user_id=user_id, k=5)
                    )
                    assert len(response.books) == 5
                    assert response.model_version in published

            _run_threads(worker)
        finally:
            stop.set()
            churn.join()

        # the initial refresh in the fixture plus every loop iteration
        assert service.stats.refreshes == 1 + len(swaps)
        assert service.stats.refresh_failed == 0
        total = N_THREADS * REQUESTS_PER_THREAD
        assert service.stats.requests == total
        assert service.stats.errors == 0
        assert service.stats.histogram.count == total
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["service.requests"]["value"] == total
        refreshes = snapshot["counters"]["service.refreshes"]
        assert refreshes["labels"]["outcome=ok"] == 1 + len(swaps)
        assert "outcome=failed" not in refreshes.get("labels", {})
        # the service settled on whichever version the last swap installed
        assert service.model_version in published
        assert service.health()["model"]["version"] in published

    def test_batch_path_carries_provenance_during_swaps(
        self, service, store, tiny_split
    ):
        users = [str(user) for user in tiny_split.train.users.ids]
        published = {"v000001", "v000002"}
        requests = [
            RecommendationRequest(user_id=user, k=5) for user in users[:10]
        ]
        stop = threading.Event()

        def refresher():
            flip = 0
            while not stop.is_set():
                flip += 1
                assert service.refresh_from_store(store, version=1 + flip % 2)

        churn = threading.Thread(target=refresher)
        churn.start()
        try:
            def worker(index):
                for _ in range(10):
                    responses = service.recommend_many_responses(requests)
                    for response in responses:
                        assert len(response.books) == 5
                        assert response.model_version in published

            _run_threads(worker)
        finally:
            stop.set()
            churn.join()

        total = N_THREADS * 10 * len(requests)
        assert service.stats.requests == total
        assert service.stats.errors == 0
        assert service.stats.refresh_failed == 0

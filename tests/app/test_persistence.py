"""Tests for dataset/model persistence."""

import numpy as np
import pytest

from repro.app.persistence import load_bpr, load_dataset, save_bpr, save_dataset
from repro.errors import PersistenceError


class TestDatasetRoundtrip:
    def test_roundtrip_preserves_tables(self, tiny_merged, tmp_path):
        save_dataset(tiny_merged, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.books == tiny_merged.books
        assert loaded.readings == tiny_merged.readings
        assert loaded.genres == tiny_merged.genres

    def test_loaded_dataset_validates(self, tiny_merged, tmp_path):
        save_dataset(tiny_merged, tmp_path / "ds")
        load_dataset(tmp_path / "ds").validate()

    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError, match="not a saved dataset"):
            load_dataset(tmp_path / "nowhere")

    def test_partial_directory(self, tiny_merged, tmp_path):
        save_dataset(tiny_merged, tmp_path / "ds")
        (tmp_path / "ds" / "genres.csv").unlink()
        with pytest.raises(PersistenceError, match="genres.csv"):
            load_dataset(tmp_path / "ds")


class TestBPRRoundtrip:
    def test_scores_identical_after_reload(self, tiny_bpr, tiny_split, tmp_path):
        path = tmp_path / "model.npz"
        save_bpr(tiny_bpr, tiny_split.train, path)
        loaded, train = load_bpr(path)
        users = np.asarray([0, 1, 2])
        assert np.allclose(
            loaded.score_users(users), tiny_bpr.score_users(users)
        )

    def test_train_matrix_restored(self, tiny_bpr, tiny_split, tmp_path):
        path = tmp_path / "model.npz"
        save_bpr(tiny_bpr, tiny_split.train, path)
        _, train = load_bpr(path)
        assert train.n_users == tiny_split.train.n_users
        assert train.users == tiny_split.train.users
        assert np.array_equal(
            train.user_items(0), tiny_split.train.user_items(0)
        )

    def test_config_restored(self, tiny_bpr, tiny_split, tmp_path):
        path = tmp_path / "model.npz"
        save_bpr(tiny_bpr, tiny_split.train, path)
        loaded, _ = load_bpr(path)
        assert loaded.config == tiny_bpr.config

    def test_recommendations_survive_reload(self, tiny_bpr, tiny_split, tmp_path):
        path = tmp_path / "model.npz"
        save_bpr(tiny_bpr, tiny_split.train, path)
        loaded, _ = load_bpr(path)
        assert (
            loaded.recommend(0, 5).tolist() == tiny_bpr.recommend(0, 5).tolist()
        )

    def test_suffix_added_when_missing(self, tiny_bpr, tiny_split, tmp_path):
        bare = tmp_path / "model"
        save_bpr(tiny_bpr, tiny_split.train, bare)  # numpy appends .npz
        loaded, _ = load_bpr(bare)
        assert loaded.is_fitted

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no saved model"):
            load_bpr(tmp_path / "ghost.npz")

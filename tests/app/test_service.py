"""Tests for the recommendation service (the GUI request path)."""

import pytest

from repro.app.service import RecommendationRequest, RecommendationService
from repro.core.most_read import MostReadItems
from repro.errors import ConfigurationError, UnknownUserError


@pytest.fixture(scope="module")
def service(tiny_bpr, tiny_split, tiny_merged):
    return RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)


@pytest.fixture(scope="module")
def a_user(tiny_merged):
    return tiny_merged.bct_user_ids[0]


class TestConstruction:
    def test_requires_fitted_model(self, tiny_split, tiny_merged):
        with pytest.raises(ConfigurationError, match="fitted"):
            RecommendationService(MostReadItems(), tiny_split.train, tiny_merged)


class TestRequests:
    def test_request_validates_k(self):
        with pytest.raises(ConfigurationError):
            RecommendationRequest(user_id="u", k=0)

    def test_default_k_is_20(self):
        assert RecommendationRequest(user_id="u").k == 20

    def test_recommend_returns_ranked_cards(self, service, a_user):
        books = service.recommend(RecommendationRequest(user_id=a_user, k=5))
        assert len(books) == 5
        assert [b.rank for b in books] == [1, 2, 3, 4, 5]
        assert all(b.title and b.author for b in books)

    def test_recommendations_exclude_history(self, service, a_user):
        history_ids = {b.book_id for b in service.history(a_user)}
        recommended = service.recommend(
            RecommendationRequest(user_id=a_user, k=10)
        )
        assert not history_ids & {b.book_id for b in recommended}

    def test_unknown_user(self, service):
        with pytest.raises(UnknownUserError):
            service.recommend(RecommendationRequest(user_id="stranger"))
        assert not service.known_user("stranger")

    def test_history_unknown_user(self, service):
        with pytest.raises(UnknownUserError):
            service.history("stranger")


class TestColdStartFallback:
    def test_unknown_user_gets_most_read(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        fallback = MostReadItems().fit(tiny_split.train, tiny_merged)
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged,
            cold_start_fallback=fallback,
        )
        books = service.recommend(RecommendationRequest("newcomer", k=5))
        expected = [
            int(tiny_split.train.items.id_of(int(i)))
            for i in fallback.top_items(5)
        ]
        assert [b.book_id for b in books] == expected

    def test_known_users_still_personalised(
        self, tiny_bpr, tiny_split, tiny_merged, a_user
    ):
        fallback = MostReadItems().fit(tiny_split.train, tiny_merged)
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged,
            cold_start_fallback=fallback,
        )
        plain = RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)
        with_fb = service.recommend(RecommendationRequest(a_user, k=5))
        without = plain.recommend(RecommendationRequest(a_user, k=5))
        assert [b.book_id for b in with_fb] == [b.book_id for b in without]

    def test_fallback_must_be_fitted(self, tiny_bpr, tiny_split, tiny_merged):
        with pytest.raises(ConfigurationError, match="fallback"):
            RecommendationService(
                tiny_bpr, tiny_split.train, tiny_merged,
                cold_start_fallback=MostReadItems(),
            )


class TestStats:
    def test_latency_accounting(self, tiny_bpr, tiny_split, tiny_merged, a_user):
        service = RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)
        for _ in range(3):
            service.recommend(RecommendationRequest(user_id=a_user, k=5))
        assert service.stats.requests == 3
        assert service.stats.mean_seconds > 0
        assert service.stats.percentile(0.5) > 0
        assert len(service.stats.latencies) == 3

    def test_empty_stats(self, service):
        from repro.app.service import ServiceStats

        stats = ServiceStats()
        assert stats.mean_seconds == 0.0
        assert stats.percentile(0.9) == 0.0

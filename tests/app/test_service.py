"""Tests for the recommendation service (the GUI request path)."""

import pytest

from repro.app.service import RecommendationRequest, RecommendationService
from repro.core.most_read import MostReadItems
from repro.errors import ConfigurationError, UnknownUserError


@pytest.fixture(scope="module")
def service(tiny_bpr, tiny_split, tiny_merged):
    return RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)


@pytest.fixture(scope="module")
def a_user(tiny_merged):
    return tiny_merged.bct_user_ids[0]


class TestConstruction:
    def test_requires_fitted_model(self, tiny_split, tiny_merged):
        with pytest.raises(ConfigurationError, match="fitted"):
            RecommendationService(MostReadItems(), tiny_split.train, tiny_merged)


class TestRequests:
    def test_request_validates_k(self):
        with pytest.raises(ConfigurationError):
            RecommendationRequest(user_id="u", k=0)

    def test_default_k_is_20(self):
        assert RecommendationRequest(user_id="u").k == 20

    def test_recommend_returns_ranked_cards(self, service, a_user):
        books = service.recommend(RecommendationRequest(user_id=a_user, k=5))
        assert len(books) == 5
        assert [b.rank for b in books] == [1, 2, 3, 4, 5]
        assert all(b.title and b.author for b in books)

    def test_recommendations_exclude_history(self, service, a_user):
        history_ids = {b.book_id for b in service.history(a_user)}
        recommended = service.recommend(
            RecommendationRequest(user_id=a_user, k=10)
        )
        assert not history_ids & {b.book_id for b in recommended}

    def test_unknown_user(self, service):
        with pytest.raises(UnknownUserError):
            service.recommend(RecommendationRequest(user_id="stranger"))
        assert not service.known_user("stranger")

    def test_history_unknown_user(self, service):
        with pytest.raises(UnknownUserError):
            service.history("stranger")


class TestColdStartFallback:
    def test_unknown_user_gets_most_read(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        fallback = MostReadItems().fit(tiny_split.train, tiny_merged)
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged,
            cold_start_fallback=fallback,
        )
        books = service.recommend(RecommendationRequest("newcomer", k=5))
        expected = [
            int(tiny_split.train.items.id_of(int(i)))
            for i in fallback.top_items(5)
        ]
        assert [b.book_id for b in books] == expected

    def test_known_users_still_personalised(
        self, tiny_bpr, tiny_split, tiny_merged, a_user
    ):
        fallback = MostReadItems().fit(tiny_split.train, tiny_merged)
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged,
            cold_start_fallback=fallback,
        )
        plain = RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)
        with_fb = service.recommend(RecommendationRequest(a_user, k=5))
        without = plain.recommend(RecommendationRequest(a_user, k=5))
        assert [b.book_id for b in with_fb] == [b.book_id for b in without]

    def test_fallback_must_be_fitted(self, tiny_bpr, tiny_split, tiny_merged):
        with pytest.raises(ConfigurationError, match="fallback"):
            RecommendationService(
                tiny_bpr, tiny_split.train, tiny_merged,
                cold_start_fallback=MostReadItems(),
            )


class TestStats:
    def test_latency_accounting(self, tiny_bpr, tiny_split, tiny_merged, a_user):
        service = RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)
        for _ in range(3):
            service.recommend(RecommendationRequest(user_id=a_user, k=5))
        assert service.stats.requests == 3
        assert service.stats.mean_seconds > 0
        assert service.stats.percentile(0.5) > 0
        assert len(service.stats.latencies) == 3

    def test_empty_stats(self, service):
        from repro.app.service import ServiceStats

        stats = ServiceStats()
        assert stats.mean_seconds == 0.0
        assert stats.percentile(0.9) == 0.0

    def test_latency_window_is_bounded(self):
        from repro.app.service import ServiceStats

        stats = ServiceStats(latency_window=5)
        for i in range(8):
            stats.record(float(i + 1))
        assert stats.requests == 8
        assert list(stats.latencies) == [4.0, 5.0, 6.0, 7.0, 8.0]
        # The window bounds the percentile buffer, not the running mean.
        assert stats.mean_seconds == pytest.approx(36.0 / 8)
        assert stats.percentile(1.0) == pytest.approx(8.0)


class TestCache:
    def _service(self, tiny_bpr, tiny_split, tiny_merged, **kwargs):
        return RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, **kwargs
        )

    def test_hit_and_miss_counts(self, tiny_bpr, tiny_split, tiny_merged, a_user):
        service = self._service(tiny_bpr, tiny_split, tiny_merged)
        request = RecommendationRequest(user_id=a_user, k=5)
        first = service.recommend(request)
        second = service.recommend(request)
        assert first == second
        assert service.stats.cache_misses == 1
        assert service.stats.cache_hits == 1
        assert service.stats.cache_hit_rate == pytest.approx(0.5)

    def test_distinct_k_cached_separately(
        self, tiny_bpr, tiny_split, tiny_merged, a_user
    ):
        service = self._service(tiny_bpr, tiny_split, tiny_merged)
        service.recommend(RecommendationRequest(user_id=a_user, k=5))
        service.recommend(RecommendationRequest(user_id=a_user, k=6))
        assert service.stats.cache_misses == 2
        assert service.cached_entries == 2

    def test_lru_eviction(self, tiny_bpr, tiny_split, tiny_merged):
        service = self._service(tiny_bpr, tiny_split, tiny_merged, cache_size=2)
        users = tiny_merged.bct_user_ids[:3]
        for user in users:
            service.recommend(RecommendationRequest(user_id=user, k=5))
        assert service.cached_entries == 2
        # The oldest user was evicted: serving them again is a miss.
        service.recommend(RecommendationRequest(user_id=users[0], k=5))
        assert service.stats.cache_hits == 0
        assert service.stats.cache_misses == 4

    def test_cache_disabled(self, tiny_bpr, tiny_split, tiny_merged, a_user):
        service = self._service(
            tiny_bpr, tiny_split, tiny_merged, cache_size=0
        )
        request = RecommendationRequest(user_id=a_user, k=5)
        service.recommend(request)
        service.recommend(request)
        assert service.cached_entries == 0
        assert service.stats.cache_hits == 0

    def test_negative_cache_size_rejected(self, tiny_bpr, tiny_split, tiny_merged):
        with pytest.raises(ConfigurationError, match="cache_size"):
            self._service(tiny_bpr, tiny_split, tiny_merged, cache_size=-1)

    def test_invalidate_cache(self, tiny_bpr, tiny_split, tiny_merged, a_user):
        service = self._service(tiny_bpr, tiny_split, tiny_merged)
        request = RecommendationRequest(user_id=a_user, k=5)
        service.recommend(request)
        service.invalidate_cache()
        assert service.cached_entries == 0
        service.recommend(request)
        assert service.stats.cache_hits == 0
        assert service.stats.cache_misses == 2

    def test_refresh_model_invalidates(
        self, tiny_bpr, tiny_split, tiny_merged, a_user
    ):
        service = self._service(tiny_bpr, tiny_split, tiny_merged)
        request = RecommendationRequest(user_id=a_user, k=5)
        service.recommend(request)
        fallback = MostReadItems().fit(tiny_split.train, tiny_merged)
        service.refresh_model(fallback)
        assert service.cached_entries == 0
        refreshed = service.recommend(request)
        assert service.model is fallback
        assert [b.rank for b in refreshed] == [1, 2, 3, 4, 5]

    def test_refresh_model_requires_fitted(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        service = self._service(tiny_bpr, tiny_split, tiny_merged)
        with pytest.raises(ConfigurationError, match="fitted"):
            service.refresh_model(MostReadItems())


class TestRecommendMany:
    def test_matches_single_requests(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        service = RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)
        requests = [
            RecommendationRequest(user_id=user, k=5)
            for user in tiny_merged.bct_user_ids[:4]
        ]
        batched = service.recommend_many(requests)
        singles = [service.recommend(request) for request in requests]
        assert batched == singles

    def test_mixed_ks_and_cache_reuse(
        self, tiny_bpr, tiny_split, tiny_merged, a_user
    ):
        service = RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)
        service.recommend(RecommendationRequest(user_id=a_user, k=5))
        other = tiny_merged.bct_user_ids[1]
        results = service.recommend_many(
            [
                RecommendationRequest(user_id=a_user, k=5),
                RecommendationRequest(user_id=other, k=7),
            ]
        )
        assert len(results[0]) == 5 and len(results[1]) == 7
        assert service.stats.cache_hits == 1

    def test_unknown_user_marked_not_raised(self, service, a_user):
        """An unserveable request must not poison the rest of the batch."""
        from repro.app.service import SERVED_BY_NONE

        responses = service.recommend_many_responses(
            [
                RecommendationRequest(user_id=a_user, k=5),
                RecommendationRequest(user_id="stranger", k=5),
                RecommendationRequest(user_id=a_user, k=6),
            ]
        )
        assert len(responses[0].books) == 5
        assert len(responses[2].books) == 6
        stranger = responses[1]
        assert stranger.books == ()
        assert stranger.served_by == SERVED_BY_NONE
        assert "stranger" in stranger.error
        # recommend_many mirrors the markers as empty lists.
        lists = service.recommend_many(
            [RecommendationRequest(user_id="stranger", k=5)]
        )
        assert lists == [[]]

    def test_unknown_user_uses_fallback(self, tiny_bpr, tiny_split, tiny_merged):
        fallback = MostReadItems().fit(tiny_split.train, tiny_merged)
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged,
            cold_start_fallback=fallback,
        )
        [books] = service.recommend_many(
            [RecommendationRequest(user_id="newcomer", k=5)]
        )
        assert books == service.recommend(
            RecommendationRequest(user_id="newcomer", k=5)
        )

    def test_empty_batch(self, service):
        assert service.recommend_many([]) == []


class TestResilience:
    """Degradation chain, health reporting, retries, and deadlines.

    The heavier fault-driven scenarios live in
    ``tests/resilience/test_chaos.py``; these cover the service-level
    wiring visible without an injector.
    """

    def _failing_service(self, tiny_bpr, tiny_split, tiny_merged, **kwargs):
        from repro.resilience.faults import SITE_MODEL_SCORE, FaultInjector, FaultyModel

        injector = kwargs.pop(
            "injector", FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        )
        fallback = MostReadItems().fit(tiny_split.train, tiny_merged)
        service = RecommendationService(
            FaultyModel(tiny_bpr, injector),
            tiny_split.train,
            tiny_merged,
            cold_start_fallback=fallback,
            **kwargs,
        )
        return service, injector

    def test_health_report_shape(self, tiny_bpr, tiny_split, tiny_merged, a_user):
        clock_value = [0.0]
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged,
            clock=lambda: clock_value[0],
        )
        clock_value[0] = 42.0
        service.recommend(RecommendationRequest(user_id=a_user, k=5))
        health = service.health()
        assert health["status"] == "ok"
        assert health["breaker"]["state"] == "closed"
        assert health["model"]["name"] == tiny_bpr.name
        assert health["model"]["staleness_seconds"] == pytest.approx(42.0)
        assert health["requests"] == 1
        assert health["degraded_requests"] == 0
        assert health["errors"] == 0
        assert health["last_error"] is None
        assert health["cache"]["entries"] == 1

    def test_degrade_unknown_users(self, tiny_bpr, tiny_split, tiny_merged):
        from repro.app.service import SERVED_BY_STATIC

        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged,
            degrade_unknown_users=True,
        )
        response = service.recommend_response(
            RecommendationRequest(user_id="stranger", k=5)
        )
        assert response.served_by == SERVED_BY_STATIC
        assert response.degraded
        assert "stranger" in response.error
        assert len(response.books) == 5
        assert service.stats.degradations[SERVED_BY_STATIC] == 1

    def test_degraded_responses_are_not_cached(
        self, tiny_bpr, tiny_split, tiny_merged, a_user
    ):
        from repro.app.service import SERVED_BY_PRIMARY
        from repro.resilience.faults import SITE_MODEL_SCORE

        service, injector = self._failing_service(
            tiny_bpr, tiny_split, tiny_merged
        )
        request = RecommendationRequest(user_id=a_user, k=5)
        degraded = service.recommend_response(request)
        assert degraded.degraded
        assert service.cached_entries == 0
        # Once the model recovers, the same request is served primary —
        # the cache was never poisoned with the fallback list.
        injector.set_rate(SITE_MODEL_SCORE, 0.0)
        healed = service.recommend_response(request)
        assert healed.served_by == SERVED_BY_PRIMARY
        assert not healed.from_cache
        assert service.recommend_response(request).from_cache

    def test_retry_policy_recovers_transient_fault(
        self, tiny_bpr, tiny_split, tiny_merged, a_user
    ):
        from repro.app.service import SERVED_BY_PRIMARY
        from repro.resilience.faults import SITE_MODEL_SCORE, FaultInjector
        from repro.resilience.retry import BackoffPolicy

        injector = FaultInjector(script={SITE_MODEL_SCORE: [True, False]})
        slept = []
        service, _ = self._failing_service(
            tiny_bpr, tiny_split, tiny_merged,
            injector=injector,
            retry_policy=BackoffPolicy(max_attempts=2, base_delay=0.01),
            seed=7,
            retry_sleep=slept.append,
        )
        response = service.recommend_response(
            RecommendationRequest(user_id=a_user, k=5)
        )
        assert response.served_by == SERVED_BY_PRIMARY
        assert not response.degraded
        assert len(slept) == 1
        assert injector.checked[SITE_MODEL_SCORE] == 2

    def test_expired_deadline_degrades_before_scoring(
        self, tiny_bpr, tiny_split, tiny_merged, a_user
    ):
        from repro.app.service import SERVED_BY_MOST_READ
        from repro.resilience.faults import FaultInjector

        # Every clock() call advances a full second, so a sub-second
        # budget is already spent when the service checks the deadline.
        ticks = iter(range(10_000))
        injector = FaultInjector(seed=0)  # never fires
        service, _ = self._failing_service(
            tiny_bpr, tiny_split, tiny_merged,
            injector=injector,
            clock=lambda: float(next(ticks)),
        )
        response = service.recommend_response(
            RecommendationRequest(user_id=a_user, k=5, timeout_seconds=0.5)
        )
        assert response.degraded
        assert response.served_by == SERVED_BY_MOST_READ
        assert "deadline" in response.error
        assert injector.checked == {}  # the primary model was never invoked

    def test_request_validates_timeout(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            RecommendationRequest(user_id="u", timeout_seconds=0.0)

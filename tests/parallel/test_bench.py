"""Smoke tests for the parallel bench and its report rendering."""

import json
from dataclasses import replace

import pytest

from repro.cli import render_parallel_bench_report
from repro.parallel.bench import ParallelBenchConfig, run_parallel_bench

#: One-cell, two-epoch micro bench: exercises every section in seconds.
MICRO = replace(
    ParallelBenchConfig(),
    n_books=300, n_authors=110, n_bct_users=110, n_anobii_users=450,
    min_user_readings=10, min_book_readings=3,
    factor_grid=(5,), learning_rate_grid=(0.1,),
    epochs=2, k=10, repeats=1, embed_repeat=1,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "BENCH_parallel.json"
    return run_parallel_bench(MICRO, output_path=path)


class TestRunParallelBench:
    def test_sections_present(self, report):
        assert {"bench", "config", "dataset", "grid", "embedding",
                "merge"} <= set(report)
        assert report["bench"] == "parallel"

    @pytest.mark.parametrize("section", ["grid", "embedding", "merge"])
    def test_each_section_is_identical_and_timed(self, report, section):
        data = report[section]
        assert data["identical"] is True
        assert data["serial_seconds"] > 0
        assert data["parallel_seconds"] > 0
        assert data["speedup"] == pytest.approx(
            data["serial_seconds"] / data["parallel_seconds"]
        )

    def test_grid_records_winner(self, report):
        best = report["grid"]["best"]
        assert best["n_factors"] == 5
        assert best["learning_rate"] == 0.1

    def test_json_written_and_parses(self, report):
        path = report["output_path"]
        with open(path, encoding="utf-8") as handle:
            on_disk = json.loads(handle.read())
        # JSON round-trips the config's tuples into lists; compare via dump.
        assert on_disk["config"] == json.loads(json.dumps(report["config"]))
        assert on_disk["grid"]["identical"] is True

    def test_no_output_path_skips_write(self):
        tiny = replace(MICRO, factor_grid=(5,), epochs=1)
        report = run_parallel_bench(tiny, output_path=None)
        assert "output_path" not in report


class TestRenderReport:
    def test_render_names_all_sections(self, report):
        rendered = render_parallel_bench_report(report)
        for token in ("grid", "embedding", "merge", "identical", "x"):
            assert token in rendered
        assert "MISMATCH" not in rendered

"""Unit tests for the WorkerPool and its helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    BACKENDS,
    WorkerPool,
    chunk_slices,
    parallel_map,
    resolve_n_jobs,
    shared_payload,
    task_seeds,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _item_with_seed(item, seed):
    return (item, seed)


def _read_shared(_):
    return shared_payload()


def _boom(x):
    raise ValueError(f"boom on {x}")


class TestResolveNJobs:
    def test_identity_for_positive(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4

    def test_all_cpus(self):
        assert resolve_n_jobs(-1) >= 1

    @pytest.mark.parametrize("bad", [0, -2, True, 1.5, "2"])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(bad)


class TestChunkSlices:
    @pytest.mark.parametrize("n_items,n_chunks", [
        (0, 1), (1, 1), (5, 2), (10, 3), (3, 10), (100, 7),
    ])
    def test_covers_range_in_order(self, n_items, n_chunks):
        slices = chunk_slices(n_items, n_chunks)
        flat = [i for piece in slices for i in range(n_items)[piece]]
        assert flat == list(range(n_items))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [
            piece.stop - piece.start for piece in chunk_slices(100, 7)
        ]
        assert max(sizes) - min(sizes) <= 1

    def test_caps_chunks_at_items(self):
        assert len(chunk_slices(3, 10)) == 3

    def test_empty(self):
        assert chunk_slices(0, 4) == []

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            chunk_slices(-1, 2)
        with pytest.raises(ConfigurationError):
            chunk_slices(5, 0)


class TestTaskSeeds:
    def test_deterministic(self):
        assert task_seeds(7, "x", 5) == task_seeds(7, "x", 5)

    def test_scopes_independent(self):
        assert task_seeds(7, "a", 5) != task_seeds(7, "b", 5)

    def test_count_zero(self):
        assert task_seeds(7, "x", 0) == []

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            task_seeds(7, "x", -1)


class TestWorkerPoolConstruction:
    def test_auto_resolves_serial_for_one_job(self):
        assert WorkerPool(n_jobs=1).backend == "serial"

    def test_auto_resolves_process_for_many_jobs(self):
        assert WorkerPool(n_jobs=2).backend == "process"

    def test_explicit_backend_downgrades_to_serial_for_one_job(self):
        assert WorkerPool(n_jobs=1, backend="process").backend == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(n_jobs=2, backend="gpu")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(n_jobs=2, chunk_size=0)

    def test_repr_names_backend(self):
        assert "serial" in repr(WorkerPool(n_jobs=1))

    def test_backends_constant(self):
        assert BACKENDS == ("serial", "thread", "process")


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestMapping:
    def test_map_matches_serial_loop(self, backend):
        items = list(range(23))
        with WorkerPool(n_jobs=2, backend=backend) as pool:
            assert pool.map(_square, items) == [x * x for x in items]

    def test_starmap_matches_serial_loop(self, backend):
        pairs = [(i, i + 1) for i in range(17)]
        with WorkerPool(n_jobs=2, backend=backend) as pool:
            assert pool.starmap(_add, pairs) == [a + b for a, b in pairs]

    def test_map_seeded_is_backend_independent(self, backend):
        items = list("abcdef")
        with WorkerPool(n_jobs=2, backend=backend) as pool:
            result = pool.map_seeded(_item_with_seed, items, seed=3, scope="t")
        expected = list(zip(items, task_seeds(3, "t", len(items))))
        assert result == expected

    def test_empty_items(self, backend):
        with WorkerPool(n_jobs=2, backend=backend) as pool:
            assert pool.map(_square, []) == []

    def test_exception_propagates(self, backend):
        with WorkerPool(n_jobs=2, backend=backend) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.map(_boom, [1, 2, 3])

    def test_shared_payload_reaches_workers(self, backend):
        payload = {"answer": 42}
        with WorkerPool(n_jobs=2, backend=backend, shared=payload) as pool:
            results = pool.map(_read_shared, range(6))
        assert all(result == payload for result in results)


class TestPoolLifecycle:
    def test_close_is_idempotent(self):
        pool = WorkerPool(n_jobs=2, backend="thread")
        pool.map(_square, range(4))
        pool.close()
        pool.close()

    def test_pool_usable_after_close(self):
        pool = WorkerPool(n_jobs=2, backend="thread")
        pool.map(_square, range(4))
        pool.close()
        assert pool.map(_square, [3]) == [9]
        pool.close()

    def test_executor_is_reused_across_maps(self):
        pool = WorkerPool(n_jobs=2, backend="thread")
        pool.map(_square, range(4))
        first = pool._live_executor
        pool.map(_square, range(4))
        assert pool._live_executor is first
        pool.close()

    def test_serial_shared_slot_restored(self):
        before = shared_payload()
        pool = WorkerPool(n_jobs=1, shared="payload")
        assert pool.map(_read_shared, range(3)) == ["payload"] * 3
        assert shared_payload() == before

    def test_with_shared_builds_fresh_pool(self):
        pool = WorkerPool(n_jobs=2, backend="thread", chunk_size=3)
        other = pool.with_shared({"k": 1})
        assert other is not pool
        assert other.n_jobs == pool.n_jobs
        assert other.backend == pool.backend
        assert other.chunk_size == pool.chunk_size
        assert other.shared == {"k": 1}


class TestParallelMapFunction:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_matches_serial_loop(self, backend):
        items = list(range(11))
        assert parallel_map(
            _square, items, n_jobs=2, backend=backend
        ) == [x * x for x in items]

"""Serial vs thread vs process equivalence over the wired surfaces.

The determinism contract (``docs/determinism.md``) promises that the
parallel paths are *bit-identical* to their serial references — same
grid winner, same embedding matrices, same merge report — on every
backend. These tests pin that promise to the tiny world.
"""

import numpy as np
import pytest

from repro.core.bpr import BPRConfig
from repro.eval.grid import grid_search_bpr
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.pipeline import build_merged_dataset
from repro.text import HashedTfidfEmbedder
from repro.text.summary import MetadataSummaryBuilder

from tests.conftest import TINY_MERGE

GRID_KW = dict(
    base_config=BPRConfig(epochs=2, seed=11),
    factor_grid=(5, 10),
    learning_rate_grid=(0.1,),
    k=10,
)

#: Series whose value is a wall-clock measurement (``eval.fit_seconds``,
#: ``bpr.batch_seconds``, ``bpr.samples_per_second``, ...) — the one
#: legitimate difference between a serial and a parallel run.
TIMING_MARKERS = ("seconds", "duration", "latency", "per_second")


def _strip_timing_series(snapshot: dict) -> dict:
    return {
        kind: {
            name: series
            for name, series in snapshot[kind].items()
            if not any(marker in name for marker in TIMING_MARKERS)
        }
        for kind in ("counters", "gauges", "histograms")
    }


class TestGridEquivalence:
    @pytest.fixture(scope="class")
    def serial(self, tiny_split, tiny_merged):
        return grid_search_bpr(tiny_split, tiny_merged, n_jobs=1, **GRID_KW)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_winner_and_points_identical(
        self, serial, tiny_split, tiny_merged, backend
    ):
        parallel = grid_search_bpr(
            tiny_split, tiny_merged, n_jobs=2, backend=backend, **GRID_KW
        )
        assert parallel.best == serial.best
        assert parallel.points == serial.points

    def test_metrics_identical_up_to_timing(self, tiny_split, tiny_merged):
        def sweep(n_jobs):
            metrics = MetricsRegistry()
            grid_search_bpr(
                tiny_split, tiny_merged, n_jobs=n_jobs,
                backend="process" if n_jobs > 1 else "serial",
                metrics=metrics, **GRID_KW,
            )
            return metrics.snapshot()

        serial, parallel = sweep(1), sweep(2)
        assert _strip_timing_series(serial) == _strip_timing_series(parallel)

    def test_parallel_sweep_adopts_cell_spans(self, tiny_split, tiny_merged):
        tracer = Tracer(seed=5)
        grid_search_bpr(
            tiny_split, tiny_merged, n_jobs=2, backend="process",
            tracer=tracer, **GRID_KW,
        )
        names = [span.name for span in tracer.spans]
        assert names.count("grid.cell") == 2
        assert "grid.search" in names


class TestEmbeddingEquivalence:
    @pytest.fixture(scope="class")
    def corpus(self, tiny_merged):
        summaries = MetadataSummaryBuilder().build_all(tiny_merged)
        return [summaries[key] for key in sorted(summaries)]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_fit_and_encode_identical(self, corpus, backend):
        serial = HashedTfidfEmbedder(n_jobs=1).fit(corpus).encode(corpus)
        parallel = (
            HashedTfidfEmbedder(n_jobs=2, backend=backend)
            .fit(corpus)
            .encode(corpus)
        )
        assert np.array_equal(serial, parallel)

    def test_parallel_fit_serial_encode_identical(self, corpus):
        serial = HashedTfidfEmbedder(n_jobs=1).fit(corpus)
        parallel = HashedTfidfEmbedder(n_jobs=2, backend="process").fit(corpus)
        probe = corpus[:7]
        assert np.array_equal(
            serial.encode(probe),
            # Encode through the serial path of the parallel-fitted model.
            HashedTfidfEmbedder(n_jobs=1)
            .fit(corpus)
            .encode(probe),
        )
        assert np.array_equal(
            serial._tfidf._idf, parallel._tfidf._idf
        )


class TestMergeEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_report_and_tables_identical(self, tiny_sources, backend):
        serial_data, serial_report = build_merged_dataset(
            tiny_sources.bct, tiny_sources.anobii, TINY_MERGE, n_jobs=1
        )
        parallel_data, parallel_report = build_merged_dataset(
            tiny_sources.bct, tiny_sources.anobii, TINY_MERGE,
            n_jobs=2, backend=backend,
        )
        assert str(serial_report) == str(parallel_report)
        for column in ("book_id", "title", "author"):
            assert np.array_equal(
                serial_data.books[column], parallel_data.books[column]
            )
        for column in ("user_id", "book_id", "source"):
            assert np.array_equal(
                serial_data.readings[column], parallel_data.readings[column]
            )

"""Property-based integration tests: random worlds through the pipeline.

Hypothesis draws small world configurations; for every draw the full
generate → clean → merge → split chain must succeed and its invariants must
hold. These catch structural assumptions (e.g. "every genre has books",
"every user survives filtering") that fixed fixtures never vary.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import BPR, BPRConfig
from repro.core.interactions import InteractionMatrix
from repro.datasets import WorldConfig, generate_sources
from repro.eval import split_readings
from repro.pipeline import MergeConfig, build_merged_dataset

settings.register_profile("worlds", deadline=None, max_examples=6)

world_configs = st.builds(
    WorldConfig,
    n_books=st.integers(min_value=80, max_value=160),
    n_authors=st.integers(min_value=30, max_value=60),
    n_bct_users=st.integers(min_value=20, max_value=40),
    n_anobii_users=st.integers(min_value=60, max_value=120),
    seed=st.integers(min_value=0, max_value=2**20),
    author_loyalty=st.floats(min_value=0.1, max_value=0.7),
    n_communities=st.integers(min_value=2, max_value=6),
    popularity_exponent=st.floats(min_value=0.5, max_value=1.2),
)


@settings(deadline=None, max_examples=6)
@given(world_configs)
def test_pipeline_invariants_hold_for_any_world(config):
    sources = generate_sources(config)
    sources.bct.validate()
    sources.anobii.validate()
    merged, report = build_merged_dataset(
        sources.bct, sources.anobii,
        MergeConfig(min_user_readings=5, min_book_readings=2),
    )
    merged.validate()  # genre probabilities sum to 1, no dangling keys
    assert report.users_after_filter == merged.n_users
    if merged.n_readings == 0:
        return  # a legitimately empty merge: nothing else to check
    split = split_readings(merged)
    # Holdouts never intersect the training history.
    for user_index, held in split.test_items.items():
        train_items = set(split.train.user_items(user_index).tolist())
        assert not train_items & set(held.tolist())
    # All BCT survivors get a test set, Anobii users never do.
    for user_index in split.test_items:
        assert str(split.users.id_of(user_index)).startswith("bct_")


@settings(deadline=None, max_examples=6)
@given(
    st.integers(min_value=5, max_value=30),   # users
    st.integers(min_value=4, max_value=25),   # items
    st.integers(min_value=0, max_value=2**20),
)
def test_bpr_training_is_always_finite(n_users, n_items, seed):
    """SGD on arbitrary random interaction matrices never diverges."""
    rng = np.random.default_rng(seed)
    pairs = [
        (f"u{rng.integers(n_users)}", int(rng.integers(n_items)))
        for _ in range(n_users * 3)
    ]
    train = InteractionMatrix.from_pairs(pairs)
    if train.n_items < 2:
        return
    model = BPR(BPRConfig(epochs=3, n_factors=4, seed=0)).fit(train)
    assert np.isfinite(model.user_factors).all()
    assert np.isfinite(model.item_factors).all()
    scores = model.score_users(np.arange(train.n_users))
    assert np.isfinite(scores).all()

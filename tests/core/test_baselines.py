"""Tests for the Random Items and Most Read Items baselines."""

import numpy as np
import pytest

from repro.core.interactions import InteractionMatrix
from repro.core.most_read import MostReadItems
from repro.core.random_items import RandomItems


@pytest.fixture
def train():
    # item 0 read 3x (twice by u0), item 1 read once, item 2 unread.
    return InteractionMatrix.from_pairs(
        [("u0", 0), ("u0", 0), ("u1", 0), ("u1", 1), ("u2", 2)]
    )


class TestRandomItems:
    def test_deterministic_per_user(self, train):
        model = RandomItems(seed=7).fit(train)
        first = model.recommend(0, 3)
        second = model.recommend(0, 3)
        assert first.tolist() == second.tolist()

    def test_different_users_differ(self, train):
        model = RandomItems(seed=7).fit(train)
        scores = model.score_users(np.asarray([0, 1]))
        assert not np.allclose(scores[0], scores[1])

    def test_excludes_seen(self, train):
        model = RandomItems(seed=7).fit(train)
        recommended = set(model.recommend(0, 3).tolist())
        assert 0 not in recommended  # u0 read item 0

    def test_name(self):
        assert RandomItems().name == "Random Items"

    def test_seed_changes_scores(self, train):
        a = RandomItems(seed=1).fit(train).score_users(np.asarray([0]))
        b = RandomItems(seed=2).fit(train).score_users(np.asarray([0]))
        assert not np.allclose(a, b)


class TestMostReadItems:
    def test_ranks_by_event_count(self, train):
        model = MostReadItems().fit(train)
        assert model.top_items(3).tolist() == [0, 1, 2]

    def test_same_list_for_all_users(self, train):
        model = MostReadItems().fit(train)
        assert model.recommend(0, 2).tolist() == model.recommend(2, 2).tolist()

    def test_does_not_exclude_seen_by_default(self, train):
        model = MostReadItems().fit(train)
        # u0 read item 0, yet it is still recommended first (paper).
        assert model.recommend(0, 1).tolist() == [0]

    def test_personalized_variant_excludes_seen(self, train):
        model = MostReadItems(personalized=True).fit(train)
        assert 0 not in model.recommend(0, 2).tolist()
        assert "personalized" in model.name

    def test_multiplicity_counts(self, train):
        """Re-borrows push a book up the chart (key for Table 1)."""
        model = MostReadItems().fit(train)
        counts = train.item_counts()
        assert counts[0] == 3.0  # u0 borrowed twice + u1 once

    def test_deterministic_tiebreak(self):
        train = InteractionMatrix.from_pairs([("u", 0), ("v", 1)])
        model = MostReadItems().fit(train)
        assert model.top_items(2).tolist() == [0, 1]

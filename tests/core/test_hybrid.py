"""Tests for the hybrid CB+CF blend."""

import numpy as np
import pytest

from repro.core.hybrid import HybridRecommender, _rank_normalize
from repro.core.interactions import InteractionMatrix
from repro.errors import ConfigurationError

from tests.core.test_base import FixedScores


@pytest.fixture
def train():
    return InteractionMatrix.from_pairs([("u", 0), ("v", 1), ("w", 2)])


class TestRankNormalize:
    def test_maps_to_unit_interval(self):
        scores = np.asarray([[10.0, -5.0, 3.0]])
        normalized = _rank_normalize(scores)
        assert normalized.min() == 0.0 and normalized.max() == 1.0

    def test_preserves_order(self):
        scores = np.asarray([[10.0, -5.0, 3.0]])
        normalized = _rank_normalize(scores)[0]
        assert normalized[0] > normalized[2] > normalized[1]

    def test_scale_invariant(self):
        a = _rank_normalize(np.asarray([[1.0, 2.0, 3.0]]))
        b = _rank_normalize(np.asarray([[10.0, 200.0, 30000.0]]))
        assert np.allclose(a, b)


class TestHybrid:
    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            HybridRecommender(FixedScores([1.0]), FixedScores([1.0]), weight=1.5)

    def test_fits_both_components(self, train):
        first = FixedScores([3.0, 2.0, 1.0])
        second = FixedScores([1.0, 2.0, 3.0])
        hybrid = HybridRecommender(first, second, weight=0.5).fit(train)
        assert first.is_fitted and second.is_fitted

    def test_weight_one_equals_first(self, train):
        first = FixedScores([3.0, 2.0, 1.0])
        second = FixedScores([1.0, 2.0, 3.0])
        hybrid = HybridRecommender(first, second, weight=1.0).fit(train)
        user = 0
        assert (
            hybrid.recommend(user, 2).tolist()
            == first.recommend(user, 2).tolist()
        )

    def test_weight_zero_equals_second(self, train):
        first = FixedScores([3.0, 2.0, 1.0])
        second = FixedScores([1.0, 2.0, 3.0])
        hybrid = HybridRecommender(first, second, weight=0.0).fit(train)
        assert (
            hybrid.recommend(0, 2).tolist() == second.recommend(0, 2).tolist()
        )

    def test_name_mentions_components(self, train):
        hybrid = HybridRecommender(
            FixedScores([1.0]), FixedScores([1.0]), weight=0.25
        )
        assert "0.25" in hybrid.name

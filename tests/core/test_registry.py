"""Tests for the model registry."""

import pytest

from repro.core import BPR, ClosestItems, available_models, create_model, register_model
from repro.core.bpr import BPRConfig
from repro.errors import ConfigurationError, UnknownModelError


class TestRegistry:
    def test_builtin_models_registered(self):
        names = available_models()
        for expected in ("random", "most_read", "closest", "bpr", "item_knn"):
            assert expected in names

    def test_create_by_name(self):
        assert isinstance(create_model("bpr"), BPR)
        assert isinstance(create_model("closest"), ClosestItems)

    def test_create_forwards_kwargs(self):
        model = create_model("closest", fields=("author",))
        assert model.fields == ("author",)

    def test_create_bpr_with_config(self):
        model = create_model("bpr", config=BPRConfig(epochs=3))
        assert model.config.epochs == 3

    def test_create_bpr_with_plain_kwargs(self):
        model = create_model("bpr", epochs=4, n_factors=6)
        assert model.config.epochs == 4
        assert model.config.n_factors == 6

    def test_unknown_model(self):
        with pytest.raises(UnknownModelError):
            create_model("deep_learning")

    def test_case_insensitive(self):
        assert isinstance(create_model("BPR"), BPR)

    def test_double_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_model("bpr", BPR)

    def test_custom_registration(self):
        class Custom(BPR):
            pass

        register_model("custom_test_model", Custom)
        assert isinstance(create_model("custom_test_model"), Custom)

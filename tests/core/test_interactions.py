"""Tests for Indexer and InteractionMatrix."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interactions import Indexer, InteractionMatrix
from repro.errors import DatasetError, UnknownUserError


class TestIndexer:
    def test_sorted_assignment(self):
        indexer = Indexer(["b", "a", "c", "a"])
        assert indexer.ids == ("a", "b", "c")
        assert indexer.index_of("b") == 1
        assert indexer.id_of(0) == "a"

    def test_contains(self):
        indexer = Indexer([1, 2])
        assert 1 in indexer and 9 not in indexer

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            Indexer(["a"]).index_of("zzz")

    def test_equality(self):
        assert Indexer([2, 1]) == Indexer([1, 2, 2])

    def test_indices_of(self):
        indexer = Indexer(["a", "b", "c"])
        assert indexer.indices_of(["c", "a"]).tolist() == [2, 0]

    @settings(deadline=None, max_examples=50)
    @given(st.lists(st.integers(0, 50), min_size=1))
    def test_property_bijection(self, values):
        indexer = Indexer(values)
        for i in range(len(indexer)):
            assert indexer.index_of(indexer.id_of(i)) == i

    def test_indices_of_empty(self):
        result = Indexer(["a"]).indices_of([])
        assert result.dtype == np.int64 and len(result) == 0

    def test_indices_of_unknown_raises(self):
        indexer = Indexer([10, 20, 30])
        # Between two known ids, and beyond the last one (clamp path).
        with pytest.raises(KeyError):
            indexer.indices_of([10, 15])
        with pytest.raises(KeyError):
            indexer.indices_of([99])

    def test_indices_of_unsortable_ids_fall_back(self):
        # Tuple ids become a 2-D numpy array, so the searchsorted path is
        # unusable; the dict fallback must still resolve them.
        indexer = Indexer([("a", 1), ("b", 2)])
        assert indexer.indices_of([("b", 2), ("a", 1)]).tolist() == [1, 0]
        with pytest.raises(KeyError):
            indexer.indices_of([("c", 3)])

    @settings(deadline=None, max_examples=50)
    @given(st.lists(st.text(max_size=6), min_size=1, max_size=40))
    def test_property_indices_of_matches_index_of(self, values):
        indexer = Indexer(values)
        queries = list(indexer.ids) + list(reversed(indexer.ids))
        expected = [indexer.index_of(value) for value in queries]
        assert indexer.indices_of(queries).tolist() == expected


class TestInteractionMatrix:
    def test_from_pairs_counts_repeats(self):
        matrix = InteractionMatrix.from_pairs(
            [("u1", 1), ("u1", 1), ("u1", 2), ("u2", 1)]
        )
        assert matrix.n_users == 2 and matrix.n_items == 2
        assert matrix.n_interactions == 3  # distinct pairs
        counts = matrix.item_counts()
        assert counts[matrix.items.index_of(1)] == 3.0  # with multiplicity

    def test_user_items_sorted_indices(self):
        matrix = InteractionMatrix.from_pairs([("u", 5), ("u", 2), ("u", 9)])
        items = matrix.user_items(0)
        assert sorted(items.tolist()) == items.tolist()
        assert len(items) == 3

    def test_user_items_out_of_range(self):
        matrix = InteractionMatrix.from_pairs([("u", 1)])
        with pytest.raises(UnknownUserError):
            matrix.user_items(5)

    def test_history_sizes(self):
        matrix = InteractionMatrix.from_pairs(
            [("a", 1), ("a", 2), ("b", 1), ("a", 1)]
        )
        sizes = matrix.user_history_sizes()
        assert sizes[matrix.users.index_of("a")] == 2
        assert sizes[matrix.users.index_of("b")] == 1

    def test_binary_view(self):
        matrix = InteractionMatrix.from_pairs([("u", 1), ("u", 1)])
        assert matrix.binary().data.tolist() == [1.0]

    def test_positive_pairs_distinct(self):
        matrix = InteractionMatrix.from_pairs(
            [("u", 1), ("u", 1), ("v", 2)]
        )
        rows, cols = matrix.positive_pairs()
        assert len(rows) == 2

    def test_interaction_keys_sorted_and_complete(self):
        matrix = InteractionMatrix.from_pairs(
            [("u", 3), ("u", 1), ("v", 2)]
        )
        keys = matrix.interaction_keys()
        assert sorted(keys.tolist()) == keys.tolist()
        assert len(keys) == 3

    def test_shared_indexers_align(self, tiny_merged):
        users = Indexer(tiny_merged.user_ids)
        items = Indexer(int(b) for b in tiny_merged.books["book_id"])
        matrix = InteractionMatrix.from_readings_table(
            tiny_merged.readings, users=users, items=items
        )
        assert matrix.n_users == len(users)
        assert matrix.n_items == len(items)

    def test_shape_mismatch_rejected(self):
        from scipy import sparse

        with pytest.raises(DatasetError):
            InteractionMatrix(
                Indexer(["u"]), Indexer([1, 2]), sparse.csr_matrix((5, 5))
            )

    def test_restrict_users(self):
        matrix = InteractionMatrix.from_pairs(
            [("a", 1), ("b", 2), ("c", 1), ("c", 2)]
        )
        sub = matrix.restrict_users(
            np.asarray([matrix.users.index_of("c"), matrix.users.index_of("a")])
        )
        assert sub.n_users == 2
        assert sub.items == matrix.items
        # Row for "a" must still contain item 1 only.
        a_items = sub.user_items(sub.users.index_of("a"))
        assert a_items.tolist() == [matrix.items.index_of(1)]
        c_items = sub.user_items(sub.users.index_of("c"))
        assert len(c_items) == 2

"""Tests for the Item kNN extension."""

import numpy as np
import pytest

from repro.core.interactions import InteractionMatrix
from repro.core.item_knn import ItemKNN
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture
def train():
    # Items 0 and 1 are always co-read; item 2 is read alone.
    return InteractionMatrix.from_pairs(
        [("a", 0), ("a", 1), ("b", 0), ("b", 1), ("c", 2), ("d", 0), ("d", 1)]
    )


class TestConfig:
    def test_invalid_neighbors(self):
        with pytest.raises(ConfigurationError):
            ItemKNN(n_neighbors=0)

    def test_invalid_shrinkage(self):
        with pytest.raises(ConfigurationError):
            ItemKNN(shrinkage=-1.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ItemKNN().similarity


class TestSimilarity:
    def test_coread_items_similar(self, train):
        model = ItemKNN(shrinkage=0.0).fit(train)
        sim = model.similarity
        assert sim[0, 1] > sim[0, 2]
        assert sim[0, 1] == pytest.approx(1.0)

    def test_diagonal_zero(self, train):
        model = ItemKNN(shrinkage=0.0).fit(train)
        assert np.allclose(np.diag(model.similarity), 0.0)

    def test_shrinkage_discounts(self, train):
        raw = ItemKNN(shrinkage=0.0).fit(train).similarity[0, 1]
        shrunk = ItemKNN(shrinkage=5.0).fit(train).similarity[0, 1]
        assert shrunk < raw

    def test_neighbor_truncation(self):
        # Item 0's co-read strength: item 1 (3 users) > 2 (2) > 3 (1).
        pairs = [
            ("u1", 0), ("u1", 1),
            ("u2", 0), ("u2", 1),
            ("u3", 0), ("u3", 1), ("u3", 2),
            ("u4", 0), ("u4", 2),
            ("u5", 0), ("u5", 3),
            ("u6", 4),
        ]
        train = InteractionMatrix.from_pairs(pairs)
        model = ItemKNN(n_neighbors=2, shrinkage=0.0).fit(train)
        row = model.similarity[0]
        assert row[1] > 0 and row[2] > 0
        assert row[3] == 0.0  # truncated: weaker than the top-2 neighbours


class TestRecommendation:
    def test_recommends_coread_partner(self, train):
        model = ItemKNN(shrinkage=0.0).fit(train)
        # User "e" who read only item 0 should be recommended item 1.
        extended = InteractionMatrix.from_pairs(
            [("a", 0), ("a", 1), ("b", 0), ("b", 1), ("e", 0)],
        )
        model = ItemKNN(shrinkage=0.0).fit(extended)
        user = extended.users.index_of("e")
        assert model.recommend(user, 1).tolist() == [1]

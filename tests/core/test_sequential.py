"""Tests for the sequential Markov-chain recommender."""

import numpy as np
import pytest

from repro.core.sequential import SequentialMarkov
from repro.errors import ConfigurationError, NotFittedError


class TestConfig:
    def test_window_validated(self):
        with pytest.raises(ConfigurationError):
            SequentialMarkov(window=0)

    def test_decay_validated(self):
        with pytest.raises(ConfigurationError):
            SequentialMarkov(decay=0.0)
        with pytest.raises(ConfigurationError):
            SequentialMarkov(decay=1.5)

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            SequentialMarkov(alpha=-0.1)

    def test_requires_dataset(self, tiny_split):
        with pytest.raises(ConfigurationError, match="dated readings"):
            SequentialMarkov().fit(tiny_split.train, None)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            SequentialMarkov().score_users(np.asarray([0]))


class TestFitting:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split, tiny_merged):
        return SequentialMarkov().fit(tiny_split.train, tiny_merged)

    def test_transition_rows_bounded(self, fitted):
        transitions = fitted._transitions
        assert transitions.shape[0] == transitions.shape[1]
        assert (transitions >= 0).all()
        # Damped rows sum to at most the undamped stochastic 1.0.
        assert transitions.sum(axis=1).max() <= 1.0 + 1e-9

    def test_no_self_transitions(self, fitted, tiny_split):
        scores = fitted.score_users(np.asarray([0]))
        assert scores.shape == (1, tiny_split.train.n_items)

    def test_recent_windows_respected(self, fitted):
        assert all(
            len(recent) <= fitted.window for recent in fitted._recent.values()
        )

    def test_recent_items_come_from_training_history(self, fitted, tiny_split):
        for user, recent in list(fitted._recent.items())[:30]:
            train_items = set(tiny_split.train.user_items(user).tolist())
            assert set(recent) <= train_items

    def test_recommend_excludes_seen(self, fitted, tiny_split):
        user = next(iter(tiny_split.test_items))
        seen = set(tiny_split.train.user_items(user).tolist())
        assert not seen & set(fitted.recommend(user, 10).tolist())

    def test_beats_random_on_calibrated_world(
        self, fitted, tiny_split, tiny_merged
    ):
        """Reading order in the world carries signal (author loyalty,
        community drift); the chain must exploit at least some of it."""
        from repro.core.random_items import RandomItems
        from repro.eval.evaluator import evaluate_model, fit_and_evaluate

        sequential = evaluate_model(fitted, tiny_split, ks=(20,))
        random = fit_and_evaluate(
            RandomItems(seed=0), tiny_split, tiny_merged, ks=(20,)
        )
        # The tiny catalogue makes random strong in URR terms; NRR shows
        # the chain's edge more robustly.
        assert sequential.report(20).urr > random.report(20).urr
        assert sequential.report(20).nrr > 1.5 * random.report(20).nrr

"""Warm-start retrain and user fold-in: the incremental halves of BPR.

A library's catalogue and membership grow continuously; retraining from
scratch every night is wasteful and folding a new member in should not
need a retrain at all. Contract under test:

- ``fit(..., warm_start=old)`` seeds factor rows by *external id*, so
  the catalogue may grow, shrink, or reorder between fits, and the run
  stays a pure function of ``(config, train, warm factors)``;
- a warm retrain started from a model fitted on the chronological first
  half of the data reaches validation URR within ``WARM_URR_TOLERANCE``
  of the from-scratch fit (measured ~0.05 on the tiny world);
- ``fold_in_users`` gives brand-new users *personalised* top-k lists —
  served by the primary model, different per history, not the
  popularity list — while leaving every existing user's factors
  byte-identical.
"""

import numpy as np
import pytest

from repro.app.service import (
    SERVED_BY_PRIMARY,
    RecommendationRequest,
    RecommendationService,
)
from repro.core import BPR, BPRConfig
from repro.core.bpr import _seed_from_model, fold_in_users
from repro.core.interactions import InteractionMatrix
from repro.core.most_read import MostReadItems
from repro.errors import ConfigurationError, NotFittedError
from repro.eval.evaluator import evaluate_model

#: Documented quality tolerance for a warm retrain vs. a cold fit: on the
#: tiny world the measured val-URR gap is ~0.05 (one user in twenty-one),
#: so 0.1 gives 2x headroom without letting a broken warm start pass.
WARM_URR_TOLERANCE = 0.1

TINY_CFG = BPRConfig(epochs=6, seed=1)


@pytest.fixture(scope="module")
def first_half_model(tiny_merged):
    """A model fitted on the chronologically first half of all readings."""
    readings = tiny_merged.readings
    dates = sorted(readings["read_date"])
    cutoff = dates[len(dates) // 2]
    pairs = [
        (str(user), int(book))
        for user, book, date in zip(
            readings["user_id"], readings["book_id"], readings["read_date"]
        )
        if date <= cutoff
    ]
    train = InteractionMatrix.from_pairs(pairs)
    return BPR(TINY_CFG).fit(train)


class TestWarmStart:
    def test_warm_fit_is_deterministic(
        self, tiny_split, tiny_merged, first_half_model
    ):
        def fit():
            return BPR(TINY_CFG).fit(
                tiny_split.train, tiny_merged, warm_start=first_half_model
            )

        first, second = fit(), fit()
        assert np.array_equal(first.user_factors, second.user_factors)
        assert np.array_equal(first.item_factors, second.item_factors)

    def test_warm_retrain_quality_within_tolerance(
        self, tiny_bpr, tiny_split, tiny_merged, first_half_model
    ):
        # the first-half catalogue genuinely differs from the full one,
        # so this exercises the grown-catalogue seeding path
        assert first_half_model.train.n_users != tiny_split.train.n_users or (
            first_half_model.train.n_items != tiny_split.train.n_items
        )
        warm = BPR(TINY_CFG).fit(
            tiny_split.train, tiny_merged, warm_start=first_half_model
        )
        cold_urr = evaluate_model(
            tiny_bpr, tiny_split, ks=(20,), holdout="val"
        ).report(20).urr
        warm_urr = evaluate_model(
            warm, tiny_split, ks=(20,), holdout="val"
        ).report(20).urr
        assert warm_urr == pytest.approx(cold_urr, abs=WARM_URR_TOLERANCE)

    def test_seeding_matches_rows_by_external_id(self, first_half_model):
        # a shuffled, partially-overlapping catalogue: seeded rows must
        # land where the *new* indexer puts each shared id
        old_train = first_half_model.train
        user_ids = list(old_train.users.ids)
        item_ids = list(old_train.items.ids)
        pairs = [(user_ids[1], item_ids[0]), (user_ids[0], item_ids[1]),
                 ("brand-new-user", item_ids[0])]
        new_train = InteractionMatrix.from_pairs(pairs)
        n_factors = first_half_model.config.n_factors
        sentinel = 123.0
        V = np.full((new_train.n_users, n_factors), sentinel)
        P = np.full((new_train.n_items, n_factors), sentinel)
        _seed_from_model(first_half_model, new_train, V, P)
        for user_id in (user_ids[0], user_ids[1]):
            assert np.allclose(
                V[new_train.users.index_of(user_id)],
                first_half_model.user_factors[
                    old_train.users.index_of(user_id)
                ],
            )
        # ids the old model never saw keep their fresh initialisation
        assert np.all(V[new_train.users.index_of("brand-new-user")] == sentinel)
        assert np.allclose(
            P[new_train.items.index_of(item_ids[1])],
            first_half_model.item_factors[old_train.items.index_of(item_ids[1])],
        )

    def test_warm_start_must_be_fitted(self, tiny_split, tiny_merged):
        with pytest.raises(NotFittedError):
            BPR(TINY_CFG).fit(
                tiny_split.train, tiny_merged, warm_start=BPR(TINY_CFG)
            )

    def test_warm_start_factor_mismatch_rejected(
        self, tiny_split, tiny_merged, first_half_model
    ):
        config = BPRConfig(epochs=6, seed=1, n_factors=8)
        with pytest.raises(ConfigurationError, match="factors"):
            BPR(config).fit(
                tiny_split.train, tiny_merged, warm_start=first_half_model
            )


@pytest.fixture(scope="module")
def folded(tiny_bpr, tiny_split):
    """Two brand-new users with disjoint histories folded into tiny_bpr."""
    item_ids = list(tiny_split.train.items.ids)
    histories = {
        "newcomer-a": item_ids[:6],
        "newcomer-b": item_ids[-6:],
    }
    model, train = fold_in_users(tiny_bpr, tiny_split.train, histories)
    return model, train, histories


class TestFoldIn:
    def test_existing_users_untouched(self, folded, tiny_bpr, tiny_split):
        model, train, _ = folded
        assert train.n_users == tiny_split.train.n_users + 2
        assert model.item_factors is tiny_bpr.item_factors
        old_ids = list(tiny_split.train.users.ids)
        old_rows = tiny_split.train.users.indices_of(old_ids)
        new_rows = train.users.indices_of(old_ids)
        assert np.array_equal(
            model.user_factors[new_rows], tiny_bpr.user_factors[old_rows]
        )
        # and their interaction rows survived the splice
        user = old_ids[0]
        assert np.array_equal(
            train.csr[train.users.index_of(user)].toarray(),
            tiny_split.train.csr[tiny_split.train.users.index_of(user)]
            .toarray(),
        )

    def test_new_users_get_personalised_unread_lists(self, folded):
        model, train, histories = folded
        lists = {}
        for user_id, books in histories.items():
            index = train.users.index_of(user_id)
            top = model.recommend(index, k=10)
            seen = set(train.items.indices_of(books))
            assert len(top) == 10
            assert not seen & set(top)
            lists[user_id] = tuple(top)
        # different histories produce different rankings
        assert lists["newcomer-a"] != lists["newcomer-b"]

    def test_fold_in_is_not_the_popularity_list(
        self, folded, tiny_split, tiny_merged
    ):
        model, train, histories = folded
        most_read = MostReadItems().fit(tiny_split.train, tiny_merged)
        popular = tuple(most_read.recommend(0, k=10))
        for user_id in histories:
            top = tuple(model.recommend(train.users.index_of(user_id), k=10))
            assert top != popular

    def test_folded_model_serves_new_users_as_primary(
        self, folded, tiny_merged
    ):
        model, train, histories = folded
        service = RecommendationService(model, train, tiny_merged, cache_size=0)
        for user_id in histories:
            response = service.recommend_response(
                RecommendationRequest(user_id=user_id, k=5)
            )
            assert response.served_by == SERVED_BY_PRIMARY
            assert not response.degraded
            assert len(response.books) == 5

    def test_fold_in_is_deterministic(self, tiny_bpr, tiny_split):
        item_ids = list(tiny_split.train.items.ids)
        histories = {"newcomer": item_ids[:4]}
        first, _ = fold_in_users(tiny_bpr, tiny_split.train, histories)
        second, _ = fold_in_users(tiny_bpr, tiny_split.train, histories)
        assert np.array_equal(first.user_factors, second.user_factors)

    def test_fold_in_rejects_bad_input(self, tiny_bpr, tiny_split):
        item_ids = list(tiny_split.train.items.ids)
        existing = str(tiny_split.train.users.ids[0])
        with pytest.raises(ConfigurationError, match="already in"):
            fold_in_users(
                tiny_bpr, tiny_split.train, {existing: item_ids[:2]}
            )
        with pytest.raises(ConfigurationError, match="empty history"):
            fold_in_users(tiny_bpr, tiny_split.train, {"newcomer": []})
        with pytest.raises(ConfigurationError, match="unknown book"):
            fold_in_users(tiny_bpr, tiny_split.train, {"newcomer": [-42]})
        with pytest.raises(ConfigurationError, match="at least one"):
            fold_in_users(tiny_bpr, tiny_split.train, {})
        with pytest.raises(NotFittedError):
            fold_in_users(
                BPR(TINY_CFG), tiny_split.train, {"newcomer": item_ids[:2]}
            )

"""Tests for the Recommender base-class contract."""

import numpy as np
import pytest

from repro.core.base import EXCLUDED_SCORE, Recommender
from repro.core.interactions import InteractionMatrix
from repro.errors import ConfigurationError, NotFittedError


class FixedScores(Recommender):
    """Test double: identical deterministic scores for every user."""

    def __init__(self, scores, exclude_seen=True):
        super().__init__()
        self._scores = np.asarray(scores, dtype=np.float64)
        self.exclude_seen = exclude_seen

    def _fit(self, train, dataset):
        pass

    def score_users(self, user_indices):
        return np.tile(self._scores, (len(user_indices), 1))


@pytest.fixture
def train():
    # u0 read items 0 and 2; u1 read item 1.
    return InteractionMatrix.from_pairs([("u0", 0), ("u0", 2), ("u1", 1)])


class TestFitContract:
    def test_not_fitted_errors(self):
        model = FixedScores([1.0, 2.0, 3.0])
        with pytest.raises(NotFittedError):
            model.train
        assert not model.is_fitted

    def test_fit_returns_self(self, train):
        model = FixedScores([1.0, 2.0, 3.0])
        assert model.fit(train) is model
        assert model.is_fitted

    def test_default_name(self, train):
        assert FixedScores([1.0]).name == "FixedScores"


class TestMasking:
    def test_seen_items_masked(self, train):
        model = FixedScores([3.0, 2.0, 1.0]).fit(train)
        scores = model.masked_scores(np.asarray([0]))
        assert scores[0, 0] == EXCLUDED_SCORE
        assert scores[0, 2] == EXCLUDED_SCORE
        assert scores[0, 1] == 2.0

    def test_masking_disabled(self, train):
        model = FixedScores([3.0, 2.0, 1.0], exclude_seen=False).fit(train)
        scores = model.masked_scores(np.asarray([0]))
        assert scores[0, 0] == 3.0

    def test_masking_is_per_user(self, train):
        model = FixedScores([3.0, 2.0, 1.0]).fit(train)
        scores = model.masked_scores(np.asarray([0, 1]))
        assert scores[1, 1] == EXCLUDED_SCORE
        assert scores[1, 0] == 3.0


class TestRecommend:
    def test_top_k_order(self, train):
        model = FixedScores([3.0, 2.0, 1.0], exclude_seen=False).fit(train)
        assert model.recommend(0, 2).tolist() == [0, 1]

    def test_recommend_excludes_seen(self, train):
        # u0 read items 0 and 2; only item 1 remains recommendable, so the
        # list is short rather than padded with read books.
        model = FixedScores([3.0, 2.0, 1.0]).fit(train)
        assert model.recommend(0, 2).tolist() == [1]

    def test_k_validation(self, train):
        model = FixedScores([1.0]).fit(train)
        with pytest.raises(ConfigurationError):
            model.recommend(0, 0)
        with pytest.raises(ConfigurationError):
            model.recommend_batch(np.asarray([0]), -1)

    def test_k_larger_than_catalogue(self, train):
        model = FixedScores([3.0, 2.0, 1.0], exclude_seen=False).fit(train)
        assert len(model.recommend(0, 100)) == 3

    def test_batch_matches_single(self, train):
        model = FixedScores([5.0, 1.0, 3.0]).fit(train)
        batch = model.recommend_batch(np.asarray([0, 1]), 2)
        assert batch[0].tolist() == model.recommend(0, 2).tolist()
        assert batch[1].tolist() == model.recommend(1, 2).tolist()

    def test_rank_items_is_full_permutation(self, train):
        model = FixedScores([5.0, 1.0, 3.0]).fit(train)
        ranking = model.rank_items(0)
        assert sorted(ranking.tolist()) == [0, 1, 2]
        # Masked (seen) items sort last.
        assert set(ranking[-2:].tolist()) == {0, 2}

"""Tests for the BPR recommender."""

import numpy as np
import pytest

from repro.core.bpr import BPR, BPRConfig
from repro.core.interactions import InteractionMatrix
from repro.errors import ConfigurationError, NotFittedError
from repro.rng import make_rng


def block_world(n_users=40, n_items=30, seed=3):
    """Two disjoint taste blocks: users read only their block's items."""
    rng = make_rng(seed)
    pairs = []
    for u in range(n_users):
        block = u % 2
        items = np.arange(block * n_items // 2, (block + 1) * n_items // 2)
        chosen = rng.choice(items, size=8, replace=False)
        pairs.extend((f"u{u:03d}", int(i)) for i in chosen)
    return InteractionMatrix.from_pairs(pairs)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_factors": 0},
            {"learning_rate": 0.0},
            {"epochs": 0},
            {"batch_size": 0},
            {"regularization": -0.1},
            {"sampler": "importance"},
            {"max_trials": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            BPRConfig(**kwargs)

    def test_defaults_match_grid_winner(self):
        config = BPRConfig()
        assert config.n_factors == 20
        assert config.sampler == "warp"


class TestTraining:
    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            BPR().user_factors

    def test_factor_shapes(self):
        train = block_world()
        model = BPR(BPRConfig(epochs=2, n_factors=8, seed=0)).fit(train)
        assert model.user_factors.shape == (train.n_users, 8)
        assert model.item_factors.shape == (train.n_items, 8)

    def test_history_recorded(self):
        model = BPR(BPRConfig(epochs=3, seed=0)).fit(block_world())
        assert len(model.history) == 3
        assert all(s.seconds >= 0 for s in model.history)
        assert all(0 <= s.updated_fraction <= 1 for s in model.history)

    def test_samples_per_second_is_pairs_over_epoch_seconds(self):
        """The one shared throughput definition (EpochStats, the
        ``bpr.samples_per_second`` gauge, and bench-train all use it)."""
        train = block_world()
        model = BPR(BPRConfig(epochs=2, seed=0)).fit(train)
        for stats in model.history:
            assert stats.samples_per_second > 0
            assert stats.samples_per_second == pytest.approx(
                train.n_interactions / stats.seconds
            )

    def test_deterministic_given_seed(self):
        train = block_world()
        first = BPR(BPRConfig(epochs=2, seed=5)).fit(train)
        second = BPR(BPRConfig(epochs=2, seed=5)).fit(train)
        assert np.array_equal(first.user_factors, second.user_factors)

    def test_seeds_differ(self):
        train = block_world()
        first = BPR(BPRConfig(epochs=2, seed=5)).fit(train)
        second = BPR(BPRConfig(epochs=2, seed=6)).fit(train)
        assert not np.array_equal(first.user_factors, second.user_factors)

    def test_needs_two_items(self):
        train = InteractionMatrix.from_pairs([("u", 1)])
        with pytest.raises(ConfigurationError, match="two items"):
            BPR(BPRConfig(epochs=1)).fit(train)

    def test_learns_block_structure(self):
        """Users must rank their own block's unread items above the other
        block's — the minimal CF competence check."""
        train = block_world()
        model = BPR(BPRConfig(epochs=15, seed=0)).fit(train)
        scores = model.score_users(np.asarray([0]))[0]  # block-0 user
        own_block = np.arange(0, train.n_items // 2)
        other_block = np.arange(train.n_items // 2, train.n_items)
        seen = set(train.user_items(0).tolist())
        own_unseen = [i for i in own_block if i not in seen]
        assert scores[own_unseen].mean() > scores[other_block].mean()

    def test_uniform_sampler_also_learns(self):
        train = block_world()
        model = BPR(
            BPRConfig(epochs=15, seed=0, sampler="uniform")
        ).fit(train)
        scores = model.score_users(np.asarray([0]))[0]
        own = np.arange(0, train.n_items // 2)
        other = np.arange(train.n_items // 2, train.n_items)
        seen = set(train.user_items(0).tolist())
        own_unseen = [i for i in own if i not in seen]
        assert scores[own_unseen].mean() > scores[other].mean()


class TestScoring:
    def test_score_matrix_shape(self):
        train = block_world()
        model = BPR(BPRConfig(epochs=1, seed=0)).fit(train)
        scores = model.score_users(np.asarray([0, 3, 5]))
        assert scores.shape == (3, train.n_items)

    def test_scores_are_factor_products(self):
        train = block_world()
        model = BPR(BPRConfig(epochs=1, seed=0)).fit(train)
        scores = model.score_users(np.asarray([2]))[0]
        expected = model.user_factors[2] @ model.item_factors.T
        assert np.allclose(scores, expected)

    def test_recommend_excludes_seen(self):
        train = block_world()
        model = BPR(BPRConfig(epochs=2, seed=0)).fit(train)
        seen = set(train.user_items(0).tolist())
        assert not seen & set(model.recommend(0, 10).tolist())

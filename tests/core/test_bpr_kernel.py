"""Tests for the tiered training kernels (``repro.core.bpr_kernel``).

The anchor of the whole tier system is the bit-identity of the
``reference`` kernel with the pre-refactor trainer: ``_FrozenTrainer``
below is a verbatim copy of the historical ``BPR._fit`` inner loop
(including the original overflow-prone sigmoid), and the reference
kernel must reproduce its factors exactly for the WARP sampler and to
within float ulps for the uniform sampler (whose sigmoid was
intentionally replaced by the overflow-safe form).
"""

import numpy as np
import pytest

from repro.core.bpr import BPR, BPRConfig
from repro.core.bpr_kernel import (
    RESAMPLE_ROUNDS,
    fork_sharing_available,
    predraw_candidates,
    sample_unseen,
    scatter_add,
    shared_empty,
    stable_neg_sigmoid,
)
from repro.core.interactions import InteractionMatrix
from repro.errors import ConfigurationError
from repro.rng import derive_rng, make_rng

from tests.core.test_bpr import block_world


class _FrozenTrainer:
    """The pre-refactor BPR SGD loop, frozen verbatim for bit-identity.

    Copied from the historical ``BPR._fit``/``_train_batch``/
    ``_sample_unseen``/``_apply_updates`` (minus telemetry, which never
    touched the RNG or the arithmetic). Do not modernise this code —
    its whole value is staying bit-equal to the pre-PR trainer.
    """

    def __init__(self, config):
        self.config = config

    def fit(self, train):
        cfg = self.config
        rng = derive_rng(cfg.seed, "bpr", "sgd")
        n_users, n_items = train.n_users, train.n_items
        scale = 1.0 / np.sqrt(cfg.n_factors)
        V = rng.normal(0.0, scale, size=(n_users, cfg.n_factors))
        P = rng.normal(0.0, scale, size=(n_items, cfg.n_factors))
        pos_users, pos_items = train.positive_pairs()
        seen_keys = train.interaction_keys()
        for _ in range(cfg.epochs):
            order = rng.permutation(len(pos_users))
            for start in range(0, len(order), cfg.batch_size):
                batch = order[start:start + cfg.batch_size]
                self._train_batch(
                    V, P, pos_users[batch], pos_items[batch],
                    seen_keys, n_items, rng,
                )
        return V, P

    def _train_batch(self, V, P, users, items, seen_keys, n_items, rng):
        cfg = self.config
        batch = len(users)
        Vu = V[users]
        pos_scores = np.einsum("ij,ij->i", Vu, P[items])

        if cfg.sampler == "uniform":
            negatives = self._sample_unseen(users, seen_keys, n_items, rng)
            neg_scores = np.einsum("ij,ij->i", Vu, P[negatives])
            x = pos_scores - neg_scores
            weight = 1.0 / (1.0 + np.exp(x))  # the historical naive sigmoid
            self._apply_updates(V, P, users, items, negatives, weight)
            return

        negatives = np.zeros(batch, dtype=np.int64)
        trials = np.zeros(batch, dtype=np.int64)
        unresolved = np.ones(batch, dtype=bool)
        for trial in range(1, cfg.max_trials + 1):
            active = np.flatnonzero(unresolved)
            if active.size == 0:
                break
            candidates = self._sample_unseen(
                users[active], seen_keys, n_items, rng
            )
            cand_scores = np.einsum("ij,ij->i", Vu[active], P[candidates])
            violating = cand_scores > pos_scores[active] - cfg.margin
            hit = active[violating]
            negatives[hit] = candidates[violating]
            trials[hit] = trial
            unresolved[hit] = False
        resolved = trials > 0
        if not resolved.any():
            return
        rank_estimate = np.maximum((n_items - 1) / trials[resolved], 1.0)
        weight = np.log1p(rank_estimate) / np.log1p(n_items - 1)
        self._apply_updates(
            V, P, users[resolved], items[resolved], negatives[resolved], weight
        )

    def _sample_unseen(self, users, seen_keys, n_items, rng):
        candidates = rng.integers(0, n_items, size=len(users), dtype=np.int64)
        for _ in range(4):
            keys = users * np.int64(n_items) + candidates
            positions = np.searchsorted(seen_keys, keys)
            positions = np.minimum(positions, len(seen_keys) - 1)
            seen = seen_keys[positions] == keys
            if not seen.any():
                break
            candidates[seen] = rng.integers(
                0, n_items, size=int(seen.sum()), dtype=np.int64
            )
        return candidates

    def _apply_updates(self, V, P, users, items, negatives, weight):
        cfg = self.config
        lr = cfg.learning_rate
        reg = cfg.regularization
        Vu = V[users]
        diff = P[items] - P[negatives]
        w = weight[:, None]
        np.add.at(V, users, lr * (w * diff - reg * Vu))
        np.add.at(P, items, lr * (w * Vu - reg * P[items]))
        np.add.at(P, negatives, lr * (-w * Vu - reg * P[negatives]))


def _block_preference(model, train):
    """Mean score gap of a block-0 user's unseen own-block items over the
    other block's — positive once the model has learned the structure."""
    scores = model.score_users(np.asarray([0]))[0]
    own = np.arange(0, train.n_items // 2)
    other = np.arange(train.n_items // 2, train.n_items)
    seen = set(train.user_items(0).tolist())
    own_unseen = [i for i in own if i not in seen]
    return scores[own_unseen].mean() - scores[other].mean()


class TestReferenceBitIdentity:
    def test_warp_bit_identical_to_pre_refactor_trainer(self):
        train = block_world()
        config = BPRConfig(epochs=4, seed=11, sampler="warp")
        frozen_V, frozen_P = _FrozenTrainer(config).fit(train)
        model = BPR(config).fit(train)
        assert np.array_equal(model.user_factors, frozen_V)
        assert np.array_equal(model.item_factors, frozen_P)

    def test_uniform_matches_pre_refactor_trainer_to_ulps(self):
        """The uniform path's one intentional change is the overflow-safe
        sigmoid, bit-identical for non-positive margins and within float
        ulps elsewhere — so the factors agree to tight tolerance."""
        train = block_world()
        config = BPRConfig(epochs=4, seed=11, sampler="uniform")
        frozen_V, frozen_P = _FrozenTrainer(config).fit(train)
        model = BPR(config).fit(train)
        np.testing.assert_allclose(model.user_factors, frozen_V, rtol=1e-10)
        np.testing.assert_allclose(model.item_factors, frozen_P, rtol=1e-10)

    def test_reference_is_the_default_kernel(self):
        assert BPRConfig().kernel == "reference"


class TestStableSigmoid:
    def test_no_overflow_for_large_inputs(self):
        # The naive 1 / (1 + exp(x)) overflows (an error under the
        # suite's filterwarnings) beyond x ~ 709.
        x = np.array([-1e4, -710.0, 0.0, 710.0, 1e4])
        out = stable_neg_sigmoid(x)
        assert np.all(np.isfinite(out))
        assert out[0] == 1.0 and out[-1] == 0.0

    def test_bit_identical_to_naive_for_non_positive_x(self):
        x = -np.linspace(0.0, 500.0, 1001)
        assert np.array_equal(stable_neg_sigmoid(x), 1.0 / (1.0 + np.exp(x)))

    def test_close_to_naive_for_positive_x(self):
        x = np.linspace(1e-6, 500.0, 1001)
        np.testing.assert_allclose(
            stable_neg_sigmoid(x), 1.0 / (1.0 + np.exp(x)), rtol=1e-15
        )

    def test_preserves_float32(self):
        out = stable_neg_sigmoid(np.array([-2.0, 3.0], dtype=np.float32))
        assert out.dtype == np.float32


class TestScatterAdd:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_accumulates_duplicates_like_add_at(self, dtype):
        rng = make_rng(0)
        target = rng.normal(size=(50, 8))
        indices = rng.integers(0, 50, size=400)
        updates = rng.normal(size=(400, 8))
        expected = target.copy()
        np.add.at(expected, indices, updates)
        actual = target.astype(dtype)
        scatter_add(actual, indices, updates.astype(dtype))
        # float32 input rounds each update once; the accumulation itself
        # runs in float64 inside np.bincount.
        np.testing.assert_allclose(actual, expected, rtol=1e-4, atol=1e-5)

    def test_rows_without_updates_untouched(self):
        target = np.ones((10, 3))
        scatter_add(target, np.array([2, 2]), np.full((2, 3), 0.5))
        assert np.array_equal(target[2], [2.0, 2.0, 2.0])
        untouched = np.delete(target, 2, axis=0)
        assert np.array_equal(untouched, np.ones((9, 3)))


class TestSampleUnseen:
    def test_searchsorted_past_the_end_is_clamped(self):
        """A candidate key larger than every seen key lands searchsorted
        at ``len(seen_keys)``; the clamp must keep the candidate instead
        of raising or comparing out of bounds."""
        # Only user 0 has interactions, so user 9's keys all exceed the max.
        train = InteractionMatrix.from_pairs(
            [("u0", 0), ("u0", 1)] + [(f"u{u}", 2) for u in range(1, 10)]
        )
        seen_keys = train.interaction_keys()
        users = np.full(64, train.n_users - 1, dtype=np.int64)
        rng = make_rng(7)
        candidates = sample_unseen(users, seen_keys, train.n_items, rng)
        # Bit-reproduce the draw: nothing that user reads beyond item 2,
        # so the first draw must be kept verbatim wherever it is unseen.
        expected = make_rng(7).integers(
            0, train.n_items, size=64, dtype=np.int64
        )
        seen = set(train.user_items(train.n_users - 1).tolist())
        kept = np.array([item not in seen for item in expected])
        assert np.array_equal(candidates[kept], expected[kept])

    def test_all_but_one_item_read_never_raises_and_can_find_it(self):
        """A user who has read everything except one item exercises the
        collision path hard; the sampler must terminate after its redraw
        rounds and at least sometimes land on the single unseen item."""
        n_items = 12
        unseen_item = 7
        pairs = [("u0", i) for i in range(n_items) if i != unseen_item]
        pairs += [("u1", unseen_item)]  # so the item exists in the matrix
        train = InteractionMatrix.from_pairs(pairs)
        seen_keys = train.interaction_keys()
        users = np.zeros(256, dtype=np.int64)
        candidates = sample_unseen(
            users, seen_keys, train.n_items, make_rng(3)
        )
        assert np.all((candidates >= 0) & (candidates < train.n_items))
        assert (candidates == unseen_item).any()

    def test_collision_survivors_keep_their_last_draw(self):
        """After the redraw rounds a still-colliding candidate is kept:
        the pinned no-op semantics (positive vs itself trains down to
        the regularisation pull) rather than a loop or an error."""
        # One user, two items, both read: every draw collides forever.
        train = InteractionMatrix.from_pairs([("u0", 0), ("u0", 1)])
        seen_keys = train.interaction_keys()
        users = np.zeros(32, dtype=np.int64)
        rng = make_rng(1)
        candidates = sample_unseen(users, seen_keys, train.n_items, rng)
        # Reproduce the RNG stream: initial draw + RESAMPLE_ROUNDS full
        # redraws (every candidate collides every round).
        mirror = make_rng(1)
        expected = mirror.integers(0, 2, size=32, dtype=np.int64)
        for _ in range(RESAMPLE_ROUNDS):
            expected = mirror.integers(0, 2, size=32, dtype=np.int64)
        assert np.array_equal(candidates, expected)


class TestPredrawCandidates:
    def test_valid_entries_are_unseen(self):
        train = block_world()
        seen_keys = train.interaction_keys()
        users = np.arange(train.n_users, dtype=np.int64)
        candidates, valid = predraw_candidates(
            users, seen_keys, train.n_items, 16, make_rng(5)
        )
        assert candidates.shape == (train.n_users, 16)
        assert valid.shape == candidates.shape
        for row, user in enumerate(users):
            seen = set(train.user_items(int(user)).tolist())
            for col in range(16):
                if valid[row, col]:
                    assert int(candidates[row, col]) not in seen
                else:
                    assert int(candidates[row, col]) in seen

    def test_deterministic_given_rng(self):
        train = block_world()
        seen_keys = train.interaction_keys()
        users = np.arange(train.n_users, dtype=np.int64)
        first = predraw_candidates(
            users, seen_keys, train.n_items, 8, make_rng(9)
        )
        second = predraw_candidates(
            users, seen_keys, train.n_items, 8, make_rng(9)
        )
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])


class TestFastKernel:
    @pytest.mark.parametrize("sampler", ["warp", "uniform"])
    def test_learns_block_structure(self, sampler):
        train = block_world()
        model = BPR(
            BPRConfig(epochs=15, seed=0, sampler=sampler, kernel="fast")
        ).fit(train)
        assert model.user_factors.dtype == np.float32
        assert _block_preference(model, train) > 0

    def test_deterministic_given_seed(self):
        train = block_world()
        first = BPR(BPRConfig(epochs=3, seed=5, kernel="fast")).fit(train)
        second = BPR(BPRConfig(epochs=3, seed=5, kernel="fast")).fit(train)
        assert np.array_equal(first.user_factors, second.user_factors)

    def test_converges_to_reference_kpi_level(self):
        """The converged-KPI equivalence contract: both kernels must
        learn the block structure decisively from the same config."""
        train = block_world()
        config = BPRConfig(epochs=15, seed=0)
        reference = BPR(config).fit(train)
        from dataclasses import replace

        fast = BPR(replace(config, kernel="fast")).fit(train)
        assert _block_preference(reference, train) > 0
        assert _block_preference(fast, train) > 0


class TestConfigTiers:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError, match="kernel"):
            BPRConfig(kernel="turbo")

    @pytest.mark.parametrize("workers", [0, -2])
    def test_bad_worker_counts_rejected(self, workers):
        with pytest.raises(ConfigurationError, match="workers"):
            BPRConfig(workers=workers, kernel="fast")

    def test_hogwild_requires_fast_kernel(self):
        with pytest.raises(ConfigurationError, match="fast"):
            BPRConfig(workers=2, kernel="reference")


@pytest.mark.skipif(
    not fork_sharing_available(), reason="hogwild needs the fork start method"
)
class TestHogwild:
    def test_learns_block_structure(self):
        train = block_world()
        model = BPR(
            BPRConfig(epochs=15, seed=0, kernel="fast", workers=2)
        ).fit(train)
        assert model.user_factors.dtype == np.float32
        assert _block_preference(model, train) > 0

    def test_factors_are_plain_arrays(self):
        """Fitted factors must not alias the shared mmap buffers."""
        train = block_world()
        model = BPR(
            BPRConfig(epochs=2, seed=0, kernel="fast", workers=2)
        ).fit(train)
        assert model.user_factors.base is None
        assert model.item_factors.base is None

    def test_all_cpus_spelling(self):
        train = block_world()
        model = BPR(
            BPRConfig(epochs=2, seed=0, kernel="fast", workers=-1)
        ).fit(train)
        assert model.user_factors.shape == (train.n_users, 20)


class TestSharedEmpty:
    def test_shape_dtype_and_writability(self):
        array = shared_empty((3, 4), np.float32)
        assert array.shape == (3, 4)
        assert array.dtype == np.float32
        array[:] = 7.0
        assert float(array.sum()) == 84.0

    def test_zero_size(self):
        array = shared_empty((0, 4), np.float32)
        assert array.shape == (0, 4)

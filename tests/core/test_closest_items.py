"""Tests for the Closest Items content-based recommender."""

import numpy as np
import pytest

from repro.core.closest_items import ClosestItems
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def fitted(tiny_split, tiny_merged):
    model = ClosestItems(fields=("author", "genres"))
    model.fit(tiny_split.train, tiny_merged)
    return model


class TestFitting:
    def test_requires_dataset(self, tiny_split):
        with pytest.raises(ConfigurationError, match="merged dataset"):
            ClosestItems().fit(tiny_split.train, None)

    def test_not_fitted_similarity(self):
        with pytest.raises(NotFittedError):
            ClosestItems().similarity

    def test_similarity_shape(self, fitted, tiny_split):
        n = tiny_split.train.n_items
        assert fitted.similarity.shape == (n, n)

    def test_diagonal_zeroed(self, fitted):
        assert np.allclose(np.diag(fitted.similarity), 0.0)

    def test_fields_exposed(self, fitted):
        assert fitted.fields == ("author", "genres")


class TestEquationOne:
    def test_score_is_mean_similarity_to_history(self, fitted, tiny_split):
        user = next(iter(tiny_split.test_items))
        history = tiny_split.train.user_items(user)
        scores = fitted.score_users(np.asarray([user]))[0]
        candidate = 0
        expected = fitted.similarity[candidate, history].mean()
        assert scores[candidate] == pytest.approx(expected)

    def test_empty_history_scores_zero(self, fitted, tiny_split):
        """A user with no interactions gets all-zero scores, not NaN."""
        scores = fitted.score_users(np.asarray([0]))
        assert not np.isnan(scores).any()


class TestAuthorSignal:
    def test_same_author_books_most_similar(self, fitted, tiny_split, tiny_merged):
        """With the author+genres summary, a book's nearest neighbours are
        dominated by same-author books whenever the author has more than
        one title in the catalogue."""
        books = tiny_merged.books
        author_of = {
            int(b): str(a) for b, a in zip(books["book_id"], books["author"])
        }
        counts: dict[str, int] = {}
        for author in author_of.values():
            counts[author] = counts.get(author, 0) + 1
        # Pick a book whose author wrote at least 3 catalogue books.
        target = next(
            b for b, a in author_of.items() if counts[a] >= 3
        )
        item = tiny_split.train.items.index_of(target)
        neighbours = fitted.most_similar(item, k=counts[author_of[target]] - 1)
        same_author = sum(
            1
            for neighbour, _ in neighbours
            if author_of[int(tiny_split.train.items.id_of(neighbour))]
            == author_of[target]
        )
        assert same_author >= 1

    def test_recommendations_exclude_history(self, fitted, tiny_split):
        user = next(iter(tiny_split.test_items))
        history = set(tiny_split.train.user_items(user).tolist())
        recommended = set(fitted.recommend(user, 10).tolist())
        assert not history & recommended

"""Documentation gates: docstring coverage and intra-repo link integrity.

Runs the same standalone checkers CI invokes
(``scripts/check_docstrings.py`` and ``scripts/check_links.py``) so the
gates are part of tier-1 too, plus unit tests pinning each checker's
own behaviour against synthetic trees.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"


def _load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docstrings = _load_script("check_docstrings")
check_links = _load_script("check_links")


class TestDocstringGate:
    def test_growth_packages_fully_documented(self):
        assert check_docstrings.check_packages(SRC_ROOT) == []

    def test_main_exits_zero_on_repo(self, capsys):
        assert check_docstrings.main([str(SRC_ROOT)]) == 0
        assert "fully documented" in capsys.readouterr().out

    def test_missing_package_is_reported(self, tmp_path):
        failures = check_docstrings.check_packages(tmp_path)
        assert len(failures) == len(check_docstrings.CHECKED_PACKAGES)
        assert all("package directory missing" in f for f in failures)

    def test_undocumented_definitions_are_found(self, tmp_path):
        package = tmp_path / check_docstrings.CHECKED_PACKAGES[0]
        package.mkdir(parents=True)
        (package / "mod.py").write_text(
            '"""Module doc."""\n'
            "class Public:\n"
            '    """Doc."""\n'
            "    def documented(self):\n"
            '        """Doc."""\n'
            "    def naked(self):\n"
            "        pass\n"
            "    def _private(self):\n"
            "        pass\n"
            "class _Hidden:\n"
            "    def anything(self):\n"
            "        pass\n"
            "def bare():\n"
            "    pass\n"
        )
        failures = check_docstrings.check_packages(tmp_path)
        reported = [f for f in failures if "missing docstring" in f]
        assert len(reported) == 2
        assert any("Public.naked" in f for f in reported)
        assert any("function bare" in f for f in reported)

    def test_missing_module_docstring_is_line_one(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        assert check_docstrings.missing_docstrings(path) == [(1, "module")]


class TestLinkGate:
    def test_repo_links_all_resolve(self):
        assert check_links.check_tree(REPO_ROOT) == []

    def test_main_exits_zero_on_repo(self, capsys):
        assert check_links.main([str(REPO_ROOT)]) == 0
        assert "all intra-repo links resolve" in capsys.readouterr().out

    def test_broken_link_is_reported(self, tmp_path):
        (tmp_path / "good.md").write_text("target\n")
        (tmp_path / "index.md").write_text(
            "[ok](good.md)\n"
            "[anchor ok](good.md#section)\n"
            "[pure anchor](#here)\n"
            "[external](https://example.com/x)\n"
            "[broken](missing.md)\n"
        )
        failures = check_links.check_tree(tmp_path)
        assert failures == ["index.md:5: broken link -> missing.md"]

    def test_root_absolute_links_resolve_from_root(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (tmp_path / "README.md").write_text("hi\n")
        (docs / "page.md").write_text("[root](/README.md)\n[bad](/nope.md)\n")
        failures = check_links.check_tree(tmp_path)
        assert failures == [
            str(Path("docs") / "page.md") + ":2: broken link -> /nope.md"
        ]

    def test_skip_dirs_are_not_scanned(self, tmp_path):
        hidden = tmp_path / ".git"
        hidden.mkdir()
        (hidden / "note.md").write_text("[broken](missing.md)\n")
        assert check_links.check_tree(tmp_path) == []

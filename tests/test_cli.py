"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "suite"])

    def test_defaults(self):
        args = build_parser().parse_args(["experiment", "fig2"])
        assert args.scale == "default"
        assert args.seed is None
        assert args.jobs is None

    def test_jobs_flag(self):
        args = build_parser().parse_args(["--jobs", "2", "suite"])
        assert args.jobs == 2

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_epilog_lists_every_subcommand(self):
        """The --help epilog must stay in sync with the registered commands."""
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
            and "experiment" in action.choices
        )
        for command in subparsers.choices:
            assert command in parser.epilog, (
                f"command {command!r} missing from the --help epilog"
            )

    def test_help_shows_epilog(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "bench-parallel" in out
        assert "metrics" in out


class TestCommands:
    def test_fig2_small(self, capsys):
        assert main(["--scale", "small", "experiment", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_table1_small(self, capsys):
        assert main(["--scale", "small", "experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "BPR (BCT only)" in out

    def test_generate(self, tmp_path, capsys):
        target = tmp_path / "dataset"
        assert main(["--scale", "small", "generate", str(target)]) == 0
        assert (target / "books.csv").exists()
        assert (target / "readings.csv").exists()
        assert "saved merged dataset" in capsys.readouterr().out

    def test_output_directory(self, tmp_path, capsys):
        target = tmp_path / "results"
        assert main(
            ["--scale", "small", "--output", str(target),
             "experiment", "fig2"]
        ) == 0
        written = target / "fig2.txt"
        assert written.exists()
        assert "Fig. 2" in written.read_text(encoding="utf-8")

    def test_serve_demo(self, capsys):
        assert main(["--scale", "small", "serve-demo"]) == 0
        out = capsys.readouterr().out
        assert "mean latency" in out

    def test_gridsearch_with_jobs_matches_serial(self, capsys):
        assert main(
            ["--scale", "small", "--jobs", "2", "experiment", "gridsearch"]
        ) == 0
        parallel = capsys.readouterr().out
        assert main(
            ["--scale", "small", "experiment", "gridsearch"]
        ) == 0
        serial = capsys.readouterr().out
        assert parallel == serial
        assert "best:" in serial


class TestBenchParallelCommand:
    def test_quick_bench_writes_json(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        assert main([
            "bench-parallel", "--quick", "--repeats", "1",
            "--bench-output", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "parallel bench" in out
        assert "MISMATCH" not in out

        import json

        report = json.loads(target.read_text())
        for section in ("grid", "embedding", "merge"):
            assert report[section]["identical"] is True


class TestHealth:
    @pytest.fixture()
    def saved(self, tmp_path, tiny_merged, tiny_bpr, tiny_split):
        from repro.app.persistence import save_bpr, save_dataset

        dataset_dir = tmp_path / "dataset"
        save_dataset(tiny_merged, dataset_dir)
        save_bpr(tiny_bpr, tiny_split.train, tmp_path / "model.npz")
        return tmp_path

    def test_healthy_artefacts_exit_zero(self, saved, capsys):
        assert main(["health", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out
        assert out.count("ok    ") == 2  # the dataset dir and the model

    def test_corrupt_artefact_exit_one(self, saved, capsys):
        books = saved / "dataset" / "books.csv"
        books.write_bytes(books.read_bytes() + b"tampered\n")
        assert main(["health", str(saved)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "ChecksumMismatchError" in out
        assert "status: corrupt" in out

    def test_single_file_target(self, saved, capsys):
        assert main(["health", str(saved / "model.npz")]) == 0
        assert "status: ok" in capsys.readouterr().out

    def test_missing_path(self, tmp_path, capsys):
        assert main(["health", str(tmp_path / "nope")]) == 1
        assert "does not exist" in capsys.readouterr().out

    def test_no_artefacts_is_unknown(self, tmp_path, capsys):
        assert main(["health", str(tmp_path)]) == 1
        assert "status: unknown" in capsys.readouterr().out

    def test_generate_then_health_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "dataset"
        assert main(["--scale", "small", "generate", str(target)]) == 0
        capsys.readouterr()
        assert main(["health", str(target)]) == 0
        assert "status: ok" in capsys.readouterr().out


class TestLifecycleCommand:
    @pytest.fixture()
    def store(self, tmp_path, tiny_bpr, tiny_split):
        from repro.app.lifecycle import ModelStore

        store = ModelStore(tmp_path / "store")
        store.publish(tiny_bpr, tiny_split.train)
        store.publish(tiny_bpr, tiny_split.train)
        return store

    def test_publish_cold_then_warm(self, tmp_path, capsys):
        target = tmp_path / "store"
        assert main(
            ["--scale", "small", "lifecycle", "publish", str(target)]
        ) == 0
        assert "published v000001 (cold)" in capsys.readouterr().out
        assert main(
            ["--scale", "small", "lifecycle", "publish", str(target)]
        ) == 0
        out = capsys.readouterr().out
        assert "published v000002 (warm-started)" in out
        assert "CURRENT -> v000002" in out

    def test_list_marks_current(self, store, capsys):
        assert main(["lifecycle", "list", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "v000001" in out
        assert "v000002" in out and "<- CURRENT" in out

    def test_rollback_and_gc(self, store, capsys):
        assert main(["lifecycle", "rollback", str(store.root)]) == 0
        assert "CURRENT -> v000001" in capsys.readouterr().out
        assert main(
            ["lifecycle", "gc", str(store.root), "--keep", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "gc removed:" in out
        assert store.current_name() == "v000001"

    def test_rollback_to_specific_version(self, store, capsys):
        assert main(
            ["lifecycle", "rollback", str(store.root), "--to", "v000001"]
        ) == 0
        assert store.current_name() == "v000001"

    def test_rollback_without_earlier_version_fails(
        self, tmp_path, capsys
    ):
        assert main(["lifecycle", "rollback", str(tmp_path)]) == 1
        assert "lifecycle:" in capsys.readouterr().err

    def test_health_understands_a_store(self, store, capsys):
        assert main(["health", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "model store health report" in out
        assert "CURRENT: v000002 [ok]" in out
        assert "status: ok" in out

    def test_health_fails_on_corrupt_current(self, store, capsys):
        current = store.resolve(None)
        current.model_path.write_bytes(b"garbage")
        assert main(["health", str(store.root)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "status: corrupt" in out

    def test_health_fails_on_dangling_current(self, store, capsys):
        (store.root / "CURRENT").write_text("v000099\n", encoding="utf-8")
        assert main(["health", str(store.root)]) == 1
        assert "[dangling]" in capsys.readouterr().out


class TestMetricsCommand:
    def test_writes_snapshot_and_trace(self, tmp_path, capsys):
        snapshot_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "metrics", str(snapshot_path),
            "--trace", str(trace_path), "--deterministic",
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot written" in out
        assert "stage" in out  # the per-stage timing table header
        assert "service health: ok" in out

        import json

        snapshot = json.loads(snapshot_path.read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert "service.requests" in snapshot["counters"]
        lines = trace_path.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["span_id"] for line in lines)

    def test_snapshot_only(self, tmp_path, capsys):
        snapshot_path = tmp_path / "metrics.json"
        assert main(["metrics", str(snapshot_path), "--deterministic"]) == 0
        assert snapshot_path.exists()
        assert "trace" not in capsys.readouterr().out.lower()

    def test_deterministic_runs_write_identical_snapshots(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["metrics", str(first), "--deterministic"]) == 0
        assert main(["metrics", str(second), "--deterministic"]) == 0
        from repro.obs.golden import assert_golden_equal, normalize_snapshot
        import json

        assert_golden_equal(
            normalize_snapshot(json.loads(first.read_text())),
            normalize_snapshot(json.loads(second.read_text())),
        )

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "suite"])

    def test_defaults(self):
        args = build_parser().parse_args(["experiment", "fig2"])
        assert args.scale == "default"
        assert args.seed is None

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_fig2_small(self, capsys):
        assert main(["--scale", "small", "experiment", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_table1_small(self, capsys):
        assert main(["--scale", "small", "experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "BPR (BCT only)" in out

    def test_generate(self, tmp_path, capsys):
        target = tmp_path / "dataset"
        assert main(["--scale", "small", "generate", str(target)]) == 0
        assert (target / "books.csv").exists()
        assert (target / "readings.csv").exists()
        assert "saved merged dataset" in capsys.readouterr().out

    def test_output_directory(self, tmp_path, capsys):
        target = tmp_path / "results"
        assert main(
            ["--scale", "small", "--output", str(target),
             "experiment", "fig2"]
        ) == 0
        written = target / "fig2.txt"
        assert written.exists()
        assert "Fig. 2" in written.read_text(encoding="utf-8")

    def test_serve_demo(self, capsys):
        assert main(["--scale", "small", "serve-demo"]) == 0
        out = capsys.readouterr().out
        assert "mean latency" in out

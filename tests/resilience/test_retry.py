"""Tests for deterministic backoff, retry, and deadline budgets."""

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from repro.resilience.retry import BackoffPolicy, Deadline, retry_call
from repro.rng import derive_rng


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, error: Exception | None = None) -> None:
        self.failures = failures
        self.calls = 0
        self.error = error or ValueError("transient")

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class TestBackoffPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = BackoffPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=3.0,
            jitter=0.0,
        )
        assert policy.delays(derive_rng(0, "x")) == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_is_deterministic_per_seed(self):
        policy = BackoffPolicy(max_attempts=4, jitter=0.5)
        first = policy.delays(derive_rng(7, "retry"))
        second = policy.delays(derive_rng(7, "retry"))
        assert first == second
        assert first != policy.delays(derive_rng(8, "retry"))

    def test_jitter_bounds(self):
        policy = BackoffPolicy(
            max_attempts=50, base_delay=1.0, multiplier=1.0, jitter=0.2,
        )
        for delay in policy.delays(derive_rng(3, "retry")):
            assert 0.8 <= delay <= 1.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(**kwargs)


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        flaky = Flaky(failures=2)
        slept = []
        result = retry_call(
            flaky, policy=BackoffPolicy(max_attempts=3), seed=1,
            sleep=slept.append,
        )
        assert result == "ok"
        assert flaky.calls == 3
        assert len(slept) == 2

    def test_exhaustion_wraps_last_error(self):
        flaky = Flaky(failures=10)
        with pytest.raises(RetryExhaustedError) as info:
            retry_call(
                flaky, policy=BackoffPolicy(max_attempts=3), seed=1,
                sleep=lambda _: None,
            )
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, ValueError)

    def test_sleep_schedule_is_deterministic(self):
        def run():
            slept = []
            with pytest.raises(RetryExhaustedError):
                retry_call(
                    Flaky(failures=10),
                    policy=BackoffPolicy(max_attempts=4),
                    seed=42, sleep=slept.append,
                )
            return slept

        assert run() == run()

    def test_non_retryable_error_propagates(self):
        flaky = Flaky(failures=5, error=KeyError("nope"))
        with pytest.raises(KeyError):
            retry_call(
                flaky, retry_on=(ValueError,), sleep=lambda _: None,
            )
        assert flaky.calls == 1

    def test_expired_deadline_stops_retries(self):
        clock = FakeClock()
        deadline = Deadline.start(1.0, clock)

        def failing():
            clock.advance(2.0)  # the first attempt burns the whole budget
            raise ValueError("slow failure")

        with pytest.raises(RetryExhaustedError) as info:
            retry_call(
                failing, policy=BackoffPolicy(max_attempts=5), seed=0,
                sleep=lambda _: None, deadline=deadline,
            )
        assert info.value.attempts == 1

    def test_dead_deadline_rejected_upfront(self):
        clock = FakeClock()
        deadline = Deadline.start(0.5, clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            retry_call(lambda: "ok", deadline=deadline)


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline.start(2.0, clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError, match="deadline"):
            deadline.check()

    def test_none_budget_never_expires(self):
        clock = FakeClock()
        deadline = Deadline.start(None, clock)
        clock.advance(1e9)
        assert deadline.remaining() == float("inf")
        deadline.check()  # does not raise

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline.start(0.0)

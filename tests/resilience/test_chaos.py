"""Chaos suite: deterministic fault injection across the serving stack.

Service side: with the primary model failing (up to 100% of calls), every
request must still come back as a k-length, already-read-free list served
by the fallback chain, with the degradation accounted and the circuit
breaker cycling open → half-open → closed as faults come and go.

Persistence side: a save interrupted at *any* crash point (every write and
every rename, via scripted ``io.write``/``io.rename`` faults) must leave
either the previous artefact fully loadable or a typed
:class:`~repro.errors.PersistenceError` — never silent corruption, never a
stray temp file.

Everything here is deterministic: faults come from a seeded or scripted
:class:`~repro.resilience.faults.FaultInjector` and time from a fake clock.
"""

import copy

import numpy as np
import pytest

from repro.app.persistence import load_bpr, load_dataset, save_bpr, save_dataset
from repro.app.service import (
    SERVED_BY_MOST_READ,
    SERVED_BY_NONE,
    SERVED_BY_PRIMARY,
    SERVED_BY_STATIC,
    RecommendationRequest,
    RecommendationService,
)
from repro.core.most_read import MostReadItems
from repro.errors import InjectedFaultError, PersistenceError
from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.faults import (
    SITE_IO_RENAME,
    SITE_IO_WRITE,
    SITE_MODEL_SCORE,
    FaultInjector,
    FaultyModel,
)

pytestmark = pytest.mark.chaos


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_chaos_service(tiny_bpr, tiny_split, tiny_merged, injector,
                       with_cold_start=True):
    """A cache-less service over a fault-wrapped model and a fake clock."""
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=0.5, min_calls=4, window=8, cooldown_seconds=10.0,
        clock=clock,
    )
    cold_start = None
    if with_cold_start:
        cold_start = MostReadItems()
        cold_start.fit(tiny_split.train, tiny_merged)
    service = RecommendationService(
        FaultyModel(tiny_bpr, injector),
        tiny_split.train,
        tiny_merged,
        cold_start_fallback=cold_start,
        cache_size=0,
        breaker=breaker,
        clock=clock,
    )
    return service, clock


@pytest.fixture()
def users(tiny_split):
    return [str(u) for u in list(tiny_split.train.users.ids)[:12]]


class TestServiceChaos:
    def test_total_failure_still_serves_k_unread_books(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        service, _ = make_chaos_service(
            tiny_bpr, tiny_split, tiny_merged, injector
        )
        for user in users[:4]:
            response = service.recommend_response(
                RecommendationRequest(user_id=user, k=7)
            )
            assert len(response.books) == 7
            assert response.degraded
            assert response.served_by == SERVED_BY_MOST_READ
            assert response.error is not None
            history = {b.book_id for b in service.history(user)}
            assert not history & {b.book_id for b in response.books}
        assert service.stats.degradations[SERVED_BY_MOST_READ] == 4
        assert service.stats.errors >= 4
        assert "InjectedFaultError" in service.stats.last_error

    def test_breaker_opens_half_opens_and_heals(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        service, clock = make_chaos_service(
            tiny_bpr, tiny_split, tiny_merged, injector
        )
        for user in users[:4]:
            service.recommend(RecommendationRequest(user_id=user, k=5))
        assert service.breaker.state == STATE_OPEN
        assert service.health()["status"] == "degraded"

        # While open, the primary model is no longer even invoked.
        probed = injector.checked[SITE_MODEL_SCORE]
        open_response = service.recommend_response(
            RecommendationRequest(user_id=users[4], k=5)
        )
        assert injector.checked[SITE_MODEL_SCORE] == probed
        assert open_response.served_by == SERVED_BY_MOST_READ
        assert open_response.error == "circuit breaker open"

        # After the cool-down the breaker half-opens; a healed model's
        # success closes it and primary serving resumes.
        clock.advance(10.0)
        injector.set_rate(SITE_MODEL_SCORE, 0.0)
        healed = service.recommend_response(
            RecommendationRequest(user_id=users[5], k=5)
        )
        assert healed.served_by == SERVED_BY_PRIMARY
        assert not healed.degraded
        assert service.breaker.state == STATE_CLOSED
        assert service.health()["status"] == "ok"

    def test_half_open_failure_reopens(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        service, clock = make_chaos_service(
            tiny_bpr, tiny_split, tiny_merged, injector
        )
        for user in users[:4]:
            service.recommend(RecommendationRequest(user_id=user, k=5))
        clock.advance(10.0)
        # Still failing: the half-open probe degrades and re-opens.
        response = service.recommend_response(
            RecommendationRequest(user_id=users[4], k=5)
        )
        assert response.degraded
        assert len(response.books) == 5
        assert service.breaker.state == STATE_OPEN
        assert service.breaker.opened_count == 2

    def test_partial_failure_is_deterministic_under_seed(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        def run():
            injector = FaultInjector(rates={SITE_MODEL_SCORE: 0.5}, seed=123)
            service, _ = make_chaos_service(
                tiny_bpr, tiny_split, tiny_merged, injector
            )
            trace = []
            for user in users:
                response = service.recommend_response(
                    RecommendationRequest(user_id=user, k=5)
                )
                trace.append(
                    (response.served_by, response.degraded,
                     tuple(b.book_id for b in response.books))
                )
            return trace

        first, second = run(), run()
        assert first == second
        served_by = {entry[0] for entry in first}
        assert SERVED_BY_MOST_READ in served_by  # some faults did fire

    def test_recommend_many_under_total_failure(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        service, _ = make_chaos_service(
            tiny_bpr, tiny_split, tiny_merged, injector
        )
        requests = [
            RecommendationRequest(user_id=users[0], k=5),
            RecommendationRequest(user_id="stranger", k=5),
            RecommendationRequest(user_id=users[1], k=8),
        ]
        responses = service.recommend_many_responses(requests)
        assert len(responses[0].books) == 5
        assert len(responses[2].books) == 8
        assert responses[0].degraded and responses[2].degraded
        # The stranger is a cold start, not a failure: the fallback serves
        # it directly and it is not marked degraded.
        assert responses[1].served_by == SERVED_BY_MOST_READ
        assert len(responses[1].books) == 5
        lists = service.recommend_many(requests)
        assert [len(books) for books in lists] == [5, 5, 8]

    def test_static_last_link_without_cold_start(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        service, _ = make_chaos_service(
            tiny_bpr, tiny_split, tiny_merged, injector, with_cold_start=False
        )
        response = service.recommend_response(
            RecommendationRequest(user_id=users[0], k=6)
        )
        assert response.served_by == SERVED_BY_STATIC
        assert response.degraded
        assert len(response.books) == 6
        history = {b.book_id for b in service.history(users[0])}
        assert not history & {b.book_id for b in response.books}
        # Without any fallback, an unknown user in a batch resolves to an
        # error-marked empty response rather than aborting the batch.
        responses = service.recommend_many_responses(
            [RecommendationRequest(user_id="stranger", k=5)]
        )
        assert responses[0].served_by == SERVED_BY_NONE
        assert responses[0].books == ()


# ----------------------------------------------------------------------
# persistence chaos: crash at every write and every rename
# ----------------------------------------------------------------------


def crash_script(site, call_index):
    """A script that fires ``site`` on its ``call_index``-th invocation."""
    return {site: [False] * call_index + [True]}


def assert_no_temp_files(directory):
    leftovers = [p.name for p in directory.iterdir() if ".tmp" in p.name]
    assert leftovers == [], f"interrupted save leaked temp files: {leftovers}"


class TestSaveBprCrashPoints:
    # save_bpr's crash points, in order: write npz, rename npz, write
    # manifest, rename manifest. Interrupting before the npz lands must
    # leave the old artefact intact; interrupting after must be *detected*
    # at load time (new npz under the old manifest).
    CRASH_POINTS = [
        (SITE_IO_WRITE, 0, "old"),
        (SITE_IO_RENAME, 0, "old"),
        (SITE_IO_WRITE, 1, "detected"),
        (SITE_IO_RENAME, 1, "detected"),
    ]

    @pytest.mark.parametrize("site,call_index,expected", CRASH_POINTS)
    def test_interrupted_overwrite(
        self, tmp_path, tiny_bpr, tiny_split, site, call_index, expected
    ):
        path = tmp_path / "model.npz"
        save_bpr(tiny_bpr, tiny_split.train, path)
        old_item_factors = tiny_bpr.item_factors.copy()

        new_model = copy.deepcopy(tiny_bpr)
        new_model._user_factors = tiny_bpr.user_factors + 1.0
        new_model._item_factors = tiny_bpr.item_factors + 1.0

        injector = FaultInjector(script=crash_script(site, call_index))
        with injector.injecting():
            with pytest.raises(InjectedFaultError):
                save_bpr(new_model, tiny_split.train, path)
        assert_no_temp_files(tmp_path)

        if expected == "old":
            model, _ = load_bpr(path)
            assert np.array_equal(model.item_factors, old_item_factors)
        else:
            with pytest.raises(PersistenceError):
                load_bpr(path)

    def test_crash_on_fresh_save_leaves_nothing_loadable(
        self, tmp_path, tiny_bpr, tiny_split
    ):
        path = tmp_path / "model.npz"
        injector = FaultInjector(script=crash_script(SITE_IO_WRITE, 1))
        with injector.injecting():
            with pytest.raises(InjectedFaultError):
                save_bpr(tiny_bpr, tiny_split.train, path)
        assert_no_temp_files(tmp_path)
        with pytest.raises(PersistenceError):
            load_bpr(path)


class TestSaveDatasetCrashPoints:
    # save_dataset's crash points: (write, rename) for each of books.csv,
    # readings.csv, genres.csv, MANIFEST.json — eight in total. Only a
    # crash before the first CSV lands leaves the old artefact; every
    # later one must be detected by checksum verification at load time.
    CRASH_POINTS = [
        (SITE_IO_WRITE, 0, "old"),
        (SITE_IO_RENAME, 0, "old"),
        (SITE_IO_WRITE, 1, "detected"),
        (SITE_IO_RENAME, 1, "detected"),
        (SITE_IO_WRITE, 2, "detected"),
        (SITE_IO_RENAME, 2, "detected"),
        (SITE_IO_WRITE, 3, "detected"),
        (SITE_IO_RENAME, 3, "detected"),
    ]

    @pytest.fixture(scope="class")
    def other_merged(self, tiny_merged):
        # A dataset whose every table differs from ``tiny_merged``'s, so
        # any CSV that lands mid-crash is guaranteed to change on disk.
        from repro.datasets.merged import MergedDataset

        return MergedDataset(
            books=tiny_merged.books.head(tiny_merged.books.num_rows - 1),
            readings=tiny_merged.readings.head(
                tiny_merged.readings.num_rows - 1
            ),
            genres=tiny_merged.genres.head(tiny_merged.genres.num_rows - 1),
        )

    @pytest.mark.parametrize("site,call_index,expected", CRASH_POINTS)
    def test_interrupted_overwrite(
        self, tmp_path, tiny_merged, other_merged, site, call_index, expected
    ):
        target = tmp_path / "dataset"
        save_dataset(tiny_merged, target)
        old_book_ids = list(tiny_merged.books["book_id"])

        injector = FaultInjector(script=crash_script(site, call_index))
        with injector.injecting():
            with pytest.raises(InjectedFaultError):
                save_dataset(other_merged, target)
        assert_no_temp_files(target)

        if expected == "old":
            loaded = load_dataset(target)
            assert list(loaded.books["book_id"]) == old_book_ids
        else:
            with pytest.raises(PersistenceError):
                load_dataset(target)

"""Corpus chaos: a crash anywhere in the sharded write leaves no lies.

``ShardedCorpusWriter`` routes every byte through ``atomic_write`` and
gives each artefact its own SHA-256 manifest immediately, with the
corpus-level ``MANIFEST.json`` written last. These tests enumerate the
writer's crash points with a dry-run
:class:`~repro.resilience.faults.FaultInjector` (counting ``fault_check``
calls without firing), then crash a fresh write at every (site,
call-index) pair and assert the wreckage is honest:

- no temp files leak;
- every artefact that *has* a manifest still verifies;
- the corpus manifest is absent (it is the completion marker), so
  opening the directory fails loudly;
- ``write(resume=True)`` finishes the job, reusing every intact shard.

The operator surface is covered too: ``python -m repro health`` exits 1
on a truncated/corrupt shard and 0 once it is regenerated.
"""

import pytest

from repro.cli import main as cli_main
from repro.datasets.corpus import (
    CorpusConfig,
    ShardedCorpus,
    ShardedCorpusWriter,
    shard_plan,
)
from repro.errors import InjectedFaultError, ManifestMissingError
from repro.resilience.faults import (
    SITE_IO_READ,
    SITE_IO_RENAME,
    SITE_IO_WRITE,
    FaultInjector,
)

pytestmark = pytest.mark.chaos

CONFIG = CorpusConfig(
    n_books=80,
    n_authors=25,
    n_bct_users=20,
    n_anobii_users=40,
    n_loans=600,
    n_ratings=400,
    n_shards=2,
    rows_per_chunk=256,
    seed=99,
)

#: Artefacts a fresh write produces: 2 catalogues + the event shards.
N_ARTEFACTS = 2 + len(
    shard_plan(CONFIG.n_loans, CONFIG.rows_per_chunk, CONFIG.n_shards)
) + len(shard_plan(CONFIG.n_ratings, CONFIG.rows_per_chunk, CONFIG.n_shards))

# Each artefact = data file + its own manifest (one write + one rename
# apiece), plus the corpus MANIFEST.json last. A fresh write never
# reads, so io.read must not appear. The enumeration test asserts the
# dry run finds exactly this, so new fault sites force this table (and
# the crash matrix below) to grow with them.
EXPECTED_WRITE_SITES = {
    SITE_IO_WRITE: 2 * N_ARTEFACTS + 1,
    SITE_IO_RENAME: 2 * N_ARTEFACTS + 1,
}

CRASH_POINTS = [
    (site, index)
    for site, count in sorted(EXPECTED_WRITE_SITES.items())
    for index in range(count)
]


def crash_script(site, call_index):
    """A script that fires ``site`` on its ``call_index``-th invocation."""
    return {site: [False] * call_index + [True]}


def assert_no_temp_files(directory):
    leftovers = [
        p.relative_to(directory)
        for p in directory.rglob("*")
        if ".tmp" in p.name
    ]
    assert leftovers == [], f"interrupted write leaked temp files: {leftovers}"


def assert_manifested_artefacts_verify(root):
    """Every artefact that got as far as a manifest must still verify."""
    from repro.resilience.artefacts import verify_manifest

    for manifest in root.glob("*.manifest.json"):
        artefact = manifest.with_name(manifest.name[: -len(".manifest.json")])
        verify_manifest(artefact)  # raises on corruption


class TestWriterCrashPoints:
    def test_dry_run_enumerates_every_fault_site(self, tmp_path):
        injector = FaultInjector()
        with injector.injecting():
            ShardedCorpusWriter(tmp_path / "corpus", CONFIG).write()
        assert dict(injector.checked) == EXPECTED_WRITE_SITES

    @pytest.mark.parametrize("site,call_index", CRASH_POINTS)
    def test_crash_leaves_prior_shards_verifiable(self, tmp_path, site, call_index):
        root = tmp_path / "corpus"
        injector = FaultInjector(script=crash_script(site, call_index))
        with injector.injecting():
            with pytest.raises(InjectedFaultError):
                ShardedCorpusWriter(root, CONFIG).write()

        assert_no_temp_files(root)
        assert_manifested_artefacts_verify(root)
        # the corpus manifest is written last: a crash anywhere earlier
        # means the directory is visibly incomplete, never half-trusted
        assert not (root / "MANIFEST.json").exists()
        with pytest.raises(ManifestMissingError):
            ShardedCorpus(root)

        # resume completes the corpus and the result fully verifies
        corpus = ShardedCorpusWriter(root, CONFIG).write(resume=True)
        corpus.verify()
        assert corpus.n_loans == CONFIG.n_loans
        assert corpus.n_ratings == CONFIG.n_ratings

    def test_resume_reuses_intact_artefacts(self, tmp_path):
        root = tmp_path / "corpus"
        # crash halfway through the shard writes
        crash_at = N_ARTEFACTS  # call index: beyond the catalogues
        injector = FaultInjector(script=crash_script(SITE_IO_WRITE, crash_at))
        with injector.injecting():
            with pytest.raises(InjectedFaultError):
                ShardedCorpusWriter(root, CONFIG).write()

        counting = FaultInjector()
        with counting.injecting():
            ShardedCorpusWriter(root, CONFIG).write(resume=True)
        # strictly fewer writes than a fresh run: intact artefacts were
        # verified (reads) instead of regenerated
        assert counting.checked[SITE_IO_WRITE] < EXPECTED_WRITE_SITES[SITE_IO_WRITE]
        assert counting.checked[SITE_IO_READ] > 0

    def test_resume_regenerates_on_config_change(self, tmp_path):
        from dataclasses import replace

        root = tmp_path / "corpus"
        ShardedCorpusWriter(root, CONFIG).write()
        changed = replace(CONFIG, seed=CONFIG.seed + 1)
        corpus = ShardedCorpusWriter(root, changed).write(resume=True)
        corpus.verify()
        assert corpus.meta["config_sha256"] == changed.digest()


class TestHealthCli:
    def test_health_passes_on_complete_corpus(self, tmp_path, capsys):
        root = tmp_path / "corpus"
        ShardedCorpusWriter(root, CONFIG).write()
        assert cli_main(["health", str(root)]) == 0
        assert "status: ok" in capsys.readouterr().out

    def test_health_fails_on_truncated_shard_until_regenerated(
        self, tmp_path, capsys
    ):
        root = tmp_path / "corpus"
        corpus = ShardedCorpusWriter(root, CONFIG).write()
        shard = corpus.loan_shard_paths[0]
        shard.write_bytes(shard.read_bytes()[:-64])

        assert cli_main(["health", str(root)]) == 1
        assert "FAIL" in capsys.readouterr().out

        ShardedCorpusWriter(root, CONFIG).write(resume=True)
        assert cli_main(["health", str(root)]) == 0

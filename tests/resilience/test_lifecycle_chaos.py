"""Lifecycle chaos: a publish interrupted anywhere leaves the store serving.

``ModelStore.publish`` routes every byte through ``atomic_write`` and
re-verifies its own manifest, so its crash points are exactly the
``fault_check`` sites of the resilience layer. Rather than hard-coding
the crash-point list, these tests *enumerate* it with a dry-run
:class:`~repro.resilience.faults.FaultInjector` (no rates: it counts
``fault_check`` calls without firing) and then crash a fresh publish at
every (site, call-index) pair. After each crash the previously published
version must verify, ``CURRENT`` must still resolve to it, and a service
hot-swapping from the store must keep serving.

The read side is chaos-tested too: an ``io.read`` fault during
``load_bpr`` (manifest verification or archive read) must surface as a
typed error to direct callers and degrade — never raise — through
``RecommendationService.refresh_from_store``.
"""

import pytest

from repro.app.lifecycle import ModelStore
from repro.app.persistence import load_bpr
from repro.app.service import RecommendationRequest, RecommendationService
from repro.errors import InjectedFaultError, PersistenceError
from repro.resilience.faults import (
    SITE_IO_READ,
    SITE_IO_RENAME,
    SITE_IO_WRITE,
    FaultInjector,
)

pytestmark = pytest.mark.chaos

# publish's crash points: write+rename for the npz, the manifest, and the
# CURRENT pointer, plus the post-save manifest re-verification read. The
# enumeration test asserts the dry run finds exactly these, so adding a
# fault site to the publish path forces this table (and the crash
# matrix) to grow with it.
EXPECTED_PUBLISH_SITES = {
    SITE_IO_WRITE: 3,
    SITE_IO_RENAME: 3,
    SITE_IO_READ: 1,
}

CRASH_POINTS = [
    (site, index)
    for site, count in sorted(EXPECTED_PUBLISH_SITES.items())
    for index in range(count)
]


def crash_script(site, call_index):
    """A script that fires ``site`` on its ``call_index``-th invocation."""
    return {site: [False] * call_index + [True]}


def assert_no_temp_files(directory):
    leftovers = [
        p.relative_to(directory)
        for p in directory.rglob("*")
        if ".tmp" in p.name
    ]
    assert leftovers == [], f"interrupted publish leaked temp files: {leftovers}"


def make_service(store, dataset):
    """A service booted from the store's current version."""
    model, train = store.load()
    service = RecommendationService(model, train, dataset, cache_size=0)
    assert service.refresh_from_store(store)
    return service


class TestPublishCrashPoints:
    def test_dry_run_enumerates_every_fault_site(
        self, tmp_path, tiny_bpr, tiny_split
    ):
        store = ModelStore(tmp_path / "store")
        store.publish(tiny_bpr, tiny_split.train)
        injector = FaultInjector()
        with injector.injecting():
            store.publish(tiny_bpr, tiny_split.train)
        assert dict(injector.checked) == EXPECTED_PUBLISH_SITES

    @pytest.mark.parametrize("site,call_index", CRASH_POINTS)
    def test_interrupted_publish_leaves_previous_version_serving(
        self, tmp_path, tiny_bpr, tiny_split, tiny_merged, site, call_index
    ):
        store = ModelStore(tmp_path / "store")
        first = store.publish(tiny_bpr, tiny_split.train)

        injector = FaultInjector(script=crash_script(site, call_index))
        with injector.injecting():
            with pytest.raises(InjectedFaultError):
                store.publish(tiny_bpr, tiny_split.train)

        assert_no_temp_files(store.root)
        # the predecessor is still published, intact, and loadable
        assert store.current() == first
        assert store.status(first) == "ok"
        model, _ = store.load()
        assert model.is_fitted
        # and a service refreshing from the store keeps serving it
        service = make_service(store, tiny_merged)
        user = str(tiny_split.train.users.ids[0])
        response = service.recommend_response(
            RecommendationRequest(user_id=user, k=5)
        )
        assert len(response.books) == 5
        assert response.model_version == first.name
        # gc sweeps any half-written directory the crash left behind; a
        # candidate that landed intact (crash at the CURRENT update) may
        # survive, but nothing broken does
        store.gc(keep=1)
        assert store.current() == first
        assert all(store.status(v) == "ok" for v in store.versions())

    def test_crash_on_first_ever_publish_leaves_empty_store(
        self, tmp_path, tiny_bpr, tiny_split
    ):
        store = ModelStore(tmp_path / "store")
        injector = FaultInjector(script=crash_script(SITE_IO_WRITE, 0))
        with injector.injecting():
            with pytest.raises(InjectedFaultError):
                store.publish(tiny_bpr, tiny_split.train)
        assert_no_temp_files(store.root)
        assert store.current_name() is None
        with pytest.raises(PersistenceError):
            store.load()
        # the store recovers: the next publish allocates the next number
        version = store.publish(tiny_bpr, tiny_split.train)
        assert version.number == 2  # v1 is the crashed husk
        assert store.current() == version


class TestReadSideFaults:
    # load_bpr's read-side fault checks, in order: the manifest
    # verification read, then the archive read proper.
    READ_POINTS = [0, 1]

    @pytest.mark.parametrize("call_index", READ_POINTS)
    def test_load_bpr_surfaces_injected_read_fault(
        self, tmp_path, tiny_bpr, tiny_split, call_index
    ):
        store = ModelStore(tmp_path / "store")
        version = store.publish(tiny_bpr, tiny_split.train)
        injector = FaultInjector(script=crash_script(SITE_IO_READ, call_index))
        with injector.injecting():
            with pytest.raises(InjectedFaultError):
                load_bpr(version.model_path)
        # the artefact itself is untouched; a clean retry succeeds
        model, _ = load_bpr(version.model_path)
        assert model.is_fitted

    @pytest.mark.parametrize("call_index", READ_POINTS)
    def test_refresh_degrades_on_read_fault(
        self, tmp_path, tiny_bpr, tiny_split, tiny_merged, call_index
    ):
        store = ModelStore(tmp_path / "store")
        store.publish(tiny_bpr, tiny_split.train)
        service = make_service(store, tiny_merged)
        before = service.model_version

        injector = FaultInjector(script=crash_script(SITE_IO_READ, call_index))
        with injector.injecting():
            # the dry-run inside make_service already consumed the store's
            # reads, so the scripted fault fires inside this refresh
            assert service.refresh_from_store(store) is False

        assert service.model_version == before
        assert service.stats.refresh_failed == 1
        assert "InjectedFaultError" in service.stats.last_error
        # and the next clean refresh heals
        assert service.refresh_from_store(store) is True
        assert service.stats.refreshes == 2


class TestRefreshDegradation:
    def test_corrupt_candidate_keeps_old_model(
        self, tmp_path, tiny_bpr, tiny_split, tiny_merged
    ):
        store = ModelStore(tmp_path / "store")
        first = store.publish(tiny_bpr, tiny_split.train)
        second = store.publish(tiny_bpr, tiny_split.train)
        data = bytearray(second.model_path.read_bytes())
        data[:16] = b"\x00" * 16
        second.model_path.write_bytes(bytes(data))

        service = RecommendationService(
            *store.load(first), tiny_merged, cache_size=0
        )
        assert service.refresh_from_store(store, version=first)
        assert service.refresh_from_store(store, version=second) is False

        assert service.model_version == first.name
        assert service.stats.refresh_failed == 1
        assert "ChecksumMismatchError" in service.stats.last_error
        user = str(tiny_split.train.users.ids[0])
        response = service.recommend_response(
            RecommendationRequest(user_id=user, k=5)
        )
        assert len(response.books) == 5
        assert response.model_version == first.name
        snapshot = service.metrics_snapshot()
        refreshes = snapshot["counters"]["service.refreshes"]
        assert refreshes["labels"]["outcome=failed"] == 1

    def test_missing_version_never_raises(
        self, tmp_path, tiny_bpr, tiny_split, tiny_merged
    ):
        store = ModelStore(tmp_path / "store")
        store.publish(tiny_bpr, tiny_split.train)
        service = make_service(store, tiny_merged)
        assert service.refresh_from_store(store, version="v000099") is False
        assert service.stats.refresh_failed == 1
        assert "PersistenceError" in service.stats.last_error

    def test_refresh_from_empty_store_degrades(
        self, tmp_path, tiny_bpr, tiny_split, tiny_merged
    ):
        store = ModelStore(tmp_path / "empty")
        service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0
        )
        assert service.refresh_from_store(store) is False
        assert service.model_version is None
        assert service.stats.refresh_failed == 1

"""Tests for the circuit breaker state machine (deterministic fake clock)."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        failure_threshold=0.5, min_calls=4, window=8, cooldown_seconds=10.0,
        clock=clock,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults), clock


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_stays_closed_below_min_calls(self):
        breaker, _ = make_breaker(min_calls=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_opens_at_failure_threshold(self):
        breaker, _ = make_breaker()
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_successes_dilute_the_window(self):
        breaker, _ = make_breaker(window=8)
        breaker.record_failure()
        for _ in range(7):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED


class TestOpenAndHalfOpen:
    def _opened(self, **kwargs):
        breaker, clock = make_breaker(**kwargs)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == STATE_OPEN
        return breaker, clock

    def test_rejects_while_cooling_down(self):
        breaker, clock = self._opened()
        clock.advance(9.9)
        assert not breaker.allow()

    def test_half_opens_after_cooldown(self):
        breaker, clock = self._opened()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.state == STATE_HALF_OPEN

    def test_half_open_success_closes_and_clears(self):
        breaker, clock = self._opened()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.failure_rate == 0.0

    def test_half_open_failure_reopens(self):
        breaker, clock = self._opened()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_count == 2
        clock.advance(9.0)
        assert not breaker.allow()  # the cool-down restarted
        clock.advance(1.0)
        assert breaker.allow()

    def test_multiple_successes_to_close(self):
        breaker, clock = self._opened(successes_to_close=2)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED


class TestMisc:
    def test_reset_force_closes(self):
        breaker, _ = make_breaker()
        for _ in range(4):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()
        assert breaker.failure_rate == 0.0

    def test_snapshot_shape(self):
        breaker, _ = make_breaker()
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == STATE_CLOSED
        assert snapshot["failure_rate"] == 1.0
        assert snapshot["window_calls"] == 1
        assert snapshot["opened_count"] == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"min_calls": 0},
            {"window": 0},
            {"cooldown_seconds": -1.0},
            {"successes_to_close": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(**kwargs)


class TestContention:
    """Regression: transitions stay atomic under concurrent recording.

    The transition helpers carry a ``_locked`` suffix (caller holds
    ``self._lock``); with a pinned clock, hammering ``record_failure``
    from many threads must open the breaker exactly once — a torn
    transition would double-count ``opened_count`` or fire the
    callback twice.
    """

    def test_all_failures_open_exactly_once(self):
        import threading

        transitions: list[tuple[str, str]] = []
        breaker, _ = make_breaker(
            cooldown_seconds=1000.0,
            on_transition=lambda old, new: transitions.append((old, new)),
        )

        def worker() -> None:
            for _ in range(200):
                breaker.record_failure()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert breaker.state == STATE_OPEN
        assert breaker.opened_count == 1
        assert transitions == [(STATE_CLOSED, STATE_OPEN)]

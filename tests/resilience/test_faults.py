"""Tests for the fault injector, its wrappers, and the ambient hook."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InjectedFaultError
from repro.resilience.faults import (
    SITE_MODEL_SCORE,
    FaultInjector,
    FaultyEmbedder,
    FaultyModel,
    fault_check,
)


class TestScripted:
    def test_schedule_is_followed_exactly(self):
        injector = FaultInjector(script={"s": [False, True, True, False]})
        fired = [injector.should_fire("s") for _ in range(6)]
        assert fired == [False, True, True, False, False, False]

    def test_check_raises_with_site(self):
        injector = FaultInjector(script={"s": [True]})
        with pytest.raises(InjectedFaultError, match="'s'") as info:
            injector.check("s")
        assert info.value.site == "s"

    def test_reset_rewinds_the_schedule(self):
        injector = FaultInjector(script={"s": [True]})
        assert injector.should_fire("s")
        assert not injector.should_fire("s")
        injector.reset()
        assert injector.should_fire("s")


class TestProbabilistic:
    def test_rate_zero_never_fires(self):
        injector = FaultInjector(seed=1, rates={"s": 0.0})
        assert not any(injector.should_fire("s") for _ in range(100))

    def test_rate_one_always_fires(self):
        injector = FaultInjector(seed=1, rates={"s": 1.0})
        assert all(injector.should_fire("s") for _ in range(100))

    def test_same_seed_same_sequence(self):
        def draw(seed):
            injector = FaultInjector(seed=seed, rates={"s": 0.4})
            return [injector.should_fire("s") for _ in range(50)]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)

    def test_sites_have_independent_streams(self):
        injector = FaultInjector(seed=7, rates={"a": 0.4, "b": 0.4})
        solo = FaultInjector(seed=7, rates={"a": 0.4})
        interleaved = []
        for _ in range(30):
            interleaved.append(injector.should_fire("a"))
            injector.should_fire("b")
        assert interleaved == [solo.should_fire("a") for _ in range(30)]

    def test_counters(self):
        injector = FaultInjector(script={"s": [True, False, True]})
        for _ in range(3):
            injector.should_fire("s")
        assert injector.checked["s"] == 3
        assert injector.fired["s"] == 2

    def test_set_rate_and_validation(self):
        injector = FaultInjector(seed=1)
        injector.set_rate("s", 1.0)
        assert injector.should_fire("s")
        injector.set_rate("s", 0.0)
        assert not injector.should_fire("s")
        with pytest.raises(ConfigurationError):
            injector.set_rate("s", 1.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(rates={"s": -0.1})


class TestAmbient:
    def test_noop_without_active_injector(self):
        fault_check("io.write")  # does not raise

    def test_active_injector_fires(self):
        injector = FaultInjector(script={"io.write": [True]})
        with injector.injecting():
            assert FaultInjector.ambient() is injector
            with pytest.raises(InjectedFaultError):
                fault_check("io.write")
        assert FaultInjector.ambient() is None
        fault_check("io.write")  # deactivated again

    def test_nesting_restores_previous(self):
        outer = FaultInjector()
        inner = FaultInjector()
        with outer.injecting():
            with inner.injecting():
                assert FaultInjector.ambient() is inner
            assert FaultInjector.ambient() is outer


class TestWrappers:
    def test_faulty_model_passthrough_when_quiet(self, tiny_bpr):
        injector = FaultInjector(seed=1)
        wrapped = FaultyModel(tiny_bpr, injector)
        assert wrapped.is_fitted
        assert "fault-injected" in wrapped.name
        assert np.array_equal(wrapped.recommend(0, 5), tiny_bpr.recommend(0, 5))
        assert injector.checked[SITE_MODEL_SCORE] == 1

    def test_faulty_model_raises_on_scoring(self, tiny_bpr):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=1)
        wrapped = FaultyModel(tiny_bpr, injector)
        with pytest.raises(InjectedFaultError):
            wrapped.recommend(0, 5)
        with pytest.raises(InjectedFaultError):
            wrapped.recommend_batch(np.asarray([0, 1]), 5)

    def test_faulty_embedder(self):
        from repro.text.embedder import HashedTfidfEmbedder

        injector = FaultInjector(script={"embedder.encode": [True, False]})
        embedder = FaultyEmbedder(
            HashedTfidfEmbedder(dim=32), injector
        )
        embedder.fit(["a book about dragons", "a book about trains"])
        assert embedder.is_fitted
        with pytest.raises(InjectedFaultError):
            embedder.encode(["dragons"])
        encoded = embedder.encode(["dragons"])
        assert encoded.shape == (1, 32)

"""Tests for the beyond-accuracy metrics (diversity/novelty/serendipity)."""

import numpy as np
import pytest

from repro.core.most_read import MostReadItems
from repro.errors import EvaluationError
from repro.eval.beyond_accuracy import evaluate_beyond_accuracy


@pytest.fixture(scope="module")
def similarity(tiny_split, tiny_merged):
    from repro.core.closest_items import ClosestItems

    model = ClosestItems(fields=("author", "genres"))
    model.fit(tiny_split.train, tiny_merged)
    return model.similarity


class TestValidation:
    def test_similarity_shape_checked(self, tiny_bpr, tiny_split):
        with pytest.raises(EvaluationError, match="similarity matrix"):
            evaluate_beyond_accuracy(tiny_bpr, tiny_split, np.eye(3), k=5)

    def test_k_checked(self, tiny_bpr, tiny_split, similarity):
        with pytest.raises(EvaluationError, match="k must be"):
            evaluate_beyond_accuracy(tiny_bpr, tiny_split, similarity, k=0)


class TestMetrics:
    @pytest.fixture(scope="class")
    def bpr_report(self, tiny_bpr, tiny_split, similarity):
        return evaluate_beyond_accuracy(tiny_bpr, tiny_split, similarity, k=10)

    def test_bounds(self, bpr_report):
        assert 0.0 <= bpr_report.serendipity <= 1.0
        assert 0.0 <= bpr_report.coverage <= 1.0
        assert bpr_report.novelty > 0.0
        assert -1.0 <= bpr_report.diversity <= 2.0

    def test_as_row(self, bpr_report):
        assert set(bpr_report.as_row()) == {"Div", "Nov", "Ser", "Cov"}

    def test_most_read_has_minimal_coverage(
        self, tiny_split, tiny_merged, similarity, tiny_bpr
    ):
        """The global top-k reaches at most k distinct books; a personalised
        model covers far more of the catalogue."""
        most_read = MostReadItems().fit(tiny_split.train, tiny_merged)
        popular = evaluate_beyond_accuracy(
            most_read, tiny_split, similarity, k=10
        )
        personalised = evaluate_beyond_accuracy(
            tiny_bpr, tiny_split, similarity, k=10
        )
        assert popular.coverage <= 10 / tiny_split.train.n_items + 1e-9
        assert personalised.coverage > popular.coverage

    def test_popular_list_least_novel(
        self, tiny_split, tiny_merged, similarity, tiny_bpr
    ):
        most_read = MostReadItems().fit(tiny_split.train, tiny_merged)
        popular = evaluate_beyond_accuracy(
            most_read, tiny_split, similarity, k=10
        )
        personalised = evaluate_beyond_accuracy(
            tiny_bpr, tiny_split, similarity, k=10
        )
        assert popular.novelty < personalised.novelty

    def test_threshold_monotonicity(self, tiny_bpr, tiny_split, similarity):
        strict = evaluate_beyond_accuracy(
            tiny_bpr, tiny_split, similarity, k=10, serendipity_threshold=0.05
        )
        loose = evaluate_beyond_accuracy(
            tiny_bpr, tiny_split, similarity, k=10, serendipity_threshold=0.95
        )
        assert loose.serendipity >= strict.serendipity

"""Tests for the KPI formulas (Equations 4-7 + FR) and extensions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.eval.metrics import (
    KPIReport,
    average_precision,
    compute_kpis,
    first_rank,
    hits_at_k,
    ndcg,
)


class TestComputeKpis:
    def test_hand_computed_example(self):
        # Three users: 2 hits / 0 hits / 1 hit at k=5.
        hits = np.asarray([2, 0, 1])
        test_sizes = np.asarray([4, 2, 1])
        first_ranks = np.asarray([1, 50, 3])
        report = compute_kpis(hits, test_sizes, first_ranks, k=5)
        assert report.urr == pytest.approx(2 / 3)
        assert report.nrr == pytest.approx(1.0)
        assert report.precision == pytest.approx((2 / 5 + 0 + 1 / 5) / 3)
        assert report.recall == pytest.approx((2 / 4 + 0 + 1 / 1) / 3)
        assert report.first_rank == pytest.approx(18.0)

    def test_perfect_recommender(self):
        hits = np.asarray([3, 3])
        report = compute_kpis(hits, np.asarray([3, 3]), np.asarray([1, 1]), k=3)
        assert report.urr == 1.0
        assert report.recall == 1.0
        assert report.precision == 1.0
        assert report.first_rank == 1.0

    def test_all_misses(self):
        report = compute_kpis(
            np.asarray([0, 0]), np.asarray([2, 2]), np.asarray([90, 10]), k=5
        )
        assert report.urr == 0.0 and report.nrr == 0.0
        assert report.first_rank == 50.0

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError, match="disagree"):
            compute_kpis(np.asarray([1]), np.asarray([1, 2]), np.asarray([1]), k=5)

    def test_zero_users(self):
        with pytest.raises(EvaluationError, match="zero users"):
            compute_kpis(np.asarray([]), np.asarray([]), np.asarray([]), k=5)

    def test_empty_test_set_rejected(self):
        with pytest.raises(EvaluationError, match="non-empty"):
            compute_kpis(np.asarray([0]), np.asarray([0]), np.asarray([1]), k=5)

    def test_as_row_keys(self):
        report = KPIReport(k=20, urr=0.1, nrr=0.2, precision=0.3, recall=0.4,
                           first_rank=5.0)
        assert set(report.as_row()) == {"URR", "NRR", "P", "R", "FR"}

    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 10),   # hits
                st.integers(1, 20),   # extra test size beyond hits
                st.integers(1, 500),  # first rank
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(1, 50),
    )
    def test_property_bounds(self, rows, k):
        hits = np.asarray([min(h, k) for h, _, __ in rows])
        test_sizes = np.asarray([h + extra for h, extra, __ in rows])
        first_ranks = np.asarray([fr for _, __, fr in rows])
        report = compute_kpis(hits, test_sizes, first_ranks, k)
        assert 0 <= report.urr <= 1
        assert 0 <= report.precision <= 1
        assert 0 <= report.recall <= 1
        assert report.nrr >= report.urr or report.nrr == pytest.approx(report.urr)


class TestPerUserHelpers:
    def test_hits_at_k(self):
        ranks = np.asarray([1, 7, 30])
        assert hits_at_k(ranks, 10) == 2
        assert hits_at_k(ranks, 1) == 1
        assert hits_at_k(ranks, 50) == 3

    def test_first_rank(self):
        assert first_rank(np.asarray([12, 3, 99])) == 3

    def test_first_rank_empty(self):
        with pytest.raises(EvaluationError):
            first_rank(np.asarray([]))


class TestExtensions:
    def test_average_precision_perfect_prefix(self):
        # Held-out items at ranks 1 and 2 of a k=5 list.
        assert average_precision(np.asarray([1, 2]), 5) == pytest.approx(1.0)

    def test_average_precision_no_hits(self):
        assert average_precision(np.asarray([99]), 5) == 0.0

    def test_ndcg_perfect(self):
        assert ndcg(np.asarray([1, 2]), 5) == pytest.approx(1.0)

    def test_ndcg_worse_when_later(self):
        early = ndcg(np.asarray([1]), 10)
        late = ndcg(np.asarray([9]), 10)
        assert early > late > 0

    def test_ndcg_no_hits(self):
        assert ndcg(np.asarray([99]), 5) == 0.0

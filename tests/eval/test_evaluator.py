"""Tests for the end-to-end evaluator."""

import numpy as np
import pytest

from repro.core.base import Recommender
from repro.core.random_items import RandomItems
from repro.errors import EvaluationError
from repro.eval.evaluator import (
    evaluate_model,
    fit_and_evaluate,
    measure_recommendation_latency,
)


class Oracle(Recommender):
    """Cheating model: scores the user's own held-out items highest."""

    exclude_seen = True

    def __init__(self, holdout):
        super().__init__()
        self._holdout = holdout

    def _fit(self, train, dataset):
        pass

    def score_users(self, user_indices):
        scores = np.zeros((len(user_indices), self.train.n_items))
        for row, user in enumerate(user_indices):
            held = self._holdout.get(int(user))
            if held is not None:
                scores[row, held] = 1.0
        return scores


class TestEvaluateModel:
    def test_oracle_scores_perfectly(self, tiny_split, tiny_merged):
        oracle = Oracle(tiny_split.test_items).fit(tiny_split.train, tiny_merged)
        result = evaluate_model(oracle, tiny_split, ks=(20,))
        report = result.report(20)
        assert report.urr == 1.0
        assert report.first_rank == 1.0
        assert report.recall > 0.9  # test sets can exceed k=20 only rarely

    def test_random_model_is_weak(self, tiny_split, tiny_merged):
        model = RandomItems(seed=0).fit(tiny_split.train, tiny_merged)
        result = evaluate_model(model, tiny_split, ks=(20,))
        assert result.report(20).urr < 0.6

    def test_multiple_ks_single_pass(self, tiny_split, tiny_merged):
        model = RandomItems(seed=0).fit(tiny_split.train, tiny_merged)
        sweep = evaluate_model(model, tiny_split, ks=(5, 20))
        single = evaluate_model(model, tiny_split, ks=(20,))
        assert sweep.report(20).urr == single.report(20).urr
        assert sweep.report(5).urr <= sweep.report(20).urr

    def test_monotone_in_k(self, tiny_split, tiny_merged):
        model = RandomItems(seed=0).fit(tiny_split.train, tiny_merged)
        result = evaluate_model(model, tiny_split, ks=(1, 5, 20, 50))
        urrs = [result.report(k).urr for k in (1, 5, 20, 50)]
        assert urrs == sorted(urrs)
        precisions = [result.report(k).precision for k in (1, 5, 20, 50)]
        # Precision tends to fall with k (not strictly, but over this range).
        assert precisions[-1] <= precisions[0] + 0.05

    def test_fr_independent_of_k(self, tiny_split, tiny_merged):
        model = RandomItems(seed=0).fit(tiny_split.train, tiny_merged)
        result = evaluate_model(model, tiny_split, ks=(5, 50))
        assert result.report(5).first_rank == result.report(50).first_rank

    def test_requires_ks(self, tiny_split, tiny_merged, tiny_bpr):
        with pytest.raises(EvaluationError):
            evaluate_model(tiny_bpr, tiny_split, ks=())
        with pytest.raises(EvaluationError):
            evaluate_model(tiny_bpr, tiny_split, ks=(0,))

    def test_unknown_holdout(self, tiny_split, tiny_bpr):
        with pytest.raises(EvaluationError, match="holdout"):
            evaluate_model(tiny_bpr, tiny_split, holdout="future")

    def test_val_holdout_restricted_to_bct(self, tiny_split, tiny_bpr):
        result = evaluate_model(tiny_bpr, tiny_split, holdout="val")
        bct = set(int(u) for u in tiny_split.bct_user_indices)
        assert set(result.per_user.user_indices.tolist()) <= bct

    def test_missing_k_report(self, tiny_split, tiny_merged, tiny_bpr):
        result = evaluate_model(tiny_bpr, tiny_split, ks=(20,))
        with pytest.raises(EvaluationError, match="no KPIs"):
            result.report(7)

    def test_per_user_arrays_aligned(self, tiny_split, tiny_bpr):
        result = evaluate_model(tiny_bpr, tiny_split, ks=(20,))
        per_user = result.per_user
        n = len(per_user.user_indices)
        assert len(per_user.train_sizes) == n
        assert len(per_user.test_sizes) == n
        assert len(per_user.hits[20]) == n
        assert (per_user.test_sizes > 0).all()

    def test_chunking_invariant(self, tiny_split, tiny_bpr):
        big = evaluate_model(tiny_bpr, tiny_split, ks=(20,), chunk_size=1000)
        small = evaluate_model(tiny_bpr, tiny_split, ks=(20,), chunk_size=7)
        assert big.report(20) == small.report(20)


class TestFitAndEvaluate:
    def test_records_fit_time(self, tiny_split, tiny_merged):
        result = fit_and_evaluate(
            RandomItems(seed=0), tiny_split, tiny_merged, ks=(10,)
        )
        assert result.fit_seconds is not None and result.fit_seconds >= 0
        assert result.model_name == "Random Items"

    def test_latency_measured_when_requested(self, tiny_split, tiny_merged):
        result = fit_and_evaluate(
            RandomItems(seed=0), tiny_split, tiny_merged,
            ks=(10,), measure_latency=True,
        )
        assert result.recommend_seconds_per_user is not None
        assert result.recommend_seconds_per_user > 0


class TestLatency:
    def test_requires_users(self, tiny_bpr):
        with pytest.raises(EvaluationError):
            measure_recommendation_latency(tiny_bpr, np.asarray([]), k=5)

    def test_positive(self, tiny_bpr, tiny_split):
        users = np.asarray(sorted(tiny_split.test_items))[:5]
        latency = measure_recommendation_latency(tiny_bpr, users, k=5)
        assert latency > 0

"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.core.random_items import RandomItems
from repro.errors import EvaluationError
from repro.eval.bootstrap import (
    bootstrap_metric,
    paired_bootstrap_difference,
)
from repro.eval.evaluator import evaluate_model, fit_and_evaluate


@pytest.fixture(scope="module")
def bpr_eval(tiny_bpr, tiny_split):
    return evaluate_model(tiny_bpr, tiny_split, ks=(20,))


@pytest.fixture(scope="module")
def random_eval(tiny_split, tiny_merged):
    return fit_and_evaluate(
        RandomItems(seed=0), tiny_split, tiny_merged, ks=(20,)
    )


class TestBootstrapMetric:
    def test_estimate_matches_kpi(self, bpr_eval):
        ci = bootstrap_metric(bpr_eval, "urr", 20, seed=1)
        assert ci.estimate == pytest.approx(bpr_eval.report(20).urr)

    def test_interval_brackets_estimate(self, bpr_eval):
        for metric in ("urr", "nrr", "precision", "recall", "first_rank"):
            ci = bootstrap_metric(bpr_eval, metric, 20, seed=1)
            assert ci.low <= ci.estimate <= ci.high, metric

    def test_wider_confidence_wider_interval(self, bpr_eval):
        narrow = bootstrap_metric(bpr_eval, "urr", 20, confidence=0.5, seed=1)
        wide = bootstrap_metric(bpr_eval, "urr", 20, confidence=0.99, seed=1)
        assert (wide.high - wide.low) >= (narrow.high - narrow.low)

    def test_deterministic_given_seed(self, bpr_eval):
        a = bootstrap_metric(bpr_eval, "urr", 20, seed=5)
        b = bootstrap_metric(bpr_eval, "urr", 20, seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_contains(self, bpr_eval):
        ci = bootstrap_metric(bpr_eval, "urr", 20, seed=1)
        assert ci.contains(ci.estimate)
        assert not ci.contains(ci.high + 1.0)

    def test_str(self, bpr_eval):
        assert "urr=" in str(bootstrap_metric(bpr_eval, "urr", 20, seed=1))

    def test_unknown_metric(self, bpr_eval):
        with pytest.raises(EvaluationError, match="unsupported metric"):
            bootstrap_metric(bpr_eval, "ndcg", 20)

    def test_missing_k(self, bpr_eval):
        with pytest.raises(EvaluationError, match="no hits"):
            bootstrap_metric(bpr_eval, "urr", 7)

    def test_parameter_validation(self, bpr_eval):
        with pytest.raises(EvaluationError):
            bootstrap_metric(bpr_eval, "urr", 20, confidence=1.5)
        with pytest.raises(EvaluationError):
            bootstrap_metric(bpr_eval, "urr", 20, n_resamples=2)


class TestPairedBootstrap:
    def test_bpr_beats_random_significantly(self, bpr_eval, random_eval):
        comparison = paired_bootstrap_difference(
            bpr_eval, random_eval, "nrr", 20, seed=1
        )
        assert comparison.difference > 0
        assert comparison.significant
        assert "significant" in str(comparison)

    def test_self_comparison_is_null(self, bpr_eval):
        comparison = paired_bootstrap_difference(
            bpr_eval, bpr_eval, "urr", 20, seed=1
        )
        assert comparison.difference == 0.0
        assert not comparison.significant

    def test_difference_matches_kpis(self, bpr_eval, random_eval):
        comparison = paired_bootstrap_difference(
            bpr_eval, random_eval, "urr", 20, seed=1
        )
        expected = bpr_eval.report(20).urr - random_eval.report(20).urr
        assert comparison.difference == pytest.approx(expected)

    def test_requires_same_users(self, bpr_eval, tiny_split, tiny_merged):
        bct_only = tiny_merged.restrict_to_sources({"bct"})
        from repro.eval.split import split_readings

        other_split = split_readings(bct_only)
        other = fit_and_evaluate(
            RandomItems(seed=0), other_split, bct_only, ks=(20,)
        )
        if np.array_equal(
            other.per_user.user_indices, bpr_eval.per_user.user_indices
        ):
            pytest.skip("splits coincide on this fixture")
        with pytest.raises(EvaluationError, match="same"):
            paired_bootstrap_difference(bpr_eval, other, "urr", 20)

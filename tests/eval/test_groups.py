"""Tests for the history-size group analysis (Fig. 4 machinery)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.evaluator import evaluate_model
from repro.eval.groups import (
    HistoryBin,
    equal_population_bins,
    evaluate_by_history_size,
)


class TestEqualPopulationBins:
    def test_partition_covers_all_users(self):
        sizes = np.asarray([5] * 10 + [10] * 10 + [20] * 10 + [50] * 10)
        bins = equal_population_bins(sizes, 4)
        assert sum(b.n_users for b in bins) == len(sizes)

    def test_bins_contiguous(self):
        sizes = np.arange(1, 101)
        bins = equal_population_bins(sizes, 4)
        for previous, current in zip(bins, bins[1:]):
            assert current.low == previous.high + 1

    def test_roughly_equal_population(self):
        sizes = np.arange(1, 101)
        bins = equal_population_bins(sizes, 4)
        assert all(20 <= b.n_users <= 30 for b in bins)

    def test_heavy_ties_merge_bins(self):
        sizes = np.asarray([7] * 95 + [50] * 5)
        bins = equal_population_bins(sizes, 4)
        assert len(bins) < 4
        assert sum(b.n_users for b in bins) == 100

    def test_single_value(self):
        bins = equal_population_bins(np.asarray([3, 3, 3]), 4)
        assert len(bins) == 1
        assert bins[0].label == "3"

    def test_errors(self):
        with pytest.raises(EvaluationError):
            equal_population_bins(np.asarray([]), 4)
        with pytest.raises(EvaluationError):
            equal_population_bins(np.asarray([1]), 0)

    def test_label_format(self):
        assert HistoryBin(low=3, high=9, n_users=5).label == "3-9"
        assert HistoryBin(low=4, high=4, n_users=5).label == "4"


class TestEvaluateByHistorySize:
    def test_group_nrr_reconstructs_total(self, tiny_split, tiny_bpr):
        result = evaluate_model(tiny_bpr, tiny_split, ks=(20,))
        groups = evaluate_by_history_size(result, 20, n_bins=4)
        weighted = sum(
            nrr * hist_bin.n_users
            for nrr, hist_bin in zip(groups.nrr, groups.bins)
        )
        total = weighted / sum(b.n_users for b in groups.bins)
        assert total == pytest.approx(result.report(20).nrr, abs=1e-9)

    def test_shared_bins_across_models(self, tiny_split, tiny_bpr, tiny_merged):
        from repro.core.random_items import RandomItems

        bpr_result = evaluate_model(tiny_bpr, tiny_split, ks=(20,))
        bins = equal_population_bins(bpr_result.per_user.train_sizes, 4)
        random_result = evaluate_model(
            RandomItems(seed=0).fit(tiny_split.train, tiny_merged),
            tiny_split, ks=(20,),
        )
        groups = evaluate_by_history_size(random_result, 20, bins=bins)
        assert groups.bins == bins

    def test_missing_k_rejected(self, tiny_split, tiny_bpr):
        result = evaluate_model(tiny_bpr, tiny_split, ks=(20,))
        with pytest.raises(EvaluationError, match="no hits"):
            evaluate_by_history_size(result, 5)

    def test_urr_within_bounds(self, tiny_split, tiny_bpr):
        result = evaluate_model(tiny_bpr, tiny_split, ks=(20,))
        groups = evaluate_by_history_size(result, 20, n_bins=3)
        for urr in groups.urr:
            assert 0.0 <= urr <= 1.0

"""Tests for the BPR grid search."""

import pytest

from repro.core.bpr import BPRConfig
from repro.errors import EvaluationError
from repro.eval.grid import grid_search_bpr


@pytest.fixture(scope="module")
def grid(tiny_split, tiny_merged):
    return grid_search_bpr(
        tiny_split,
        tiny_merged,
        base_config=BPRConfig(epochs=3, seed=1),
        factor_grid=(5, 10),
        learning_rate_grid=(0.05, 0.2),
        k=10,
    )


class TestGridSearch:
    def test_all_cells_evaluated(self, grid):
        assert len(grid.points) == 4
        assert set(grid.as_matrix()) == {
            (5, 0.05), (5, 0.2), (10, 0.05), (10, 0.2)
        }

    def test_best_maximises_urr(self, grid):
        best_urr = max(p.val_urr for p in grid.points)
        assert grid.best.val_urr == best_urr

    def test_urr_in_bounds(self, grid):
        for point in grid.points:
            assert 0.0 <= point.val_urr <= 1.0
            assert point.val_nrr >= point.val_urr - 1e-9

    def test_k_recorded(self, grid):
        assert grid.k == 10

    def test_empty_grid_rejected(self, tiny_split, tiny_merged):
        with pytest.raises(EvaluationError):
            grid_search_bpr(
                tiny_split, tiny_merged, factor_grid=(),
            )

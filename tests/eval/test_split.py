"""Tests for the per-user temporal split."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.split import SplitConfig, _cut, split_readings


class TestSplitConfigValidation:
    def test_test_fraction_bounds(self):
        with pytest.raises(EvaluationError):
            SplitConfig(test_fraction=0.0)
        with pytest.raises(EvaluationError):
            SplitConfig(test_fraction=1.0)

    def test_val_fraction_bounds(self):
        with pytest.raises(EvaluationError):
            SplitConfig(val_fraction=1.0)

    def test_order_values(self):
        with pytest.raises(EvaluationError):
            SplitConfig(order="chronological")


class TestCut:
    def test_standard_fractions(self):
        train, val, test = _cut(list(range(20)), 0.2, 0.2)
        assert len(test) == 4
        assert len(val) == 3  # 20% of the remaining 16
        assert len(train) == 13

    def test_holdouts_are_most_recent(self):
        train, val, test = _cut(list(range(10)), 0.2, 0.2)
        assert test == [8, 9]
        assert val == [7]  # 20% of the remaining 8, floored
        assert max(train) < min(val) < min(test)

    def test_tiny_list_keeps_a_training_item(self):
        train, val, test = _cut([1, 2], 0.2, 0.2)
        assert len(train) >= 1

    def test_minimum_holdout_for_three_items(self):
        train, val, test = _cut([1, 2, 3], 0.2, 0.2)
        assert len(test) == 1

    def test_no_test_for_anobii_users(self):
        train, val, test = _cut(list(range(10)), 0.0, 0.2)
        assert test == []
        assert len(val) == 2

    def test_partition_complete(self):
        items = list(range(17))
        train, val, test = _cut(items, 0.2, 0.2)
        assert sorted(train + val + test) == items


class TestSplitReadings:
    def test_only_bct_users_have_test(self, tiny_split):
        for user_index in tiny_split.test_items:
            assert str(tiny_split.users.id_of(user_index)).startswith("bct_")

    def test_every_bct_user_has_test(self, tiny_split, tiny_merged):
        assert len(tiny_split.test_items) == len(tiny_merged.bct_user_ids)

    def test_anobii_users_have_validation(self, tiny_split):
        anobii_with_val = sum(
            1
            for user in tiny_split.val_items
            if str(tiny_split.users.id_of(user)).startswith("anobii_")
        )
        assert anobii_with_val > 0

    def test_holdouts_disjoint_from_train(self, tiny_split):
        for user_index, held in list(tiny_split.test_items.items())[:50]:
            train_items = set(tiny_split.train.user_items(user_index).tolist())
            assert not train_items & set(held.tolist())
        for user_index, held in list(tiny_split.val_items.items())[:50]:
            train_items = set(tiny_split.train.user_items(user_index).tolist())
            assert not train_items & set(held.tolist())

    def test_val_test_disjoint(self, tiny_split):
        for user_index, test in tiny_split.test_items.items():
            val = tiny_split.val_items.get(user_index)
            if val is not None:
                assert not set(val.tolist()) & set(test.tolist())

    def test_test_items_are_latest_reads(self, tiny_split, tiny_merged):
        """Temporal split: every test book's first read date is >= every
        train book's first read date for that user."""
        first_date = {}
        for user, book, day in zip(
            tiny_merged.readings["user_id"],
            tiny_merged.readings["book_id"],
            tiny_merged.readings["read_date"],
        ):
            key = (str(user), int(book))
            if key not in first_date or day < first_date[key]:
                first_date[key] = day
        checked = 0
        for user_index, test in list(tiny_split.test_items.items())[:30]:
            user_id = str(tiny_split.users.id_of(user_index))
            train_items = tiny_split.train.user_items(user_index)
            train_dates = [
                first_date[(user_id, int(tiny_split.items.id_of(int(i))))]
                for i in train_items
            ]
            test_dates = [
                first_date[(user_id, int(tiny_split.items.id_of(int(i))))]
                for i in test
            ]
            assert max(train_dates) <= min(test_dates)
            checked += 1
        assert checked > 0

    def test_train_keeps_event_multiplicity(self, tiny_split, tiny_merged):
        """Re-borrowed train books contribute their full event count."""
        assert tiny_split.train.item_counts().sum() > tiny_split.train.n_interactions

    def test_random_order_split_differs(self, tiny_merged):
        temporal = split_readings(tiny_merged, SplitConfig(order="time"))
        shuffled = split_readings(
            tiny_merged, SplitConfig(order="random", seed=3)
        )
        differing = sum(
            1
            for user in temporal.test_items
            if set(temporal.test_items[user].tolist())
            != set(shuffled.test_items[user].tolist())
        )
        assert differing > 0

    def test_train_sizes(self, tiny_split):
        users = np.asarray(sorted(tiny_split.test_items))
        sizes = tiny_split.train_sizes(users)
        assert (sizes >= 1).all()

"""Tests for source-level cleaning steps and their reports."""

import pytest

from repro.pipeline.cleaning import clean_anobii, clean_bct


class TestCleanBCT:
    def test_filter_applied(self, tiny_sources):
        cleaned, report = clean_bct(tiny_sources.bct)
        assert set(cleaned.books["material"].tolist()) <= {
            "monograph", "manuscript"
        }
        assert report.catalogue_removed > 0

    def test_report_counts_match(self, tiny_sources):
        cleaned, report = clean_bct(tiny_sources.bct)
        assert report.catalogue_before == tiny_sources.bct.n_books
        assert report.catalogue_after == cleaned.n_books
        assert report.events_after == cleaned.n_loans

    def test_report_renders(self, tiny_sources):
        _, report = clean_bct(tiny_sources.bct)
        text = str(report)
        assert "->" in text and "bct" in text


class TestCleanAnobii:
    def test_default_threshold(self, tiny_sources):
        cleaned, report = clean_anobii(tiny_sources.anobii)
        assert cleaned.ratings["rating"].min() >= 3
        assert report.events_removed > 0

    def test_custom_threshold(self, tiny_sources):
        cleaned, _ = clean_anobii(tiny_sources.anobii, min_rating=4)
        assert cleaned.ratings["rating"].min() >= 4

    def test_non_books_removed(self, tiny_sources):
        cleaned, _ = clean_anobii(tiny_sources.anobii)
        assert cleaned.items["is_book"].all()


def _with_rows(table, rows):
    from repro.tables.table import Table, concat_tables

    return concat_tables(
        [table, Table.from_rows(rows, schema=table.schema)]
    )


@pytest.fixture()
def dirty_bct(tiny_sources):
    """The tiny BCT dump with four malformed rows appended."""
    from repro.datasets.bct import BCTDataset

    bct = tiny_sources.bct
    duplicate = dict(bct.books.row(0))
    duplicate["title"] = "shadow copy"
    books = _with_rows(bct.books, [duplicate])

    template = dict(bct.loans.row(0))
    dangling = {**template, "loan_id": 900001, "book_id": 99999999}
    blank_user = {**template, "loan_id": 900002, "user_id": "   "}
    reversed_dates = {
        **template,
        "loan_id": 900003,
        "loan_date": template["return_date"],
        "return_date": template["loan_date"],
    }
    assert template["return_date"] > template["loan_date"]
    loans = _with_rows(bct.loans, [dangling, blank_user, reversed_dates])
    return BCTDataset(books=books, loans=loans)


@pytest.fixture()
def dirty_anobii(tiny_sources):
    """The tiny Anobii dump with four malformed rows appended."""
    from repro.datasets.anobii import AnobiiDataset

    anobii = tiny_sources.anobii
    duplicate = dict(anobii.items.row(0))
    items = _with_rows(anobii.items, [duplicate])

    template = dict(anobii.ratings.row(0))
    dangling = {**template, "rating_id": 900001, "item_id": 99999999}
    blank_user = {**template, "rating_id": 900002, "user_id": ""}
    out_of_range = {**template, "rating_id": 900003, "rating": 9}
    ratings = _with_rows(
        anobii.ratings, [dangling, blank_user, out_of_range]
    )
    return AnobiiDataset(items=items, ratings=ratings)


class TestQuarantine:
    def test_clean_sources_pass_through(self, tiny_sources):
        from repro.pipeline.cleaning import quarantine_anobii, quarantine_bct

        bct, bct_report = quarantine_bct(tiny_sources.bct)
        anobii, anobii_report = quarantine_anobii(tiny_sources.anobii)
        assert bct is tiny_sources.bct
        assert anobii is tiny_sources.anobii
        assert not bct_report and not anobii_report
        assert "no malformed rows" in str(bct_report)

    def test_bct_rows_quarantined_with_context(self, dirty_bct):
        from repro.pipeline.cleaning import quarantine_bct

        cleaned, report = quarantine_bct(dirty_bct)
        assert report.n_rows == 4
        reasons = {(row.table, row.reason) for row in report.rows}
        assert reasons == {
            ("bct.books", "duplicate book_id"),
            ("bct.loans", "dangling book_id"),
            ("bct.loans", "blank user_id"),
            ("bct.loans", "returned before borrowed"),
        }
        dangling = next(
            row for row in report.rows if row.reason == "dangling book_id"
        )
        assert dangling.context["book_id"] == "99999999"
        assert dangling.row == dirty_bct.loans.num_rows - 3
        cleaned.validate()  # the survivors are referentially sound

    def test_anobii_rows_quarantined(self, dirty_anobii):
        from repro.pipeline.cleaning import quarantine_anobii

        cleaned, report = quarantine_anobii(dirty_anobii)
        assert report.n_rows == 4
        reasons = {row.reason for row in report.rows}
        assert reasons == {
            "duplicate item_id",
            "dangling item_id",
            "blank user_id",
            "rating outside [1, 5]",
        }
        cleaned.validate()
        assert "4 rows" in str(report)

    def test_strict_mode_raises(self, dirty_bct, dirty_anobii):
        from repro.errors import PipelineError
        from repro.pipeline.cleaning import quarantine_anobii, quarantine_bct

        with pytest.raises(PipelineError, match="malformed source rows"):
            quarantine_bct(dirty_bct, strict=True)
        with pytest.raises(PipelineError, match="malformed source rows"):
            quarantine_anobii(dirty_anobii, strict=True)


class TestMergeWithQuarantine:
    def test_dirty_sources_merge_like_clean_ones(
        self, tiny_sources, tiny_merged, dirty_bct, dirty_anobii
    ):
        from repro.pipeline import build_merged_dataset
        from tests.conftest import TINY_MERGE

        merged, report = build_merged_dataset(
            dirty_bct, dirty_anobii, TINY_MERGE
        )
        assert report.quarantine.n_rows == 8
        assert merged.books == tiny_merged.books
        assert merged.readings == tiny_merged.readings
        assert "quarantine" in str(report)

    def test_clean_merge_reports_empty_quarantine(self, tiny_merge_report):
        assert not tiny_merge_report.quarantine
        assert "quarantine" not in str(tiny_merge_report)

    def test_strict_merge_raises(self, dirty_bct, tiny_sources):
        from repro.errors import PipelineError
        from repro.pipeline import build_merged_dataset
        from tests.conftest import TINY_MERGE

        with pytest.raises(PipelineError, match="strict"):
            build_merged_dataset(
                dirty_bct, tiny_sources.anobii, TINY_MERGE, strict=True
            )

"""Tests for source-level cleaning steps and their reports."""

import pytest

from repro.pipeline.cleaning import clean_anobii, clean_bct


class TestCleanBCT:
    def test_filter_applied(self, tiny_sources):
        cleaned, report = clean_bct(tiny_sources.bct)
        assert set(cleaned.books["material"].tolist()) <= {
            "monograph", "manuscript"
        }
        assert report.catalogue_removed > 0

    def test_report_counts_match(self, tiny_sources):
        cleaned, report = clean_bct(tiny_sources.bct)
        assert report.catalogue_before == tiny_sources.bct.n_books
        assert report.catalogue_after == cleaned.n_books
        assert report.events_after == cleaned.n_loans

    def test_report_renders(self, tiny_sources):
        _, report = clean_bct(tiny_sources.bct)
        text = str(report)
        assert "->" in text and "bct" in text


class TestCleanAnobii:
    def test_default_threshold(self, tiny_sources):
        cleaned, report = clean_anobii(tiny_sources.anobii)
        assert cleaned.ratings["rating"].min() >= 3
        assert report.events_removed > 0

    def test_custom_threshold(self, tiny_sources):
        cleaned, _ = clean_anobii(tiny_sources.anobii, min_rating=4)
        assert cleaned.ratings["rating"].min() >= 4

    def test_non_books_removed(self, tiny_sources):
        cleaned, _ = clean_anobii(tiny_sources.anobii)
        assert cleaned.items["is_book"].all()

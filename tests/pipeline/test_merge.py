"""Tests for the BCT + Anobii merge step."""

from collections import Counter

import pytest

from repro.datasets.synthetic import ANOBII_ID_BASE, BCT_ID_BASE
from repro.errors import PipelineError
from repro.pipeline.merge import MergeConfig, build_merged_dataset


class TestMergeConfigValidation:
    def test_floors_must_be_positive(self):
        with pytest.raises(PipelineError):
            MergeConfig(min_user_readings=0)
        with pytest.raises(PipelineError):
            MergeConfig(min_book_readings=0)

    def test_rating_bounds(self):
        with pytest.raises(PipelineError):
            MergeConfig(min_rating=6)


class TestCatalogueAlignment:
    def test_only_shared_books_survive(self, tiny_sources, tiny_merged):
        """Every merged book must exist in both cleaned catalogues."""
        bct_books = set(
            tiny_sources.bct.filter_italian_monographs().books["book_id"].tolist()
        )
        assert set(tiny_merged.books["book_id"].tolist()) <= bct_books

    def test_merged_ids_align_to_same_latent_book(self, tiny_merged):
        """The merged book id is the BCT id; its Anobii twin differs only by
        the id-space offset, so title/author agreement is structural."""
        for book_id in tiny_merged.books["book_id"][:10]:
            assert int(book_id) >= BCT_ID_BASE
            assert int(book_id) < ANOBII_ID_BASE

    def test_metadata_union(self, tiny_merged):
        """Merged books carry BCT title/author plus Anobii plot/keywords."""
        with_plot = sum(1 for p in tiny_merged.books["plot"] if p)
        assert with_plot == tiny_merged.n_books

    def test_report_counts(self, tiny_merge_report):
        report = tiny_merge_report
        assert report.matched_books > 0
        assert report.users_after_filter <= report.users_before_filter
        assert report.readings_after_filter <= report.readings_before_filter
        assert "catalogue match" in str(report)


class TestActivityFilters:
    def test_user_floor_enforced(self, tiny_merged):
        distinct: dict[str, set] = {}
        for user, book in zip(
            tiny_merged.readings["user_id"], tiny_merged.readings["book_id"]
        ):
            distinct.setdefault(str(user), set()).add(int(book))
        # Floors are computed on pre-filter counts and applied once (as in
        # the paper), so post-filter counts can dip slightly below the
        # floor; they must never collapse.
        assert min(len(books) for books in distinct.values()) >= 5

    def test_iterated_filter_reaches_fixpoint(self, tiny_sources):
        config = MergeConfig(
            min_user_readings=10, min_book_readings=5,
            iterate_activity_filter=True,
        )
        merged, _ = build_merged_dataset(
            tiny_sources.bct, tiny_sources.anobii, config
        )
        distinct: dict[str, set] = {}
        events: Counter = Counter()
        for user, book in zip(
            merged.readings["user_id"], merged.readings["book_id"]
        ):
            distinct.setdefault(str(user), set()).add(int(book))
            events[int(book)] += 1
        assert min(len(books) for books in distinct.values()) >= 10
        assert min(events.values()) >= 5

    def test_stricter_book_floor_keeps_fewer_books(self, tiny_sources):
        loose, _ = build_merged_dataset(
            tiny_sources.bct, tiny_sources.anobii,
            MergeConfig(min_user_readings=10, min_book_readings=5),
        )
        strict, _ = build_merged_dataset(
            tiny_sources.bct, tiny_sources.anobii,
            MergeConfig(min_user_readings=10, min_book_readings=25),
        )
        assert strict.n_books < loose.n_books


class TestReadingsUnion:
    def test_sources_present(self, tiny_merged):
        sources = set(tiny_merged.readings["source"].tolist())
        assert sources == {"bct", "anobii"}

    def test_bct_readings_come_from_loans(self, tiny_sources, tiny_merged):
        mask = tiny_merged.readings["source"] == "bct"
        bct_users = set(tiny_merged.readings["user_id"][mask].tolist())
        assert all(u.startswith("bct_") for u in bct_users)

    def test_negative_ratings_excluded(self, tiny_sources, tiny_merged):
        """Books only read through <3-star ratings contribute no readings."""
        anobii = tiny_sources.anobii
        positive = anobii.ratings.filter(anobii.ratings["rating"] >= 3)
        positive_pairs = set(
            zip(positive["user_id"].tolist(), positive["item_id"].tolist())
        )
        mask = tiny_merged.readings["source"] == "anobii"
        for user, book in list(
            zip(
                tiny_merged.readings["user_id"][mask],
                tiny_merged.readings["book_id"][mask],
            )
        )[:200]:
            item = int(book) - BCT_ID_BASE + ANOBII_ID_BASE
            assert (str(user), item) in positive_pairs

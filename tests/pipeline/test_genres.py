"""Tests for the genre cleaning and aggregation pipeline."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.pipeline.genres import (
    GenreModel,
    aggregate_genres,
    build_genre_model,
    drop_extreme_genres,
    entropy,
    normalized_entropy,
    top_genres,
)


class TestEntropy:
    def test_uniform_distribution(self):
        counts = {"a": 10, "b": 10, "c": 10, "d": 10}
        assert entropy(counts) == pytest.approx(math.log(4))

    def test_degenerate_distribution(self):
        assert entropy({"a": 100}) == 0.0

    def test_empty(self):
        assert entropy({}) == 0.0

    def test_zero_counts_ignored(self):
        assert entropy({"a": 5, "b": 0}) == 0.0

    def test_normalized_uniform_is_one(self):
        assert normalized_entropy({"a": 3, "b": 3}) == pytest.approx(1.0)

    def test_normalized_single_category(self):
        assert normalized_entropy({"a": 3}) == 0.0


class TestDropExtremeGenres:
    def test_drops_ubiquitous(self):
        votes = {i: {"Everywhere": 1, "Niche": 1} for i in range(10)}
        votes[0] = {"Everywhere": 1}
        cleaned, dropped = drop_extreme_genres(
            votes, max_book_share=0.8, min_books=1
        )
        assert "Everywhere" in dropped
        assert all("Everywhere" not in v for v in cleaned.values())

    def test_drops_rare(self):
        votes = {i: {"Common": 1} for i in range(10)}
        votes[0]["OneOff"] = 1
        cleaned, dropped = drop_extreme_genres(
            votes, max_book_share=1.0, min_books=3
        )
        assert dropped == ("OneOff",)

    def test_invalid_share(self):
        with pytest.raises(PipelineError):
            drop_extreme_genres({}, max_book_share=0.0)

    def test_books_preserved(self):
        votes = {1: {"A": 1}, 2: {"A": 2, "B": 1}}
        cleaned, _ = drop_extreme_genres(votes, max_book_share=1.0, min_books=1)
        assert set(cleaned) == {1, 2}


class TestAggregateGenres:
    def test_perfect_duplicates_merge(self):
        # Two labels always voted together on the same books.
        votes = {i: {"Comics": 5, "Manga": 4} for i in range(20)}
        votes.update({100 + i: {"Poetry": 3} for i in range(20)})
        canonical, trace = aggregate_genres(votes)
        assert canonical["Manga"] == canonical["Comics"]
        assert canonical["Poetry"] == "Poetry"
        assert len(trace) == 1

    def test_disjoint_labels_never_merge(self):
        votes = {i: {"A": 1} for i in range(10)}
        votes.update({100 + i: {"B": 1} for i in range(10)})
        canonical, trace = aggregate_genres(votes)
        assert canonical["A"] != canonical["B"]
        assert trace == ()

    def test_low_affinity_not_merged(self):
        votes = {}
        for i in range(20):
            votes[i] = {"A": 1}
        for i in range(20, 40):
            votes[i] = {"B": 1}
        votes[50] = {"A": 1, "B": 1}  # a single co-occurrence
        canonical, _ = aggregate_genres(votes, min_affinity=0.5)
        assert canonical["A"] != canonical["B"]

    def test_transitive_merge(self):
        # A~B and B~C co-occur; all three should collapse to one label.
        votes = {}
        for i in range(20):
            votes[i] = {"A": 2, "B": 2, "C": 2}
        canonical, _ = aggregate_genres(votes)
        assert len({canonical["A"], canonical["B"], canonical["C"]}) == 1

    def test_keeps_more_frequent_label(self):
        votes = {i: {"Big": 3, "Small": 2} for i in range(10)}
        for i in range(10, 15):
            votes[i] = {"Big": 1}
        canonical, _ = aggregate_genres(votes)
        assert canonical["Small"] == "Big"


class TestTopGenres:
    def test_probabilities_sum_to_one(self):
        votes = {1: {"A": 6, "B": 3, "C": 1}}
        result = top_genres(votes, {"A": "A", "B": "B", "C": "C"})
        assert sum(p for _, p in result[1]) == pytest.approx(1.0)

    def test_top_k_limit(self):
        votes = {1: {g: 10 - i for i, g in enumerate("ABCDEFG")}}
        mapping = {g: g for g in "ABCDEFG"}
        result = top_genres(votes, mapping, top_k=4)
        assert len(result[1]) == 4
        assert result[1][0][0] == "A"  # highest votes first

    def test_votes_merge_through_mapping(self):
        votes = {1: {"Comics": 3, "Manga": 3, "Poetry": 2}}
        mapping = {"Comics": "Comics", "Manga": "Comics", "Poetry": "Poetry"}
        result = top_genres(votes, mapping)
        probs = dict(result[1])
        assert probs["Comics"] == pytest.approx(6 / 8)

    def test_books_without_kept_genres_omitted(self):
        votes = {1: {"Dropped": 5}}
        assert top_genres(votes, {}) == {}

    def test_invalid_top_k(self):
        with pytest.raises(PipelineError):
            top_genres({}, {}, top_k=0)


class TestBuildGenreModel:
    def test_end_to_end_on_tiny_world(self, tiny_sources):
        model = build_genre_model(
            tiny_sources.anobii.filter_italian_books().items
        )
        # Ubiquitous labels must be gone.
        assert set(model.dropped_genres) >= {
            "Fiction And Literature", "Self Help",
        }
        # Aggregation should land near the 12 latent coarse genres.
        assert 6 <= len(model.canonical_genres) <= 20
        for genres in model.book_genres.values():
            assert 1 <= len(genres) <= 4
            assert sum(p for _, p in genres) == pytest.approx(1.0)

    def test_sibling_subgenres_collapse(self, tiny_sources):
        model = build_genre_model(
            tiny_sources.anobii.filter_italian_books().items
        )
        canonical = model.canonical_of
        if "Comics" in canonical and "Graphic Novels" in canonical:
            assert canonical["Comics"] == canonical["Graphic Novels"]

    def test_to_table_schema(self, tiny_sources):
        model = build_genre_model(
            tiny_sources.anobii.filter_italian_books().items
        )
        table = model.to_table()
        assert table.column_names == ("book_id", "genre", "probability")
        assert table.num_rows >= len(model.book_genres)


@settings(deadline=None, max_examples=40)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=30),
        st.dictionaries(
            st.sampled_from(["A", "B", "C", "D", "E"]),
            st.integers(min_value=1, max_value=9),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=25,
    )
)
def test_top_genres_always_normalised(votes):
    """Property: any vote structure yields per-book distributions."""
    mapping = {g: g for g in "ABCDE"}
    result = top_genres(votes, mapping)
    for book, genres in result.items():
        assert sum(p for _, p in genres) == pytest.approx(1.0)
        probabilities = [p for _, p in genres]
        assert probabilities == sorted(probabilities, reverse=True)

"""Streaming merge == in-memory merge, bit for bit.

The out-of-core path (:func:`repro.pipeline.streaming.merge_sharded_corpus`)
promises the *same* merged dataset and the *same* :class:`MergeReport` as
``build_merged_dataset`` over the materialised corpus — the only allowed
difference is peak memory. These tests pin that promise on a small sharded
corpus, at ``n_jobs`` 1 and 2, across config variants, and through the
npz round-trip of the out-of-core output mode; the RSS regression at the
bottom caps the streaming path's memory appetite against the shard size.
"""

import numpy as np
import pytest

from repro.datasets.corpus import CorpusConfig, ShardedCorpusWriter
from repro.obs.metrics import MetricsRegistry
from repro.perf.rss import measure_phase_rss, reset_peak_rss
from repro.pipeline.merge import MergeConfig, build_merged_dataset
from repro.pipeline.streaming import load_merged_corpus, merge_sharded_corpus

from tests.parallel.test_equivalence import _strip_timing_series

CORPUS = CorpusConfig(
    n_books=220,
    n_authors=90,
    n_bct_users=60,
    n_anobii_users=150,
    n_loans=4000,
    n_ratings=3500,
    n_shards=3,
    rows_per_chunk=512,
    seed=424243,
)

MERGE = MergeConfig(min_user_readings=5, min_book_readings=8)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("sharded-corpus")
    return ShardedCorpusWriter(root / "corpus", CORPUS).write()


@pytest.fixture(scope="module")
def reference(corpus):
    bct, anobii = corpus.materialise()
    return build_merged_dataset(bct, anobii, MERGE)


def _assert_tables_identical(actual, expected):
    assert actual.column_names == expected.column_names
    assert actual.num_rows == expected.num_rows
    for name in expected.column_names:
        assert np.array_equal(actual[name], expected[name]), name


def _assert_datasets_identical(actual, expected):
    _assert_tables_identical(actual.books, expected.books)
    _assert_tables_identical(actual.readings, expected.readings)
    _assert_tables_identical(actual.genres, expected.genres)


class TestStreamingEquivalence:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_dataset_and_report_identical(self, corpus, reference, n_jobs):
        expected_merged, expected_report = reference
        result = merge_sharded_corpus(
            corpus, MERGE, n_jobs=n_jobs, backend="thread"
        )
        assert result.dataset is not None
        _assert_datasets_identical(result.dataset, expected_merged)
        assert result.report == expected_report
        assert str(result.report) == str(expected_report)

    def test_metrics_identical_up_to_timing(self, corpus):
        bct, anobii = corpus.materialise()
        in_memory = MetricsRegistry()
        build_merged_dataset(bct, anobii, MERGE, metrics=in_memory)
        streaming = MetricsRegistry()
        merge_sharded_corpus(corpus, MERGE, metrics=streaming)
        assert _strip_timing_series(streaming.snapshot()) == _strip_timing_series(
            in_memory.snapshot()
        )

    @pytest.mark.parametrize(
        "variant",
        [
            MergeConfig(min_user_readings=5, min_book_readings=8,
                        iterate_activity_filter=True),
            MergeConfig(min_user_readings=5, min_book_readings=8,
                        min_loan_days=7),
            MergeConfig(min_user_readings=2, min_book_readings=2,
                        min_rating=4),
        ],
    )
    def test_config_variants_identical(self, corpus, variant):
        bct, anobii = corpus.materialise()
        expected_merged, expected_report = build_merged_dataset(
            bct, anobii, variant
        )
        result = merge_sharded_corpus(corpus, variant)
        _assert_datasets_identical(result.dataset, expected_merged)
        assert result.report == expected_report


class TestOutOfCoreOutput:
    def test_roundtrip_matches_reference(self, corpus, reference, tmp_path):
        expected_merged, expected_report = reference
        result = merge_sharded_corpus(
            corpus, MERGE, materialise=False, output_dir=tmp_path / "merged"
        )
        assert result.dataset is None
        assert result.report == expected_report
        loaded = load_merged_corpus(tmp_path / "merged")
        _assert_datasets_identical(loaded, expected_merged)

    def test_output_is_manifested(self, corpus, tmp_path):
        from repro.resilience.artefacts import verify_manifest

        merge_sharded_corpus(
            corpus, MERGE, materialise=False, output_dir=tmp_path / "merged"
        )
        manifest = verify_manifest(tmp_path / "merged")
        assert manifest["merged"]["readings"] > 0


class TestStreamingRss:
    def test_merge_rss_bounded_by_shard_size(self, tmp_path):
        """Streaming a 1M-row merge costs < 4x the largest single shard.

        The regression this pins: the streaming path must never quietly
        materialise the corpus (the old ``from_pairs``/``Counter`` paths
        were O(events) in Python objects). Peak attribution needs the
        resettable ``VmHWM`` source — skip where the kernel refuses.
        """
        if not reset_peak_rss():
            pytest.skip("per-phase VmHWM reset unsupported on this kernel")
        config = CorpusConfig(
            n_books=800,
            n_authors=250,
            n_bct_users=2000,
            n_anobii_users=8000,
            n_loans=600_000,
            n_ratings=400_000,
            n_shards=2,
            seed=77,
        )
        corpus = ShardedCorpusWriter(tmp_path / "corpus", config).write()
        largest = corpus.largest_shard_bytes()
        assert largest > 1_000_000  # the budget unit is a real shard
        _, rss = measure_phase_rss(
            lambda: merge_sharded_corpus(
                corpus,
                MergeConfig(),
                materialise=False,
                output_dir=tmp_path / "merged",
            )
        )
        assert rss.source == "vmhwm"
        assert rss.delta_bytes < 4 * largest, (
            f"streaming merge peak delta {rss.delta_bytes / 1e6:.1f} MB "
            f"exceeds 4x largest shard ({largest / 1e6:.1f} MB)"
        )

"""Tests for dataset characterisation statistics (Figs 1-2 inputs)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline import stats


class TestECDF:
    def test_monotone_and_bounded(self):
        values, probs = stats.ecdf(np.asarray([3, 1, 2, 2]))
        assert list(values) == [1, 2, 2, 3]
        assert probs[-1] == 1.0
        assert (np.diff(probs) >= 0).all()

    def test_empty(self):
        values, probs = stats.ecdf(np.asarray([]))
        assert len(values) == 0 and len(probs) == 0

    @settings(deadline=None, max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1))
    def test_property_last_prob_is_one(self, values):
        _, probs = stats.ecdf(np.asarray(values))
        assert probs[-1] == pytest.approx(1.0)
        assert probs[0] == pytest.approx(1 / len(values))


class TestReadingCounts:
    def test_per_user_counts_sum(self, tiny_merged):
        counts = stats.readings_per_user_counts(tiny_merged)
        assert counts.sum() == tiny_merged.n_readings

    def test_per_book_counts_sum(self, tiny_merged):
        counts = stats.readings_per_book_counts(tiny_merged)
        assert counts.sum() == tiny_merged.n_readings

    def test_cdfs_structure(self, tiny_merged):
        cdfs = stats.readings_cdfs(tiny_merged)
        assert set(cdfs) == {"per_user", "per_book"}
        for values, probs in cdfs.values():
            assert len(values) == len(probs)


class TestGenreShares:
    def test_shares_sum_to_one(self, tiny_merged):
        shares = stats.genre_reading_shares(tiny_merged)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_comics_family_dominates(self, tiny_merged):
        """The world is calibrated so the Comics family leads (Fig. 2)."""
        shares = stats.genre_reading_shares(tiny_merged)
        labelled = {g: s for g, s in shares.items() if g != "(unlabelled)"}
        top_genre = max(labelled, key=labelled.get)
        assert labelled[top_genre] > 0.25


class TestDominance:
    def test_within_bounds(self, tiny_merged):
        dominance = stats.two_genre_dominance_share(tiny_merged)
        assert 0.0 <= dominance <= 1.0

    def test_majority_of_users_dominated(self, tiny_merged):
        """The world gives every user two dominant genres (paper: 99 %)."""
        assert stats.two_genre_dominance_share(tiny_merged) > 0.5

    def test_factor_one_is_easier(self, tiny_merged):
        loose = stats.two_genre_dominance_share(tiny_merged, factor=1.0)
        strict = stats.two_genre_dominance_share(tiny_merged, factor=10.0)
        assert loose >= strict


class TestSummary:
    def test_headline_fields(self, tiny_merged):
        summary = stats.summary(tiny_merged)
        assert summary["n_books"] == tiny_merged.n_books
        assert summary["n_users"] == tiny_merged.n_users
        assert summary["median_readings_per_user"] >= 1
        assert summary["max_readings_per_book"] >= summary["median_readings_per_book"]

"""Execute the runnable examples embedded in module docstrings."""

import doctest

import repro.tables
import repro.tables.ops


def test_tables_docstring_examples():
    results = doctest.testmod(repro.tables, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_ops_docstring_examples():
    results = doctest.testmod(repro.tables.ops, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0

"""Tests for cosine-similarity kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.text.similarity import (
    average_similarity_to_history,
    cosine_similarity_matrix,
    truncated_similarity_matrix,
)


class TestCosineMatrix:
    def test_self_similarity_diagonal_one(self):
        matrix = np.asarray([[1.0, 0.0], [3.0, 4.0]])
        sim = cosine_similarity_matrix(matrix)
        assert np.allclose(np.diag(sim), 1.0)

    def test_orthogonal_rows(self):
        matrix = np.asarray([[1.0, 0.0], [0.0, 2.0]])
        sim = cosine_similarity_matrix(matrix)
        assert sim[0, 1] == pytest.approx(0.0)

    def test_scale_invariance(self):
        left = np.asarray([[1.0, 2.0]])
        right = np.asarray([[10.0, 20.0]])
        assert cosine_similarity_matrix(left, right)[0, 0] == pytest.approx(1.0)

    def test_zero_rows_give_zero(self):
        matrix = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        sim = cosine_similarity_matrix(matrix)
        assert sim[0, 1] == 0.0
        assert not np.isnan(sim).any()

    def test_rectangular(self):
        left = np.ones((3, 4))
        right = np.ones((2, 4))
        assert cosine_similarity_matrix(left, right).shape == (3, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            cosine_similarity_matrix(np.ones((2, 3)), np.ones((2, 4)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ConfigurationError):
            cosine_similarity_matrix(np.ones(3))

    @settings(deadline=None, max_examples=40)
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(1, 5)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_property_values_bounded(self, matrix):
        sim = cosine_similarity_matrix(matrix)
        assert (sim <= 1.0).all()
        assert (sim >= -1.0).all()
        assert np.allclose(sim, sim.T)


class TestBlockwiseCosine:
    @settings(deadline=None, max_examples=40)
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 12), st.integers(1, 5)),
            elements=st.floats(-5, 5, allow_nan=False),
        ),
        st.integers(1, 15),
    )
    def test_property_blockwise_matches_whole(self, matrix, block_size):
        whole = cosine_similarity_matrix(matrix)
        blocked = cosine_similarity_matrix(matrix, block_size=block_size)
        assert np.allclose(whole, blocked)

    def test_float32_output(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(6, 4))
        sim = cosine_similarity_matrix(matrix, dtype=np.float32)
        assert sim.dtype == np.float32
        assert np.allclose(sim, cosine_similarity_matrix(matrix), atol=1e-6)

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError, match="block_size"):
            cosine_similarity_matrix(np.ones((2, 2)), block_size=0)

    def test_invalid_dtype(self):
        with pytest.raises(ConfigurationError, match="dtype"):
            cosine_similarity_matrix(np.ones((2, 2)), dtype=np.int32)


class TestTruncatedSimilarity:
    def _embeddings(self, n=20, dim=6, seed=3):
        return np.random.default_rng(seed).normal(size=(n, dim))

    def test_keeps_top_n_per_row(self):
        embeddings = self._embeddings()
        top_n = 4
        truncated = truncated_similarity_matrix(embeddings, top_n)
        dense = cosine_similarity_matrix(embeddings)
        np.fill_diagonal(dense, 0.0)
        row_counts = np.diff(truncated.indptr)
        assert (row_counts <= top_n).all()
        for row in range(len(embeddings)):
            kept = truncated.getrow(row).toarray().ravel()
            expected_floor = np.sort(dense[row])[-top_n]
            # Every kept value is among the row's top-N dense values.
            assert (kept[kept != 0] >= expected_floor - 1e-12).all()
            assert np.allclose(kept[kept != 0], dense[row][kept != 0])

    def test_diagonal_removed_by_default(self):
        truncated = truncated_similarity_matrix(self._embeddings(), 5)
        assert truncated.diagonal().max() == pytest.approx(0.0)

    def test_diagonal_kept_when_requested(self):
        truncated = truncated_similarity_matrix(
            self._embeddings(), 5, zero_diagonal=False
        )
        assert truncated.diagonal().max() == pytest.approx(1.0)

    def test_blockwise_matches_whole(self):
        embeddings = self._embeddings(n=23)
        whole = truncated_similarity_matrix(embeddings, 6)
        blocked = truncated_similarity_matrix(embeddings, 6, block_size=5)
        assert np.allclose(whole.toarray(), blocked.toarray())

    def test_top_n_larger_than_catalogue(self):
        # Non-negative embeddings keep every off-diagonal similarity above
        # the zeroed diagonal, so nothing is truncated.
        embeddings = np.abs(self._embeddings(n=4))
        truncated = truncated_similarity_matrix(embeddings, 100)
        dense = cosine_similarity_matrix(embeddings)
        np.fill_diagonal(dense, 0.0)
        assert np.allclose(truncated.toarray(), dense)

    def test_invalid_top_n(self):
        with pytest.raises(ConfigurationError, match="top_n"):
            truncated_similarity_matrix(np.ones((2, 2)), 0)


class TestAverageSimilarity:
    def test_matches_equation_one(self):
        sim = np.asarray(
            [[1.0, 0.2, 0.8], [0.2, 1.0, 0.4], [0.8, 0.4, 1.0]]
        )
        history = np.asarray([1, 2])
        scores = average_similarity_to_history(sim, history)
        assert scores[0] == pytest.approx((0.2 + 0.8) / 2)

    def test_empty_history_is_zero(self):
        sim = np.eye(3)
        scores = average_similarity_to_history(sim, np.asarray([], dtype=int))
        assert (scores == 0).all()

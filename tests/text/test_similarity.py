"""Tests for cosine-similarity kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.text.similarity import (
    average_similarity_to_history,
    cosine_similarity_matrix,
)


class TestCosineMatrix:
    def test_self_similarity_diagonal_one(self):
        matrix = np.asarray([[1.0, 0.0], [3.0, 4.0]])
        sim = cosine_similarity_matrix(matrix)
        assert np.allclose(np.diag(sim), 1.0)

    def test_orthogonal_rows(self):
        matrix = np.asarray([[1.0, 0.0], [0.0, 2.0]])
        sim = cosine_similarity_matrix(matrix)
        assert sim[0, 1] == pytest.approx(0.0)

    def test_scale_invariance(self):
        left = np.asarray([[1.0, 2.0]])
        right = np.asarray([[10.0, 20.0]])
        assert cosine_similarity_matrix(left, right)[0, 0] == pytest.approx(1.0)

    def test_zero_rows_give_zero(self):
        matrix = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        sim = cosine_similarity_matrix(matrix)
        assert sim[0, 1] == 0.0
        assert not np.isnan(sim).any()

    def test_rectangular(self):
        left = np.ones((3, 4))
        right = np.ones((2, 4))
        assert cosine_similarity_matrix(left, right).shape == (3, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            cosine_similarity_matrix(np.ones((2, 3)), np.ones((2, 4)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ConfigurationError):
            cosine_similarity_matrix(np.ones(3))

    @settings(deadline=None, max_examples=40)
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(1, 5)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_property_values_bounded(self, matrix):
        sim = cosine_similarity_matrix(matrix)
        assert (sim <= 1.0).all()
        assert (sim >= -1.0).all()
        assert np.allclose(sim, sim.T)


class TestAverageSimilarity:
    def test_matches_equation_one(self):
        sim = np.asarray(
            [[1.0, 0.2, 0.8], [0.2, 1.0, 0.4], [0.8, 0.4, 1.0]]
        )
        history = np.asarray([1, 2])
        scores = average_similarity_to_history(sim, history)
        assert scores[0] == pytest.approx((0.2 + 0.8) / 2)

    def test_empty_history_is_zero(self):
        sim = np.eye(3)
        scores = average_similarity_to_history(sim, np.asarray([], dtype=int))
        assert (scores == 0).all()

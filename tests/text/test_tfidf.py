"""Tests for bucket-level TF-IDF."""

import math

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.text.tfidf import TfidfModel


def docs(*sparse):
    return [dict(d) for d in sparse]


class TestFit:
    def test_idf_formula(self):
        model = TfidfModel(dim=4).fit(docs({0: 1.0}, {0: 1.0}, {1: 1.0}))
        # bucket 0: df=2, n=3 -> ln(4/3)+1 ; bucket 1: df=1 -> ln(4/2)+1
        assert model._idf[0] == pytest.approx(math.log(4 / 3) + 1)
        assert model._idf[1] == pytest.approx(math.log(4 / 2) + 1)

    def test_unseen_bucket_gets_max_idf(self):
        model = TfidfModel(dim=4).fit(docs({0: 1.0}))
        assert model._idf[3] == pytest.approx(math.log(2 / 1) + 1)
        assert model._idf[3] > model._idf[0]

    def test_zero_values_not_counted_in_df(self):
        model = TfidfModel(dim=2).fit(docs({0: 0.0}))
        assert model._idf[0] == model._idf[1]

    def test_is_fitted_flag(self):
        model = TfidfModel(dim=2)
        assert not model.is_fitted
        model.fit([])
        assert model.is_fitted


class TestTransform:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            TfidfModel(dim=2).transform({0: 1.0})

    def test_output_unit_norm(self):
        model = TfidfModel(dim=8).fit(docs({0: 2.0, 1: 1.0}))
        vector = model.transform({0: 2.0, 1: 1.0})
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_document_is_zero_vector(self):
        model = TfidfModel(dim=8).fit(docs({0: 1.0}))
        assert np.linalg.norm(model.transform({})) == 0.0

    def test_sign_preserved(self):
        model = TfidfModel(dim=8, sublinear_tf=False).fit(docs({0: 1.0}))
        vector = model.transform({0: -3.0, 1: 2.0})
        assert vector[0] < 0 < vector[1]

    def test_sublinear_dampens_repeats(self):
        flat = TfidfModel(dim=8, sublinear_tf=False).fit(docs({0: 1.0, 1: 1.0}))
        sub = TfidfModel(dim=8, sublinear_tf=True).fit(docs({0: 1.0, 1: 1.0}))
        # One bucket repeated 100x vs another seen once.
        doc = {0: 100.0, 1: 1.0}
        ratio_flat = abs(flat.transform(doc)[0] / flat.transform(doc)[1])
        ratio_sub = abs(sub.transform(doc)[0] / sub.transform(doc)[1])
        assert ratio_sub < ratio_flat

    def test_transform_many_shape(self):
        model = TfidfModel(dim=8).fit(docs({0: 1.0}))
        matrix = model.transform_many(docs({0: 1.0}, {1: 2.0}, {}))
        assert matrix.shape == (3, 8)

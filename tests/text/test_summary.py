"""Tests for metadata-summary construction."""

import pytest

from repro.errors import ConfigurationError
from repro.text.summary import (
    METADATA_FIELDS,
    MetadataSummaryBuilder,
    field_combinations,
    render_genres,
)


class TestFieldCombinations:
    def test_all_31_combinations(self):
        assert len(field_combinations()) == 31

    def test_smallest_first(self):
        combos = field_combinations()
        assert combos[0] == ("title",)
        assert combos[-1] == METADATA_FIELDS

    def test_min_size(self):
        pairs_up = field_combinations(min_size=2)
        assert all(len(c) >= 2 for c in pairs_up)
        assert len(pairs_up) == 31 - 5

    def test_invalid_min_size(self):
        with pytest.raises(ConfigurationError):
            field_combinations(min_size=0)


class TestRenderGenres:
    def test_repeats_proportional_to_probability(self):
        rendered = render_genres({"Comics": 0.75, "Poetry": 0.25})
        tokens = rendered.split()
        assert tokens.count("Comics") == 3
        assert tokens.count("Poetry") == 1

    def test_minimum_one_repeat(self):
        rendered = render_genres({"Comics": 0.95, "Poetry": 0.05})
        assert "Poetry" in rendered

    def test_deterministic_order(self):
        assert render_genres({"B": 0.5, "A": 0.5}) == render_genres(
            {"A": 0.5, "B": 0.5}
        )

    def test_empty(self):
        assert render_genres({}) == ""


class TestBuilder:
    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown metadata"):
            MetadataSummaryBuilder(("isbn",))

    def test_empty_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            MetadataSummaryBuilder(())

    def test_build_one_selects_fields(self):
        builder = MetadataSummaryBuilder(("author", "title"))
        summary = builder.build_one(
            title="Il Nome", author="Eco", plot="secret plot"
        )
        assert "Eco" in summary and "Il Nome" in summary
        assert "secret" not in summary

    def test_build_one_genres_only(self):
        builder = MetadataSummaryBuilder(("genres",))
        summary = builder.build_one(genres={"Comics": 1.0})
        assert summary == "Comics Comics Comics Comics"

    def test_build_all_covers_catalogue(self, tiny_merged):
        builder = MetadataSummaryBuilder(("author", "genres"))
        summaries = builder.build_all(tiny_merged)
        assert set(summaries) == set(
            int(b) for b in tiny_merged.books["book_id"]
        )
        assert all(isinstance(s, str) for s in summaries.values())

    def test_title_summaries_differ_from_author_summaries(self, tiny_merged):
        titles = MetadataSummaryBuilder(("title",)).build_all(tiny_merged)
        authors = MetadataSummaryBuilder(("author",)).build_all(tiny_merged)
        book = next(iter(titles))
        assert titles[book] != authors[book]

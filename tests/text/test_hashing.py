"""Tests for signed feature hashing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.text.hashing import hash_feature, hashed_counts, hashed_vector


class TestHashFeature:
    def test_deterministic(self):
        assert hash_feature("w=eco", 512) == hash_feature("w=eco", 512)

    def test_bucket_in_range(self):
        bucket, sign = hash_feature("anything", 64)
        assert 0 <= bucket < 64
        assert sign in (1.0, -1.0)

    def test_dim_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            hash_feature("x", 0)

    @settings(deadline=None, max_examples=100)
    @given(st.text(min_size=0, max_size=20), st.integers(min_value=1, max_value=4096))
    def test_property_bucket_bounds(self, feature, dim):
        bucket, sign = hash_feature(feature, dim)
        assert 0 <= bucket < dim
        assert abs(sign) == 1.0

    def test_signs_roughly_balanced(self):
        signs = [hash_feature(f"tok{i}", 512)[1] for i in range(2000)]
        positive = sum(1 for s in signs if s > 0)
        assert 800 < positive < 1200


class TestHashedVector:
    def test_accumulates_counts(self):
        vector = hashed_vector(["a", "a", "a"], 32)
        assert np.abs(vector).sum() == 3.0

    def test_empty_features(self):
        assert hashed_vector([], 8).sum() == 0.0

    def test_sparse_matches_dense(self):
        features = ["x", "y", "x", "z"]
        dense = hashed_vector(features, 64)
        sparse = hashed_counts(features, 64)
        rebuilt = np.zeros(64)
        for bucket, value in sparse.items():
            rebuilt[bucket] = value
        # Collisions may stack features in one bucket; both paths must agree.
        assert np.allclose(dense, rebuilt)

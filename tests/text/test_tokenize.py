"""Tests for text normalisation and tokenisation."""

import pytest

from repro.errors import ConfigurationError
from repro.text.tokenize import (
    TokenizerConfig,
    char_ngrams,
    normalize_text,
    tokenize,
    word_tokens,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize_text("Il Gattopardo") == "il gattopardo"

    def test_strips_accents(self):
        assert normalize_text("caffè è già") == "caffe e gia"

    def test_removes_punctuation(self):
        assert normalize_text("l'isola: misteriosa!") == "l isola misteriosa"

    def test_collapses_whitespace(self):
        assert normalize_text("  a \t b\nc ") == "a b c"

    def test_empty(self):
        assert normalize_text("") == ""


class TestWordTokens:
    def test_split(self):
        assert word_tokens("a bb ccc") == ["a", "bb", "ccc"]

    def test_empty(self):
        assert word_tokens("") == []


class TestCharNgrams:
    def test_boundary_markers(self):
        grams = char_ngrams("ab", 3, 3)
        assert grams == ["#ab", "ab#"]

    def test_range(self):
        grams = char_ngrams("abc", 3, 4)
        assert "#ab" in grams and "#abc" in grams

    def test_short_token_skipped_for_long_n(self):
        assert char_ngrams("a", 4, 4) == []


class TestTokenize:
    def test_word_and_char_families_prefixed(self):
        features = tokenize("Eco")
        assert "w=eco" in features
        assert any(f.startswith("c=") for f in features)

    def test_words_only_config(self):
        config = TokenizerConfig(use_char_ngrams=False)
        features = tokenize("due parole", config)
        assert features == ["w=due", "w=parole"]

    def test_same_text_same_features(self):
        assert tokenize("Umberto Eco") == tokenize("Umberto Eco")

    def test_config_requires_some_family(self):
        with pytest.raises(ConfigurationError):
            TokenizerConfig(use_words=False, use_char_ngrams=False)

    def test_config_validates_range(self):
        with pytest.raises(ConfigurationError):
            TokenizerConfig(char_ngram_min=5, char_ngram_max=3)

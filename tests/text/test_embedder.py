"""Tests for the SBERT-substitute sentence embedders."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.text.embedder import (
    HashedCountEmbedder,
    HashedTfidfEmbedder,
    SentenceEmbedder,
)

CORPUS = [
    "Umberto Eco Thriller Thriller Crime",
    "Umberto Eco Novels",
    "Dafne Ferrari Comics Comics",
    "Marco Rossi Fantasy drago regno",
    "Marco Rossi Fantasy spada profezia",
]


@pytest.fixture(scope="module")
def embedder():
    return HashedTfidfEmbedder(dim=256).fit(CORPUS)


class TestInterface:
    def test_protocol_conformance(self, embedder):
        assert isinstance(embedder, SentenceEmbedder)

    def test_encode_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            HashedTfidfEmbedder().encode(["x"])

    def test_shapes(self, embedder):
        matrix = embedder.encode(["a", "b", "c"])
        assert matrix.shape == (3, 256)

    def test_rows_unit_norm(self, embedder):
        matrix = embedder.encode(CORPUS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms, 1.0)

    def test_empty_text_is_zero(self, embedder):
        assert np.linalg.norm(embedder.encode([""])) == 0.0

    def test_deterministic(self, embedder):
        first = embedder.encode(["Umberto Eco"])
        second = embedder.encode(["Umberto Eco"])
        assert np.array_equal(first, second)


class TestGeometry:
    def test_identical_texts_cosine_one(self, embedder):
        pair = embedder.encode(["Eco Crime", "Eco Crime"])
        assert pair[0] @ pair[1] == pytest.approx(1.0)

    def test_shared_author_closer_than_unrelated(self, embedder):
        texts = embedder.encode(
            [
                "Umberto Eco Thriller",
                "Umberto Eco Novels",
                "Dafne Ferrari Comics",
            ]
        )
        same_author = texts[0] @ texts[1]
        different = texts[0] @ texts[2]
        assert same_author > different

    def test_shared_genre_vocabulary_closer(self, embedder):
        texts = embedder.encode(
            [
                "drago regno spada",
                "drago profezia regno",
                "vignetta tavola fumetto",
            ]
        )
        assert texts[0] @ texts[1] > texts[0] @ texts[2]

    def test_unseen_words_still_encodable(self, embedder):
        vector = embedder.encode(["parola mai vista prima"])
        assert np.linalg.norm(vector) == pytest.approx(1.0)


class TestCountEmbedder:
    def test_flat_idf(self):
        embedder = HashedCountEmbedder(dim=64).fit(CORPUS)
        assert np.allclose(embedder._tfidf._idf, 1.0)

    def test_encodes(self):
        embedder = HashedCountEmbedder(dim=64).fit(CORPUS)
        assert embedder.encode(["Eco"]).shape == (1, 64)

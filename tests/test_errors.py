"""Tests for the exception hierarchy."""

import pytest

from repro import ReproError
from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.SchemaError,
            errors.TableIOError,
            errors.DatasetError,
            errors.PipelineError,
            errors.NotFittedError,
            errors.ConfigurationError,
            errors.EvaluationError,
            errors.PersistenceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, ReproError)

    def test_column_not_found_is_schema_error(self):
        assert issubclass(errors.ColumnNotFoundError, errors.SchemaError)

    def test_unknown_user_is_evaluation_error(self):
        assert issubclass(errors.UnknownUserError, errors.EvaluationError)

    def test_unknown_model_is_configuration_error(self):
        assert issubclass(errors.UnknownModelError, errors.ConfigurationError)


class TestMessages:
    def test_column_not_found_lists_available(self):
        error = errors.ColumnNotFoundError("x", ("a", "b"))
        assert "x" in str(error) and "a, b" in str(error)
        assert error.column == "x"

    def test_not_fitted_names_model(self):
        error = errors.NotFittedError("BPR")
        assert "BPR" in str(error) and "fit()" in str(error)

    def test_unknown_user_carries_id(self):
        error = errors.UnknownUserError("u42")
        assert error.user_id == "u42"

    def test_unknown_model_lists_registry(self):
        error = errors.UnknownModelError("svd", ("bpr", "closest"))
        assert "bpr" in str(error)

    def test_catch_all_boundary(self):
        """Applications can catch ReproError at their boundary."""
        try:
            raise errors.PipelineError("boom")
        except ReproError as caught:
            assert "boom" in str(caught)

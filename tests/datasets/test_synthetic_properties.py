"""Property-based invariants of the sharded synthetic corpus.

Randomized (seed, n_rows, n_shards) draws pin the contracts the
out-of-core generator must hold at any scale:

- popularity stays Zipf-shaped (a thin head of books absorbs a
  disproportionate share of events);
- every event's foreign keys resolve into the catalogue and the user id
  space;
- loan/rating ids are globally unique and strictly increasing across the
  shard sequence;
- the corpus is *shard-count invariant*: ``n_shards=1`` and
  ``n_shards=k`` concatenate to row-identical streams (already in
  generation order, so a stable sort by primary key is a no-op).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.corpus import (
    CorpusConfig,
    ShardedCorpusWriter,
    build_corpus_model,
    chunk_bounds,
    generate_loan_shards,
    generate_rating_shards,
    shard_plan,
)
from repro.datasets.synthetic import ANOBII_ID_BASE, BCT_ID_BASE

# Each draw builds a corpus model (catalogue + distributions), so keep
# example counts small; the model is O(books), not O(events).
PROPERTY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

corpus_configs = st.builds(
    CorpusConfig,
    n_books=st.just(120),
    n_authors=st.just(40),
    n_bct_users=st.integers(min_value=20, max_value=60),
    n_anobii_users=st.integers(min_value=40, max_value=120),
    n_loans=st.integers(min_value=0, max_value=3000),
    n_ratings=st.integers(min_value=0, max_value=2500),
    n_shards=st.integers(min_value=1, max_value=6),
    rows_per_chunk=st.sampled_from([128, 257, 1024]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


def _concat_shards(shard_iter, columns):
    shards = list(shard_iter)
    if not shards:
        return {name: np.empty(0) for name in columns}
    return {
        name: np.concatenate([shard[name] for shard in shards])
        for name in columns
    }


@PROPERTY_SETTINGS
@given(config=corpus_configs)
def test_chunk_plan_partitions_rows(config):
    """Chunks tile [0, n_rows) exactly; shards are contiguous chunk runs."""
    for n_rows in (config.n_loans, config.n_ratings):
        bounds = chunk_bounds(n_rows, config.rows_per_chunk)
        assert sum(stop - start for start, stop in bounds) == n_rows
        cursor = 0
        for start, stop in bounds:
            assert start == cursor and stop > start
            cursor = stop
        plan = shard_plan(n_rows, config.rows_per_chunk, config.n_shards)
        assert [c for shard in plan for c in shard] == bounds


@PROPERTY_SETTINGS
@given(config=corpus_configs)
def test_event_foreign_keys_resolve(config):
    """Every generated event points at a real catalogue row and user slot."""
    model = build_corpus_model(config)
    bct_book_ids = set(model.books["book_id"].tolist())
    anobii_item_ids = set(model.items["item_id"].tolist())

    loans = _concat_shards(
        generate_loan_shards(model), ("loan_id", "user", "book_id", "duration")
    )
    assert set(np.unique(loans["book_id"]).tolist()) <= bct_book_ids
    if config.n_loans:
        assert loans["user"].min() >= 0
        assert loans["user"].max() < config.n_bct_users
        assert loans["duration"].min() >= 1

    ratings = _concat_shards(
        generate_rating_shards(model), ("rating_id", "user", "item_id", "rating")
    )
    assert set(np.unique(ratings["item_id"]).tolist()) <= anobii_item_ids
    if config.n_ratings:
        assert ratings["user"].min() >= 0
        assert ratings["user"].max() < config.n_anobii_users
        assert ratings["rating"].min() >= 1
        assert ratings["rating"].max() <= 5


@PROPERTY_SETTINGS
@given(config=corpus_configs)
def test_event_ids_unique_and_increasing_across_shards(config):
    """Primary keys never collide across shards: each stream is 0..n-1."""
    model = build_corpus_model(config)
    loan_ids = _concat_shards(generate_loan_shards(model), ("loan_id",))["loan_id"]
    rating_ids = _concat_shards(generate_rating_shards(model), ("rating_id",))[
        "rating_id"
    ]
    assert np.array_equal(loan_ids, np.arange(config.n_loans, dtype=np.int64))
    assert np.array_equal(
        rating_ids, np.arange(config.n_ratings, dtype=np.int64)
    )


@PROPERTY_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_shards=st.integers(min_value=2, max_value=7),
)
def test_shard_count_invariance(seed, n_shards):
    """n_shards=1 and n_shards=k produce row-identical corpora.

    Generation order *is* primary-key order (ids are assigned by global
    row position), so after a stable sort by id — a no-op permutation —
    the two corpora must match column-for-column.
    """
    config = CorpusConfig(
        n_books=120,
        n_authors=40,
        n_bct_users=40,
        n_anobii_users=80,
        n_loans=2200,
        n_ratings=1700,
        rows_per_chunk=256,
        seed=seed,
    )
    model = build_corpus_model(config)
    for generate, key in (
        (generate_loan_shards, "loan_id"),
        (generate_rating_shards, "rating_id"),
    ):
        single = list(generate(model, 1))
        sharded = list(generate(model, n_shards))
        assert len(single) == 1
        assert 1 <= len(sharded) <= n_shards
        for name in single[0]:
            flat = np.concatenate([shard[name] for shard in sharded])
            # Stable sort by primary key; ids are already in order, so
            # this must not move anything — assert that too.
            order = np.argsort(
                np.concatenate([shard[key] for shard in sharded]), kind="stable"
            )
            assert np.array_equal(order, np.arange(len(flat)))
            assert np.array_equal(single[0][name], flat)


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_popularity_is_zipf_shaped(seed):
    """The busiest decile of borrowed books absorbs >= 20% of all loans."""
    config = CorpusConfig(
        n_books=200,
        n_authors=60,
        n_bct_users=60,
        n_anobii_users=60,
        n_loans=6000,
        n_ratings=0,
        rows_per_chunk=1024,
        seed=seed,
    )
    model = build_corpus_model(config)
    loans = _concat_shards(generate_loan_shards(model), ("book_id",))
    counts = np.sort(np.bincount(loans["book_id"] - BCT_ID_BASE))[::-1]
    distinct = int((counts > 0).sum())
    head = max(distinct // 10, 1)
    head_share = counts[:head].sum() / counts.sum()
    assert head_share >= 0.2
    # And the head is genuinely heavier than a uniform split would be.
    assert head_share > head / distinct


def test_disk_roundtrip_is_deterministic(tmp_path):
    """Writing the same config twice yields byte-identical shard files."""
    config = CorpusConfig(
        n_books=100,
        n_authors=30,
        n_bct_users=30,
        n_anobii_users=60,
        n_loans=1500,
        n_ratings=1200,
        n_shards=3,
        rows_per_chunk=256,
    )
    first = ShardedCorpusWriter(tmp_path / "a", config).write()
    second = ShardedCorpusWriter(tmp_path / "b", config).write()
    paths = ["books.npz", "items.npz"] + [
        p.name for p in first.loan_shard_paths + first.rating_shard_paths
    ]
    for name in paths:
        assert (tmp_path / "a" / name).read_bytes() == (
            tmp_path / "b" / name
        ).read_bytes()
    assert first.verify()["corpus"] == second.verify()["corpus"]


def test_anobii_item_ids_use_their_own_id_space():
    """Loan and rating streams draw from disjoint external id ranges."""
    config = CorpusConfig(
        n_books=100,
        n_authors=30,
        n_bct_users=20,
        n_anobii_users=40,
        n_loans=500,
        n_ratings=500,
        rows_per_chunk=256,
    )
    model = build_corpus_model(config)
    loans = _concat_shards(generate_loan_shards(model), ("book_id",))
    ratings = _concat_shards(generate_rating_shards(model), ("item_id",))
    assert loans["book_id"].min() >= BCT_ID_BASE
    assert loans["book_id"].max() < ANOBII_ID_BASE
    assert ratings["item_id"].min() >= ANOBII_ID_BASE

"""Tests for the latent world model."""

import numpy as np
import pytest

from repro.datasets.world import (
    COARSE_GENRES,
    RAW_SUBGENRES,
    UBIQUITOUS_GENRES,
    LatentWorld,
    WorldConfig,
)
from repro.errors import ConfigurationError
from repro.rng import make_rng


SMALL = WorldConfig(
    n_books=150, n_authors=60, n_bct_users=40, n_anobii_users=120, seed=11
)


@pytest.fixture(scope="module")
def world():
    return LatentWorld(SMALL)


class TestConfigValidation:
    def test_too_few_books(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(n_books=3)

    def test_too_many_authors(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(n_authors=10**9)

    def test_bad_catalogue_shares(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(share_in_both=0.9, share_bct_only=0.5)

    def test_bad_activity_bounds(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(min_activity=10, max_activity=5)


class TestGenreStructure:
    def test_genre_shares_sum_to_one(self, world):
        assert world.genre_shares.sum() == pytest.approx(1.0)

    def test_41_raw_genres(self):
        raw = sum(len(subs) for subs in RAW_SUBGENRES.values())
        assert raw + len(UBIQUITOUS_GENRES) == 41

    def test_every_coarse_genre_has_subgenres_and_words(self):
        for name, _ in COARSE_GENRES:
            assert name in RAW_SUBGENRES
            assert len(RAW_SUBGENRES[name]) >= 2

    def test_genre_of(self, world):
        assert world.genre_of(0) in {name for name, _ in COARSE_GENRES}


class TestBooks:
    def test_sizes(self, world):
        assert world.n_books == SMALL.n_books
        assert len(world.book_titles) == SMALL.n_books
        assert len(world.book_plots) == SMALL.n_books

    def test_primary_genre_is_author_genre(self, world):
        assert (
            world.book_genre == world.author_genre[world.book_author]
        ).all()

    def test_secondary_genre_differs_from_primary(self, world):
        has_secondary = world.book_secondary >= 0
        assert (
            world.book_secondary[has_secondary]
            != world.book_genre[has_secondary]
        ).all()

    def test_popularity_positive(self, world):
        assert (world.book_popularity > 0).all()

    def test_catalogue_membership_partition(self, world):
        # Every book is in at least one source; overlap is the majority.
        in_any = world.book_in_bct | world.book_in_anobii
        assert in_any.all()
        both = (world.book_in_bct & world.book_in_anobii).mean()
        assert both > 0.5

    def test_communities_in_range(self, world):
        assert world.book_community.min() >= 0
        assert world.book_community.max() < SMALL.n_communities


class TestUsers:
    def test_user_counts(self, world):
        assert world.n_users == SMALL.n_bct_users + SMALL.n_anobii_users
        sources = {user.source for user in world.users}
        assert sources == {"bct", "anobii"}

    def test_user_ids_unique(self, world):
        ids = [user.user_id for user in world.users]
        assert len(set(ids)) == len(ids)

    def test_genre_probs_normalised(self, world):
        for user in world.users[:20]:
            assert user.genre_probs.sum() == pytest.approx(1.0)

    def test_activity_bounds(self, world):
        for user in world.users:
            assert SMALL.min_activity <= user.activity <= SMALL.max_activity

    def test_community_affinity_normalised(self, world):
        for user in world.users[:20]:
            assert user.community_affinity.sum() == pytest.approx(1.0)
            assert user.drift_affinity.sum() == pytest.approx(1.0)


class TestReadings:
    def test_readings_stay_in_source_catalogue(self, world):
        for user in world.users[:40]:
            membership = (
                world.book_in_bct if user.source == "bct" else world.book_in_anobii
            )
            for book, _ in user.readings:
                assert membership[book]

    def test_days_sorted(self, world):
        for user in world.users[:40]:
            days = [day for _, day in user.readings]
            assert days == sorted(days)

    def test_dislikes_only_for_anobii(self, world):
        for user in world.users:
            if user.source == "bct":
                assert user.dislikes == []

    def test_repeats_only_for_bct(self, world):
        """Anobii users rate a book once; BCT users may re-borrow."""
        for user in world.users:
            books = [book for book, _ in user.readings]
            if user.source == "anobii":
                assert len(books) == len(set(books))

    def test_some_bct_user_has_repeats(self, world):
        repeats = 0
        for user in world.users:
            if user.source == "bct":
                books = [book for book, _ in user.readings]
                repeats += len(books) - len(set(books))
        assert repeats > 0

    def test_total_readings_counts_events(self, world):
        assert world.total_readings() == sum(
            len(user.readings) for user in world.users
        )


class TestDeterminism:
    def test_same_seed_same_world(self):
        first = LatentWorld(SMALL)
        second = LatentWorld(SMALL)
        assert first.book_titles == second.book_titles
        assert (first.book_author == second.book_author).all()
        assert [u.readings for u in first.users[:10]] == [
            u.readings for u in second.users[:10]
        ]

    def test_different_seed_different_world(self):
        other = LatentWorld(
            WorldConfig(
                n_books=150, n_authors=60, n_bct_users=40,
                n_anobii_users=120, seed=12,
            )
        )
        base = LatentWorld(SMALL)
        assert base.book_titles != other.book_titles


class TestRawGenreVotes:
    def test_votes_cover_primary_subgenres(self, world):
        rng = make_rng(0)
        book = 0
        votes = world.raw_genre_votes(book, rng)
        primary_subs = set(RAW_SUBGENRES[world.genre_of(book)])
        assert primary_subs & set(votes)

    def test_votes_are_positive_ints(self, world):
        rng = make_rng(0)
        for book in range(10):
            for genre, count in world.raw_genre_votes(book, rng).items():
                assert isinstance(count, int) and count >= 1

"""Tests for repro.datasets.models (records, schemas, natural keys)."""

import json
from datetime import date

import pytest

from repro.datasets.models import (
    ANOBII_ITEMS_SCHEMA,
    ANOBII_RATINGS_SCHEMA,
    BCT_BOOKS_SCHEMA,
    BCT_LOANS_SCHEMA,
    AnobiiItemRecord,
    RatingRecord,
    match_key,
    parse_genre_votes,
)


class TestSchemas:
    def test_bct_books_columns(self):
        assert BCT_BOOKS_SCHEMA.names == (
            "book_id", "author", "title", "material", "language"
        )

    def test_bct_loans_has_date(self):
        assert BCT_LOANS_SCHEMA["loan_date"].dtype == "date"

    def test_anobii_items_metadata_fields(self):
        for field in ("plot", "keywords", "genre_votes"):
            assert field in ANOBII_ITEMS_SCHEMA

    def test_anobii_ratings_columns(self):
        assert ANOBII_RATINGS_SCHEMA["rating"].dtype == "int"


class TestRecords:
    def test_rating_bounds_enforced(self):
        with pytest.raises(ValueError, match="rating must be"):
            RatingRecord(
                rating_id=1, user_id="u", item_id=1, rating=6,
                rating_date=date(2020, 1, 1),
            )

    def test_rating_valid(self):
        record = RatingRecord(
            rating_id=1, user_id="u", item_id=1, rating=5,
            rating_date=date(2020, 1, 1),
        )
        assert record.rating == 5

    def test_item_genre_votes_json_sorted(self):
        item = AnobiiItemRecord(
            item_id=1, author="a", title="t",
            genre_votes={"Zeta": 1, "Alpha": 2},
        )
        assert item.genre_votes_json() == json.dumps(
            {"Alpha": 2, "Zeta": 1}, sort_keys=True
        )


class TestParseGenreVotes:
    def test_roundtrip(self):
        votes = {"Comics": 10, "Manga": 3}
        assert parse_genre_votes(json.dumps(votes)) == votes

    def test_empty_string(self):
        assert parse_genre_votes("") == {}

    def test_coerces_counts_to_int(self):
        assert parse_genre_votes('{"Comics": "7"}') == {"Comics": 7}


class TestMatchKey:
    def test_case_insensitive(self):
        assert match_key("Il Nome", "Eco") == match_key("il nome", "ECO")

    def test_whitespace_collapsed(self):
        assert match_key("il  nome ", "eco") == match_key("il nome", "eco")

    def test_punctuation_stripped(self):
        assert match_key("l'isola, misteriosa", "verne") == match_key(
            "lisola misteriosa", "verne"
        )

    def test_title_and_author_both_matter(self):
        assert match_key("a", "b") != match_key("a", "c")
        assert match_key("a", "b") != match_key("x", "b")

    def test_separator_prevents_bleeding(self):
        # (title="ab", author="c") must differ from (title="a", author="bc")
        assert match_key("ab", "c") != match_key("a", "bc")

"""Tests for the BCT/Anobii/Merged dataset containers and their filters."""

import numpy as np
import pytest

from repro.datasets.anobii import AnobiiDataset
from repro.datasets.bct import BCTDataset
from repro.datasets.merged import MergedDataset
from repro.datasets.models import (
    ANOBII_ITEMS_SCHEMA,
    ANOBII_RATINGS_SCHEMA,
    BCT_BOOKS_SCHEMA,
    BCT_LOANS_SCHEMA,
    BOOK_GENRES_SCHEMA,
    MERGED_BOOKS_SCHEMA,
    READINGS_SCHEMA,
)
from repro.errors import DatasetError
from repro.tables import Table


class TestBCTDataset:
    def test_wrong_schema_rejected(self, tiny_sources):
        with pytest.raises(DatasetError, match="schema"):
            BCTDataset(books=tiny_sources.bct.loans, loans=tiny_sources.bct.loans)

    def test_filter_keeps_only_italian_monographs(self, tiny_sources):
        filtered = tiny_sources.bct.filter_italian_monographs()
        assert set(filtered.books["material"].tolist()) <= {
            "monograph", "manuscript"
        }
        assert set(filtered.books["language"].tolist()) == {"ita"}
        assert filtered.n_books < tiny_sources.bct.n_books

    def test_filter_drops_orphaned_loans(self, tiny_sources):
        filtered = tiny_sources.bct.filter_italian_monographs()
        filtered.validate()

    def test_validate_catches_dangling_loans(self, tiny_sources):
        books = tiny_sources.bct.books.head(1)
        dataset = BCTDataset(books=books, loans=tiny_sources.bct.loans)
        with pytest.raises(DatasetError, match="unknown books"):
            dataset.validate()

    def test_validate_catches_duplicate_books(self, tiny_sources):
        books = tiny_sources.bct.books
        duplicated = books.take(np.asarray([0, 0]))
        dataset = BCTDataset(
            books=duplicated,
            loans=tiny_sources.bct.loans.head(0),
        )
        with pytest.raises(DatasetError, match="duplicate"):
            dataset.validate()

    def test_activity_tables(self, tiny_sources):
        per_user = tiny_sources.bct.loans_per_user()
        assert per_user["n_loans"].sum() == tiny_sources.bct.n_loans
        per_book = tiny_sources.bct.loans_per_book()
        assert per_book["n_loans"].sum() == tiny_sources.bct.n_loans


class TestAnobiiDataset:
    def test_filter_italian_books(self, tiny_sources):
        filtered = tiny_sources.anobii.filter_italian_books()
        assert filtered.items["is_book"].all()
        assert set(filtered.items["language"].tolist()) == {"ita"}

    def test_positive_feedback_threshold(self, tiny_sources):
        positive = tiny_sources.anobii.positive_feedback()
        assert positive.ratings["rating"].min() >= 3

    def test_positive_feedback_custom_threshold(self, tiny_sources):
        strict = tiny_sources.anobii.positive_feedback(threshold=5)
        assert set(strict.ratings["rating"].tolist()) <= {5}

    def test_validate_catches_out_of_range_rating(self, tiny_sources):
        ratings = tiny_sources.anobii.ratings.head(1).with_column(
            "rating", [7]
        )
        dataset = AnobiiDataset(items=tiny_sources.anobii.items, ratings=ratings)
        with pytest.raises(DatasetError, match="outside"):
            dataset.validate()

    def test_genre_votes_of_unknown_item(self, tiny_sources):
        with pytest.raises(DatasetError, match="unknown item"):
            tiny_sources.anobii.genre_votes_of(-1)

    def test_genre_votes_of_known_item(self, tiny_sources):
        item_id = int(tiny_sources.anobii.items["item_id"][0])
        votes = tiny_sources.anobii.genre_votes_of(item_id)
        assert isinstance(votes, dict)


class TestMergedDataset:
    def test_validates(self, tiny_merged):
        tiny_merged.validate()

    def test_sizes_consistent(self, tiny_merged):
        assert tiny_merged.n_books == tiny_merged.books.num_rows
        assert tiny_merged.n_readings == tiny_merged.readings.num_rows
        assert tiny_merged.n_users == len(tiny_merged.user_ids)

    def test_bct_users_subset(self, tiny_merged):
        assert set(tiny_merged.bct_user_ids) <= set(tiny_merged.user_ids)
        assert all(u.startswith("bct_") for u in tiny_merged.bct_user_ids)

    def test_genre_probabilities_sum_to_one(self, tiny_merged):
        for probs in tiny_merged.genre_probabilities.values():
            assert sum(probs.values()) == pytest.approx(1.0)

    def test_book_metadata_includes_genres(self, tiny_merged):
        book_id = int(tiny_merged.books["book_id"][0])
        metadata = tiny_merged.book_metadata(book_id)
        assert metadata["book_id"] == book_id
        assert "genres" in metadata and "plot" in metadata

    def test_book_metadata_unknown(self, tiny_merged):
        with pytest.raises(DatasetError, match="unknown book"):
            tiny_merged.book_metadata(-5)

    def test_restrict_to_sources_bct(self, tiny_merged):
        bct_only = tiny_merged.restrict_to_sources({"bct"})
        assert set(bct_only.readings["source"].tolist()) == {"bct"}
        assert bct_only.n_books == tiny_merged.n_books  # catalogue untouched
        bct_only.validate()

    def test_restrict_to_sources_unknown(self, tiny_merged):
        with pytest.raises(DatasetError, match="unknown sources"):
            tiny_merged.restrict_to_sources({"goodreads"})

    def test_validate_catches_bad_genre_probabilities(self, tiny_merged):
        bad_genres = Table.from_columns(
            {
                "book_id": [int(tiny_merged.books["book_id"][0])],
                "genre": ["Comics"],
                "probability": [0.5],
            },
            schema=BOOK_GENRES_SCHEMA,
        )
        dataset = MergedDataset(
            books=tiny_merged.books,
            readings=tiny_merged.readings,
            genres=bad_genres,
        )
        with pytest.raises(DatasetError, match="not summing to 1"):
            dataset.validate()

    def test_validate_catches_unknown_reading_book(self, tiny_merged):
        readings = tiny_merged.readings.head(1).with_column("book_id", [-1])
        dataset = MergedDataset(
            books=tiny_merged.books, readings=readings, genres=tiny_merged.genres
        )
        with pytest.raises(DatasetError, match="unknown books"):
            dataset.validate()

    def test_readings_per_user_totals(self, tiny_merged):
        table = tiny_merged.readings_per_user()
        assert table["n_readings"].sum() == tiny_merged.n_readings

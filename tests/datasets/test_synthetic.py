"""Tests for the synthetic BCT/Anobii dump generators."""

import numpy as np
import pytest

from repro.datasets.models import (
    ANOBII_ITEMS_SCHEMA,
    ANOBII_RATINGS_SCHEMA,
    BCT_BOOKS_SCHEMA,
    BCT_LOANS_SCHEMA,
    parse_genre_votes,
)
from repro.datasets.synthetic import ANOBII_ID_BASE, BCT_ID_BASE


class TestBCTDump:
    def test_schemas(self, tiny_sources):
        assert tiny_sources.bct.books.schema == BCT_BOOKS_SCHEMA
        assert tiny_sources.bct.loans.schema == BCT_LOANS_SCHEMA

    def test_referential_integrity(self, tiny_sources):
        tiny_sources.bct.validate()

    def test_only_bct_catalogue_books(self, tiny_sources):
        world = tiny_sources.world
        for book_id in tiny_sources.bct.books["book_id"]:
            assert world.book_in_bct[int(book_id) - BCT_ID_BASE]

    def test_noise_materials_present(self, tiny_sources):
        materials = set(tiny_sources.bct.books["material"].tolist())
        assert "monograph" in materials
        assert materials - {"monograph", "manuscript"}, (
            "the dump should contain non-book materials for the filter to drop"
        )

    def test_noise_languages_present(self, tiny_sources):
        languages = set(tiny_sources.bct.books["language"].tolist())
        assert "ita" in languages and len(languages) > 1

    def test_loan_dates_within_period(self, tiny_sources):
        first, last = tiny_sources.world.config.bct_years
        dates = tiny_sources.bct.loans["loan_date"]
        assert dates.min() >= np.datetime64(f"{first}-01-01")
        assert dates.max() <= np.datetime64(f"{last + 1}-12-31")

    def test_loan_ids_unique(self, tiny_sources):
        loan_ids = tiny_sources.bct.loans["loan_id"]
        assert len(set(loan_ids.tolist())) == len(loan_ids)


class TestAnobiiDump:
    def test_schemas(self, tiny_sources):
        assert tiny_sources.anobii.items.schema == ANOBII_ITEMS_SCHEMA
        assert tiny_sources.anobii.ratings.schema == ANOBII_RATINGS_SCHEMA

    def test_referential_integrity(self, tiny_sources):
        tiny_sources.anobii.validate()

    def test_contains_non_book_decoys(self, tiny_sources):
        is_book = tiny_sources.anobii.items["is_book"]
        assert (~is_book).sum() > 0

    def test_ratings_in_range(self, tiny_sources):
        ratings = tiny_sources.anobii.ratings["rating"]
        assert ratings.min() >= 1 and ratings.max() <= 5

    def test_contains_negative_feedback(self, tiny_sources):
        ratings = tiny_sources.anobii.ratings["rating"]
        assert (ratings < 3).sum() > 0, (
            "dislikes must exist for the positive-feedback filter to matter"
        )

    def test_genre_votes_parse(self, tiny_sources):
        items = tiny_sources.anobii.items
        books = items.filter(items["is_book"])
        parsed = parse_genre_votes(str(books["genre_votes"][0]))
        assert parsed and all(v >= 1 for v in parsed.values())

    def test_item_ids_disjoint_from_bct_ids(self, tiny_sources):
        bct_ids = set(tiny_sources.bct.books["book_id"].tolist())
        anobii_ids = set(tiny_sources.anobii.items["item_id"].tolist())
        assert not bct_ids & anobii_ids

    def test_shared_books_have_matching_titles(self, tiny_sources):
        """The same latent book appears with identical title in both dumps."""
        world = tiny_sources.world
        bct = tiny_sources.bct.books
        anobii = tiny_sources.anobii.items
        bct_titles = dict(zip(bct["book_id"], bct["title"]))
        hits = 0
        for item_id, title in zip(anobii["item_id"], anobii["title"]):
            latent = int(item_id) - ANOBII_ID_BASE
            bct_id = BCT_ID_BASE + latent
            if bct_id in bct_titles:
                assert bct_titles[bct_id] == title
                hits += 1
        assert hits > 0

"""Tests for the loan-duration signal (the paper's future-work feature)."""

import numpy as np
import pytest

from repro.datasets.models import LoanRecord
from repro.pipeline.merge import MergeConfig, build_merged_dataset


class TestLoanRecord:
    def test_duration_days(self):
        from datetime import date

        loan = LoanRecord(
            loan_id=1, user_id="u", book_id=1,
            loan_date=date(2020, 1, 1), return_date=date(2020, 1, 22),
        )
        assert loan.duration_days == 21

    def test_return_before_loan_rejected(self):
        from datetime import date

        with pytest.raises(ValueError, match="returned before"):
            LoanRecord(
                loan_id=1, user_id="u", book_id=1,
                loan_date=date(2020, 1, 10), return_date=date(2020, 1, 1),
            )


class TestSyntheticDurations:
    def test_all_loans_have_valid_durations(self, tiny_sources):
        durations = tiny_sources.bct.loan_durations()
        assert (durations >= 1).all()
        assert (durations <= 90).all()

    def test_bimodal_engagement(self, tiny_sources):
        """Both abandoned (short) and engaged (long) loans must exist."""
        durations = tiny_sources.bct.loan_durations()
        assert (durations <= 6).sum() > 0
        assert (durations > 6).sum() > 0
        # Most loans are genuine reads.
        assert (durations > 6).mean() > 0.6

    def test_validation_covers_return_dates(self, tiny_sources):
        tiny_sources.bct.validate()  # includes return >= loan


class TestMinLoanDaysFilter:
    def test_zero_keeps_paper_behaviour(self, tiny_sources, tiny_merged):
        merged, _ = build_merged_dataset(
            tiny_sources.bct, tiny_sources.anobii,
            MergeConfig(min_user_readings=10, min_book_readings=5,
                        min_loan_days=0),
        )
        assert merged.readings == tiny_merged.readings

    def test_filter_removes_short_loans_only(self, tiny_sources, tiny_merged):
        merged, _ = build_merged_dataset(
            tiny_sources.bct, tiny_sources.anobii,
            MergeConfig(min_user_readings=10, min_book_readings=5,
                        min_loan_days=7),
        )
        before = (tiny_merged.readings["source"] == "bct").sum()
        after = (merged.readings["source"] == "bct").sum()
        assert after < before
        # Anobii ratings carry no duration; they are never filtered this way.
        anobii_before = (tiny_merged.readings["source"] == "anobii").sum()
        anobii_after = (merged.readings["source"] == "anobii").sum()
        assert anobii_after <= anobii_before  # only via activity floors

    def test_negative_threshold_rejected(self):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            MergeConfig(min_loan_days=-1)


class TestDurationAblationExperiment:
    def test_runs_and_reports(self, tiny_context):
        from repro.experiments import duration_ablation

        result = duration_ablation.run(tiny_context)
        assert 0.0 < result.loans_removed_share < 0.5
        assert set(result.unfiltered) == {"Closest Items", "BPR"}
        assert "loan-duration" in result.render()

    def test_registered(self, tiny_context):
        from repro.experiments import available_experiments

        assert "ablation_duration" in available_experiments()

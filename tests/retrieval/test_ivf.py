"""Unit tests for the IVF index: build, probe, search, recall."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.retrieval.ivf import (
    IVFIndex,
    default_n_cells,
    default_probe_cells,
    recall_at_k,
)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(7)
    return rng.normal(size=(400, 16))


@pytest.fixture(scope="module")
def index(vectors):
    return IVFIndex.build(vectors, seed=99)


class TestDefaults:
    def test_default_n_cells_is_sqrt_clamped(self):
        assert default_n_cells(1) == 1
        assert default_n_cells(100) == 10
        assert default_n_cells(101) == 11
        assert default_n_cells(3) == 2

    def test_default_probe_cells_is_half(self):
        assert default_probe_cells(1) == 1
        assert default_probe_cells(10) == 5
        assert default_probe_cells(11) == 6

    def test_invalid_counts_raise(self):
        with pytest.raises(ConfigurationError):
            default_n_cells(0)
        with pytest.raises(ConfigurationError):
            default_probe_cells(0)


class TestBuild:
    def test_shapes_and_cell_count(self, index, vectors):
        assert index.n_items == len(vectors)
        assert index.n_cells == default_n_cells(len(vectors))
        assert index.centroids.shape == (index.n_cells, vectors.shape[1])
        assert index.assignments.shape == (len(vectors),)

    def test_cells_partition_the_items(self, index):
        pooled = np.concatenate(
            [index.cell_items(cell) for cell in range(index.n_cells)]
        )
        assert np.array_equal(np.sort(pooled), np.arange(index.n_items))

    def test_cell_items_are_ascending(self, index):
        for cell in range(index.n_cells):
            items = index.cell_items(cell)
            assert np.array_equal(items, np.sort(items))

    def test_more_cells_than_items_clamps(self):
        index = IVFIndex.build(np.eye(5), n_cells=50, seed=1)
        assert index.n_cells == 5

    def test_rejects_bad_vectors(self):
        with pytest.raises(ConfigurationError):
            IVFIndex.build(np.ones(4))
        with pytest.raises(ConfigurationError):
            IVFIndex.build(np.empty((0, 3)))
        with pytest.raises(ConfigurationError):
            IVFIndex.build(np.array([[1.0, np.nan]]))
        with pytest.raises(ConfigurationError):
            IVFIndex.build(np.eye(3), n_cells=0)
        with pytest.raises(ConfigurationError):
            IVFIndex.build(np.eye(3), n_iters=0)


class TestCandidates:
    def test_probe_all_is_the_item_range(self, index):
        pool = index.candidates(np.zeros(16), probe_cells=index.n_cells)
        assert np.array_equal(pool, np.arange(index.n_items))

    def test_pools_grow_as_supersets(self, index, vectors):
        query = vectors[3]
        previous = index.candidates(query, probe_cells=1)
        for probe in range(2, index.n_cells + 1):
            pool = index.candidates(query, probe_cells=probe)
            assert np.isin(previous, pool).all()
            previous = pool

    def test_min_candidates_widens_the_pool(self, index, vectors):
        query = vectors[0]
        narrow = index.candidates(query, probe_cells=1)
        widened = index.candidates(
            query, probe_cells=1, min_candidates=len(narrow) + 1
        )
        assert len(widened) > len(narrow)
        assert np.isin(narrow, widened).all()

    def test_min_candidates_beyond_catalogue_returns_all(self, index):
        pool = index.candidates(
            np.zeros(16), probe_cells=1, min_candidates=index.n_items + 99
        )
        assert np.array_equal(pool, np.arange(index.n_items))

    def test_probe_must_be_positive(self, index):
        with pytest.raises(ConfigurationError):
            index.candidates(np.zeros(16), probe_cells=0)


class TestSearch:
    def test_probe_all_matches_exact_bit_for_bit(self, index, vectors):
        for row in range(0, 50, 7):
            exact = index.exact_top_k(vectors[row], k=10)
            probed = index.search(vectors[row], k=10, probe_cells=index.n_cells)
            assert np.array_equal(exact, probed)

    def test_exclude_masks_items(self, index, vectors):
        exclude = index.exact_top_k(vectors[2], k=3)
        result = index.search(
            vectors[2], k=10, probe_cells=index.n_cells, exclude=exclude
        )
        assert not np.isin(result, exclude).any()

    def test_min_candidates_defaults_to_full_list(self, index, vectors):
        # Excluding the entire narrow pool still yields k survivors
        # because the default min_candidates widens past the exclusions.
        exclude = index.candidates(vectors[5], probe_cells=1)
        result = index.search(vectors[5], k=5, probe_cells=1, exclude=exclude)
        assert len(result) == 5
        assert not np.isin(result, exclude).any()

    def test_k_must_be_positive(self, index):
        with pytest.raises(ConfigurationError):
            index.search(np.zeros(16), k=0, probe_cells=1)
        with pytest.raises(ConfigurationError):
            index.exact_top_k(np.zeros(16), k=0)


class TestRecall:
    def test_probe_all_recall_is_one(self, index, vectors):
        assert recall_at_k(
            index, vectors[:20], k=10, probe_cells=index.n_cells
        ) == 1.0

    def test_recall_between_zero_and_one(self, index, vectors):
        recall = recall_at_k(index, vectors[:20], k=10, probe_cells=1)
        assert 0.0 <= recall <= 1.0

    def test_rejects_bad_queries(self, index):
        with pytest.raises(ConfigurationError):
            recall_at_k(index, np.zeros(16), k=10, probe_cells=1)

"""Tests for the mmap-backed user-shard store: fidelity, LRU, corruption."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PersistenceError
from repro.retrieval.shards import (
    UserShardStore,
    shard_name,
    write_user_shards,
)


@pytest.fixture(scope="module")
def factors():
    rng = np.random.default_rng(11)
    return rng.normal(size=(37, 6))


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, factors):
    root = tmp_path_factory.mktemp("shards") / "user-shards"
    return write_user_shards(root, factors, n_shards=5)


@pytest.fixture
def store(store_root):
    return UserShardStore(store_root, max_resident=2)


class TestWrite:
    def test_writes_manifest_and_meta(self, store_root):
        assert (store_root / "MANIFEST.json").exists()
        assert (store_root / "shards.json").exists()
        assert (store_root / shard_name(0)).exists()

    def test_rejects_bad_inputs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_user_shards(tmp_path / "s", np.ones(4))
        with pytest.raises(ConfigurationError):
            write_user_shards(tmp_path / "s", np.eye(3), n_shards=0)

    def test_shard_count_clamped_to_users(self, tmp_path):
        root = write_user_shards(tmp_path / "s", np.eye(3), n_shards=10)
        assert UserShardStore(root).n_shards == 3


class TestFidelity:
    def test_user_vector_matches_source_rows(self, store, factors):
        for user in range(len(factors)):
            assert np.array_equal(store.user_vector(user), factors[user])

    def test_gather_is_bit_equal_to_fancy_indexing(self, store, factors):
        rng = np.random.default_rng(3)
        indices = rng.integers(0, len(factors), size=25)
        assert np.array_equal(store.gather(indices), factors[indices])

    def test_gather_preserves_request_order(self, store, factors):
        indices = np.array([36, 0, 17, 0, 5])
        assert np.array_equal(store.gather(indices), factors[indices])

    def test_shard_bounds_tile_the_users(self, store, factors):
        covered = []
        for shard in range(store.n_shards):
            start, stop = store.shard_bounds(shard)
            covered.extend(range(start, stop))
            assert store.shard(shard).shape == (stop - start, store.n_factors)
        assert covered == list(range(len(factors)))

    def test_group_by_shard_partitions_positions(self, store):
        indices = np.array([0, 36, 8, 8, 20])
        groups = store.group_by_shard(indices)
        positions = np.sort(np.concatenate(list(groups.values())))
        assert np.array_equal(positions, np.arange(len(indices)))
        for shard, members in groups.items():
            assert all(
                store.shard_of(int(indices[p])) == shard for p in members
            )


class TestResidency:
    def test_lru_bounds_resident_shards(self, store):
        for shard in range(store.n_shards):
            store.shard(shard)
        stats = store.stats()
        assert stats["resident"] == 2
        assert stats["loads"] == store.n_shards
        assert stats["evictions"] == store.n_shards - 2

    def test_touch_refreshes_recency(self, store):
        store.shard(0)
        store.shard(1)
        store.shard(0)  # 0 is now most recent
        store.shard(2)  # evicts 1, not 0
        assert store.resident_shards == (0, 2)

    def test_rejects_bad_bounds(self, store):
        with pytest.raises(ConfigurationError):
            store.shard_of(-1)
        with pytest.raises(ConfigurationError):
            store.shard_of(store.n_users)
        with pytest.raises(ConfigurationError):
            store.shard_bounds(store.n_shards)
        with pytest.raises(ConfigurationError):
            UserShardStore(store.root, max_resident=0)


class TestCorruption:
    def test_flipped_byte_fails_verification(self, tmp_path, factors):
        root = write_user_shards(tmp_path / "s", factors, n_shards=3)
        path = root / shard_name(1)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError):
            UserShardStore(root)
        # verify=False skips the manifest check (the caller's choice).
        UserShardStore(root, verify=False)

    def test_missing_meta_fails(self, tmp_path, factors):
        root = write_user_shards(tmp_path / "s", factors, n_shards=2)
        (root / "shards.json").unlink()
        with pytest.raises(PersistenceError):
            UserShardStore(root, verify=False)

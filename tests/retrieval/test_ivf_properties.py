"""Property-based tests for the IVF index (the determinism.md rows).

Hypothesis draws random vector matrices and probe widths; for every
draw the index must partition exactly, the probe-everything search must
be bit-identical to the exact tier, recall@10 must be monotone
non-decreasing in the probe width, and a seeded rebuild must reproduce
the index bit for bit.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.retrieval.ivf import IVFIndex, recall_at_k

settings.register_profile("ivf", deadline=None, max_examples=15)


@st.composite
def indexed_vectors(draw):
    """A random (n, d) float matrix plus build parameters."""
    n_items = draw(st.integers(min_value=1, max_value=120))
    d = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    n_cells = draw(st.one_of(
        st.none(), st.integers(min_value=1, max_value=n_items)
    ))
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n_items, d))
    return vectors, n_cells, seed


@settings(deadline=None, max_examples=15)
@given(indexed_vectors())
def test_cells_partition_the_items_exactly(params):
    vectors, n_cells, seed = params
    index = IVFIndex.build(vectors, n_cells=n_cells, seed=seed)
    pooled = np.concatenate(
        [index.cell_items(cell) for cell in range(index.n_cells)]
    )
    assert len(pooled) == index.n_items
    assert np.array_equal(np.sort(pooled), np.arange(index.n_items))


@settings(deadline=None, max_examples=15)
@given(indexed_vectors(), st.integers(min_value=1, max_value=10))
def test_probe_all_is_bit_identical_to_exact(params, k):
    vectors, n_cells, seed = params
    index = IVFIndex.build(vectors, n_cells=n_cells, seed=seed)
    for query in vectors[:5]:
        exact = index.exact_top_k(query, k)
        probed = index.search(query, k, probe_cells=index.n_cells)
        assert np.array_equal(exact, probed)


@settings(deadline=None, max_examples=10)
@given(indexed_vectors())
def test_recall_at_10_is_monotone_in_probe_cells(params):
    vectors, n_cells, seed = params
    index = IVFIndex.build(vectors, n_cells=n_cells, seed=seed)
    queries = vectors[: min(8, len(vectors))]
    previous = 0.0
    for probe in range(1, index.n_cells + 1):
        recall = recall_at_k(index, queries, k=10, probe_cells=probe)
        assert recall >= previous - 1e-12
        previous = recall
    assert previous == 1.0  # probe-everything recovers the exact lists


@settings(deadline=None, max_examples=10)
@given(indexed_vectors())
def test_seeded_rebuild_is_bit_identical(params):
    vectors, n_cells, seed = params
    first = IVFIndex.build(vectors, n_cells=n_cells, seed=seed)
    second = IVFIndex.build(vectors.copy(), n_cells=n_cells, seed=seed)
    assert np.array_equal(first.centroids, second.centroids)
    assert np.array_equal(first.assignments, second.assignments)
    for cell in range(first.n_cells):
        assert np.array_equal(first.cell_items(cell), second.cell_items(cell))

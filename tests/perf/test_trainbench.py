"""Smoke tests for the training-tier bench and its report rendering."""

import json
from dataclasses import replace

import pytest

from repro.cli import render_train_bench_report
from repro.core.bpr_kernel import fork_sharing_available
from repro.perf.trainbench import TrainBenchConfig, run_train_bench

#: Micro bench: every tier in a few seconds. Big enough that the fast
#: kernel's per-batch savings beat its fixed overhead (the CI smoke job
#: asserts fast >= reference on exactly this shape).
MICRO = replace(
    TrainBenchConfig(),
    n_books=300, n_authors=110, n_bct_users=110, n_anobii_users=450,
    min_user_readings=10, min_book_readings=3,
    epochs=4, k=10, repeats=2,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "BENCH_train.json"
    return run_train_bench(MICRO, output_path=path)


class TestRunTrainBench:
    def test_sections_present(self, report):
        assert {"bench", "config", "dataset", "tiers"} <= set(report)
        assert report["bench"] == "train"
        assert {"reference", "fast", "hogwild"} == set(report["tiers"])

    @pytest.mark.parametrize("tier", ["reference", "fast"])
    def test_tier_schema(self, report, tier):
        data = report["tiers"][tier]
        assert data["kernel"] in ("reference", "fast")
        assert len(data["epoch_seconds"]) == MICRO.epochs
        assert len(data["samples_per_second"]) == MICRO.epochs
        assert data["best_samples_per_second"] > 0
        assert 0 <= data["val_urr"] <= 1
        assert data["speedup_vs_reference"] == pytest.approx(
            data["best_samples_per_second"]
            / report["tiers"]["reference"]["best_samples_per_second"]
        )

    def test_fast_at_least_matches_reference_throughput(self, report):
        assert (
            report["tiers"]["fast"]["best_samples_per_second"]
            >= report["tiers"]["reference"]["best_samples_per_second"]
        )

    @pytest.mark.skipif(
        not fork_sharing_available(),
        reason="hogwild needs the fork start method",
    )
    def test_hogwild_ran_and_recorded_kpis(self, report):
        data = report["tiers"]["hogwild"]
        assert "skipped" not in data
        assert data["workers"] == MICRO.workers
        assert 0 <= data["val_urr"] <= 1

    def test_json_written_and_parses(self, report):
        with open(report["output_path"], encoding="utf-8") as handle:
            on_disk = json.load(handle)
        assert on_disk["bench"] == "train"
        assert set(on_disk["tiers"]) == {"reference", "fast", "hogwild"}


class TestRenderReport:
    def test_render_names_every_tier(self, report):
        rendered = render_train_bench_report(report)
        for token in ("reference", "fast", "hogwild", "pairs/s"):
            assert token in rendered

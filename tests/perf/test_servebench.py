"""Smoke tests for the serving bench: schema, gates, and rendering."""

import json
from dataclasses import replace

import pytest

from repro.perf.servebench import (
    ServeBenchConfig,
    render_serve_report,
    run_serve_bench,
)

#: Micro bench: the full sweep in a few seconds. Shape mirrors the
#: quick config but smaller still — the gates here are structural
#: (schema, equivalence booleans), not the CI recall gate.
MICRO = replace(
    ServeBenchConfig.quick(),
    n_books=300, n_authors=110, n_bct_users=110, n_anobii_users=450,
    epochs=4, sample_users=24, repeats=1,
    replay_requests=60, replay_batch=16,
    synthetic_items=3000, synthetic_queries=8,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "BENCH_serve.json"
    result = run_serve_bench(MICRO, output_path=path)
    result["_path"] = path
    return result


class TestRunServeBench:
    def test_sections_present(self, report):
        assert {
            "bench", "config", "dataset", "equivalence", "exact",
            "frontier", "default", "zipf_replay", "synthetic_scale",
        } <= set(report)
        assert report["bench"] == "serve"

    def test_equivalence_booleans_hold(self, report):
        equivalence = report["equivalence"]
        assert equivalence["users_checked"] == MICRO.sample_users
        assert equivalence["ivf_probe_all_bit_identical"] is True
        assert equivalence["shard_store_bit_identical"] is True

    def test_frontier_schema_and_monotone_recall(self, report):
        frontier = report["frontier"]
        assert len(frontier) >= 2
        previous = 0.0
        for point in frontier:
            assert point["probe_cells"] >= 1
            assert 0.0 <= point["recall_at_k"] <= 1.0
            assert point["seconds_per_request"] > 0
            assert point["speedup_vs_exact"] > 0
            assert point["recall_at_k"] >= previous - 1e-12
            previous = point["recall_at_k"]
        # The widest probe is the whole index: exact lists, recall 1.
        assert frontier[-1]["probe_cells"] == report["default"]["n_cells"]
        assert frontier[-1]["recall_at_k"] == 1.0

    def test_default_point_is_on_the_frontier(self, report):
        default = report["default"]
        widths = [point["probe_cells"] for point in report["frontier"]]
        assert default["probe_cells"] in widths

    def test_zipf_replay_accounting(self, report):
        replay = report["zipf_replay"]
        assert replay["requests"] == MICRO.replay_requests
        assert replay["seconds"] > 0
        assert 0.0 <= replay["cache_hit_rate"] <= 1.0
        assert replay["coalesced_groups"] >= 1
        assert 1 <= replay["distinct_users"] <= MICRO.replay_requests
        shards = replay["shards"]
        assert shards["resident"] <= shards["max_resident"]

    def test_synthetic_scale_schema(self, report):
        synthetic = report["synthetic_scale"]
        assert synthetic["n_items"] == MICRO.synthetic_items
        assert synthetic["probe_cells"] <= synthetic["n_cells"]
        assert 0.0 <= synthetic["recall_at_k"] <= 1.0
        assert synthetic["exact_seconds_per_query"] > 0
        assert synthetic["speedup_vs_exact"] > 0
        widths = [p["probe_cells"] for p in synthetic["frontier"]]
        assert widths == sorted(widths)
        assert widths[-1] == synthetic["probe_cells"]

    def test_written_file_round_trips(self, report):
        on_disk = json.loads(report["_path"].read_text(encoding="utf-8"))
        assert on_disk["bench"] == "serve"
        assert on_disk["equivalence"] == report["equivalence"]

    def test_render_mentions_the_key_numbers(self, report):
        text = render_serve_report(report)
        assert "serve bench" in text
        assert "bit-identical" in text
        assert "<- default" in text
        assert "zipf replay" in text

"""Tests for CSV/JSONL table round-trips."""

from datetime import date

import pytest

from repro.errors import TableIOError
from repro.tables import Table, read_csv, read_jsonl, write_csv, write_jsonl
from repro.tables.schema import Schema


@pytest.fixture
def table():
    schema = Schema(
        [("id", "int"), ("name", "str"), ("score", "float"),
         ("ok", "bool"), ("day", "date")]
    )
    return Table.from_columns(
        {
            "id": [1, 2],
            "name": ["àccénted, with commas", "plain"],
            "score": [1.5, -2.25],
            "ok": [True, False],
            "day": [date(2015, 3, 2), date(2020, 12, 31)],
        },
        schema=schema,
    )


class TestCSV:
    def test_roundtrip(self, tmp_path, table):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        assert read_csv(path) == table

    def test_header_encodes_dtypes(self, tmp_path, table):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        header = path.read_text(encoding="utf-8").splitlines()[0]
        assert "id:int" in header and "day:date" in header

    def test_empty_table_roundtrip(self, tmp_path, table):
        path = tmp_path / "t.csv"
        write_csv(table.head(0), path)
        loaded = read_csv(path)
        assert loaded.num_rows == 0
        assert loaded.schema == table.schema

    def test_missing_file(self, tmp_path):
        with pytest.raises(TableIOError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TableIOError, match="empty"):
            read_csv(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("plainheader\n1\n")
        with pytest.raises(TableIOError, match="name:dtype"):
            read_csv(path)

    def test_embedded_newlines_roundtrip(self, tmp_path):
        from repro.tables import Table

        table = Table.from_columns({"text": ["line1\nline2", "plain"]})
        path = tmp_path / "n.csv"
        write_csv(table, path)
        assert read_csv(path) == table

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a:int,b:int\n1,2\n3\n")
        with pytest.raises(TableIOError, match="expected 2 cells"):
            read_csv(path)


class TestJSONL:
    def test_roundtrip(self, tmp_path, table):
        path = tmp_path / "t.jsonl"
        write_jsonl(table, path)
        assert read_jsonl(path) == table

    def test_first_line_is_schema(self, tmp_path, table):
        path = tmp_path / "t.jsonl"
        write_jsonl(table, path)
        first = path.read_text(encoding="utf-8").splitlines()[0]
        assert "__schema__" in first

    def test_missing_schema_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1}\n')
        with pytest.raises(TableIOError, match="schema record"):
            read_jsonl(path)

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"__schema__": [["a", "int"]]}\nnot-json\n')
        with pytest.raises(TableIOError, match="invalid JSON"):
            read_jsonl(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"__schema__": [["a", "int"]]}\n{"b": 2}\n')
        with pytest.raises(TableIOError, match="missing field"):
            read_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"__schema__": [["a", "int"]]}\n{"a": 1}\n\n{"a": 2}\n')
        assert read_jsonl(path).num_rows == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TableIOError, match="empty"):
            read_jsonl(path)

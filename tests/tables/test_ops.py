"""Tests for the aggregation functions in repro.tables.ops."""

import numpy as np
import pytest

from repro.tables import ops


class TestScalarAggregations:
    def test_count(self):
        assert ops.count(np.asarray([5, 5, 5])) == 3
        assert ops.count(np.asarray([])) == 0

    def test_count_distinct(self):
        assert ops.count_distinct(np.asarray([1, 1, 2])) == 2

    def test_count_distinct_strings(self):
        values = np.asarray(["a", "a", "b"], dtype=object)
        assert ops.count_distinct(values) == 2

    def test_sum(self):
        assert ops.sum_(np.asarray([1, 2, 3])) == 6

    def test_mean(self):
        assert ops.mean(np.asarray([1.0, 3.0])) == pytest.approx(2.0)

    def test_median(self):
        assert ops.median(np.asarray([1, 2, 100])) == 2

    def test_min_max_return_python_types(self):
        values = np.asarray([3, 1, 2])
        assert ops.min_(values) == 1
        assert ops.max_(values) == 3
        assert isinstance(ops.min_(values), int)

    def test_first(self):
        assert ops.first(np.asarray([7, 8])) == 7

    def test_first_empty_raises(self):
        with pytest.raises(ValueError):
            ops.first(np.asarray([]))


class TestQuantile:
    def test_median_quantile(self):
        q50 = ops.quantile(0.5)
        assert q50(np.asarray([1.0, 2.0, 3.0])) == pytest.approx(2.0)

    def test_extreme_quantiles(self):
        values = np.asarray([1.0, 2.0, 3.0])
        assert ops.quantile(0.0)(values) == 1.0
        assert ops.quantile(1.0)(values) == 3.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ops.quantile(1.5)

    def test_name_carries_q(self):
        assert "0.9" in ops.quantile(0.9).__name__


def test_collect_list():
    assert ops.collect_list(np.asarray([1, 2])) == [1, 2]

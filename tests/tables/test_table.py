"""Tests for repro.tables.table core operations."""

import numpy as np
import pytest

from repro.errors import ColumnNotFoundError, SchemaError
from repro.tables import Table, concat_tables
from repro.tables.schema import Schema


@pytest.fixture
def books():
    return Table.from_columns(
        {
            "book_id": [3, 1, 2, 4],
            "title": ["c", "a", "b", "d"],
            "loans": [10, 5, 5, 0],
            "price": [9.5, 1.0, 2.5, 3.0],
        }
    )


class TestConstruction:
    def test_from_columns_infers_schema(self, books):
        assert books.schema["book_id"].dtype == "int"
        assert books.schema["title"].dtype == "str"
        assert books.num_rows == 4

    def test_from_rows_requires_all_columns(self):
        schema = Schema([("a", "int"), ("b", "str")])
        with pytest.raises(SchemaError, match="missing columns"):
            Table.from_rows([{"a": 1}], schema)

    def test_from_rows_roundtrip(self):
        schema = Schema([("a", "int"), ("b", "str")])
        table = Table.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}], schema)
        assert table.to_pylist() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_empty(self):
        schema = Schema([("a", "int")])
        table = Table.empty(schema)
        assert table.num_rows == 0
        assert len(table) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError, match="differing lengths"):
            Table.from_columns({"a": [1, 2], "b": ["x"]})

    def test_columns_must_match_schema(self):
        schema = Schema([("a", "int")])
        with pytest.raises(SchemaError, match="do not match"):
            Table(schema, {"b": np.asarray([1])})


class TestAccess:
    def test_getitem_returns_column(self, books):
        assert books["loans"].tolist() == [10, 5, 5, 0]

    def test_unknown_column(self, books):
        with pytest.raises(ColumnNotFoundError):
            books["nope"]

    def test_row_unwraps_numpy_scalars(self, books):
        row = books.row(0)
        assert isinstance(row["book_id"], int)
        assert row["title"] == "c"

    def test_row_negative_index(self, books):
        assert books.row(-1)["title"] == "d"

    def test_row_out_of_range(self, books):
        with pytest.raises(IndexError):
            books.row(99)

    def test_repr_mentions_rows(self, books):
        assert "4 rows" in repr(books)


class TestOperations:
    def test_select_projects_and_orders(self, books):
        sel = books.select(["title", "book_id"])
        assert sel.column_names == ("title", "book_id")

    def test_drop(self, books):
        assert books.drop(["price"]).column_names == ("book_id", "title", "loans")

    def test_drop_unknown(self, books):
        with pytest.raises(ColumnNotFoundError):
            books.drop(["nope"])

    def test_rename(self, books):
        renamed = books.rename({"loans": "n"})
        assert "n" in renamed.schema
        assert renamed["n"].tolist() == [10, 5, 5, 0]

    def test_filter_with_mask(self, books):
        filtered = books.filter(books["loans"] > 4)
        assert filtered.num_rows == 3

    def test_filter_with_callable(self, books):
        filtered = books.filter(lambda t: t["price"] < 3.0)
        assert filtered["title"].tolist() == ["a", "b"]

    def test_filter_rejects_wrong_length(self, books):
        with pytest.raises(SchemaError, match="boolean array"):
            books.filter(np.asarray([True]))

    def test_filter_rejects_non_bool(self, books):
        with pytest.raises(SchemaError):
            books.filter(np.asarray([1, 0, 1, 0]))

    def test_take_allows_duplicates(self, books):
        taken = books.take([0, 0, 1])
        assert taken["title"].tolist() == ["c", "c", "a"]

    def test_head(self, books):
        assert books.head(2).num_rows == 2
        assert books.head(100).num_rows == 4

    def test_sort_single_key(self, books):
        assert books.sort("book_id")["book_id"].tolist() == [1, 2, 3, 4]

    def test_sort_descending(self, books):
        assert books.sort("book_id", descending=True)["book_id"].tolist() == [4, 3, 2, 1]

    def test_sort_multi_key_stable(self, books):
        # loans has a tie (5, 5); secondary key breaks it.
        ordered = books.sort(["loans", "title"])
        assert ordered["title"].tolist() == ["d", "a", "b", "c"]

    def test_sort_requires_column(self, books):
        with pytest.raises(SchemaError):
            books.sort([])

    def test_with_column_adds(self, books):
        extended = books.with_column("half", books["price"] / 2)
        assert extended["half"].tolist() == [4.75, 0.5, 1.25, 1.5]
        assert books.num_rows == 4  # original untouched

    def test_with_column_replaces(self, books):
        replaced = books.with_column("loans", [0, 0, 0, 0])
        assert replaced["loans"].tolist() == [0, 0, 0, 0]

    def test_with_column_length_checked(self, books):
        with pytest.raises(SchemaError):
            books.with_column("x", [1])

    def test_unique_sorted(self, books):
        assert books.unique("loans").tolist() == [0, 5, 10]

    def test_unique_strings(self, books):
        assert books.unique("title").tolist() == ["a", "b", "c", "d"]

    def test_value_counts(self, books):
        assert books.value_counts("loans") == {0: 1, 5: 2, 10: 1}


class TestEquality:
    def test_equal_tables(self, books):
        assert books == books.take([0, 1, 2, 3])

    def test_different_rows(self, books):
        assert books != books.head(2)

    def test_float_nan_equality(self):
        left = Table.from_columns({"x": [float("nan"), 1.0]})
        right = Table.from_columns({"x": [float("nan"), 1.0]})
        assert left == right


class TestConcat:
    def test_concat_preserves_order(self, books):
        combined = concat_tables([books.head(2), books.take([2, 3])])
        assert combined == books

    def test_concat_schema_mismatch(self, books):
        other = Table.from_columns({"x": [1]})
        with pytest.raises(SchemaError, match="different schemas"):
            concat_tables([books, other])

    def test_concat_empty_list(self):
        with pytest.raises(SchemaError):
            concat_tables([])

"""Tests for Table.join and Table.group_by."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.tables import Table, ops


@pytest.fixture
def loans():
    return Table.from_columns(
        {
            "user": ["u1", "u1", "u2", "u3"],
            "book": [1, 2, 1, 9],
            "days": [7, 14, 3, 30],
        }
    )


@pytest.fixture
def catalogue():
    return Table.from_columns(
        {
            "book": [1, 2, 3],
            "title": ["alpha", "beta", "gamma"],
            "price": [1.0, 2.0, 3.0],
        }
    )


class TestJoin:
    def test_inner_join_drops_unmatched(self, loans, catalogue):
        joined = loans.join(catalogue, on="book")
        assert joined.num_rows == 3  # book 9 has no catalogue entry
        assert set(joined.column_names) == {"user", "book", "days", "title", "price"}

    def test_inner_join_gathers_attributes(self, loans, catalogue):
        joined = loans.join(catalogue, on="book").sort(["user", "book"])
        assert joined["title"].tolist() == ["alpha", "beta", "alpha"]

    def test_left_join_keeps_unmatched_with_missing(self, loans, catalogue):
        joined = loans.join(catalogue.drop(["price"]), on="book", how="left")
        assert joined.num_rows == 4
        row = joined.filter(joined["book"] == 9).row(0)
        assert row["title"] is None

    def test_left_join_float_missing_is_nan(self, loans, catalogue):
        joined = loans.join(catalogue.select(["book", "price"]), on="book", how="left")
        missing = joined.filter(joined["book"] == 9)["price"]
        assert np.isnan(missing[0])

    def test_left_join_int_missing_raises(self, loans):
        right = Table.from_columns({"book": [1], "edition": [3]})
        with pytest.raises(SchemaError, match="missing-value"):
            loans.join(right, on="book", how="left")

    def test_one_to_many_duplicates_left_rows(self, catalogue):
        votes = Table.from_columns(
            {"book": [1, 1, 2], "genre": ["x", "y", "z"]}
        )
        joined = catalogue.join(votes, on="book")
        assert joined.num_rows == 3
        assert joined.filter(joined["book"] == 1).num_rows == 2

    def test_multi_key_join(self):
        left = Table.from_columns({"a": [1, 1, 2], "b": ["x", "y", "x"], "v": [1, 2, 3]})
        right = Table.from_columns({"a": [1, 2], "b": ["x", "x"], "w": [10, 20]})
        joined = left.join(right, on=["a", "b"])
        assert joined.num_rows == 2
        assert sorted(joined["w"].tolist()) == [10, 20]

    def test_colliding_columns_get_suffix(self, catalogue):
        other = Table.from_columns({"book": [1], "title": ["other"]})
        joined = catalogue.join(other, on="book")
        assert "title_right" in joined.schema
        assert joined["title_right"][0] == "other"

    def test_key_dtype_mismatch_rejected(self, catalogue):
        other = Table.from_columns({"book": ["1"], "x": [1]})
        with pytest.raises(SchemaError, match="dtype"):
            catalogue.join(other, on="book")

    def test_unsupported_join_type(self, loans, catalogue):
        with pytest.raises(SchemaError, match="unsupported join"):
            loans.join(catalogue, on="book", how="outer")


class TestGroupBy:
    def test_sizes(self, loans):
        grouped = loans.group_by("user")
        assert grouped.sizes() == {("u1",): 2, ("u2",): 1, ("u3",): 1}

    def test_len(self, loans):
        assert len(loans.group_by("user")) == 3

    def test_iteration_yields_subtables(self, loans):
        for key, sub in loans.group_by("user"):
            assert all(u == key[0] for u in sub["user"])

    def test_aggregate_count_and_sum(self, loans):
        agg = loans.group_by("user").aggregate(
            {"n": ("book", ops.count), "total_days": ("days", ops.sum_)}
        )
        by_user = {row["user"]: row for row in agg.iter_rows()}
        assert by_user["u1"]["n"] == 2
        assert by_user["u1"]["total_days"] == 21

    def test_aggregate_mean_median(self, loans):
        agg = loans.group_by("user").aggregate(
            {"mean_days": ("days", ops.mean), "median_days": ("days", ops.median)}
        )
        row = agg.filter(agg["user"] == "u1").row(0)
        assert row["mean_days"] == pytest.approx(10.5)
        assert row["median_days"] == pytest.approx(10.5)

    def test_aggregate_output_collision_rejected(self, loans):
        with pytest.raises(SchemaError, match="collides"):
            loans.group_by("user").aggregate({"user": ("days", ops.count)})

    def test_group_by_requires_columns(self, loans):
        with pytest.raises(SchemaError):
            loans.group_by([])

    def test_group_by_unknown_column(self, loans):
        from repro.errors import ColumnNotFoundError

        with pytest.raises(ColumnNotFoundError):
            loans.group_by("nope")

    def test_multi_key_grouping(self, loans):
        grouped = loans.group_by(["user", "book"])
        assert len(grouped) == 4

"""Property-based tests for the table engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tables import Table, concat_tables, read_csv, write_csv
from repro.tables.schema import Schema

settings.register_profile("tables", deadline=None, max_examples=60)
settings.load_profile("tables")

ids = st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=40)
names = st.lists(
    st.text(alphabet="abcxyz ,\"'", min_size=0, max_size=8),
    min_size=0,
    max_size=40,
)


def make_table(ints, strs):
    n = min(len(ints), len(strs))
    return Table.from_columns(
        {"a": ints[:n], "b": strs[:n]},
        schema=Schema([("a", "int"), ("b", "str")]),
    )


@given(ids, names)
def test_filter_then_concat_is_permutation(ints, strs):
    """Splitting by a predicate and re-concatenating loses no rows."""
    table = make_table(ints, strs)
    mask = table["a"] >= 0
    kept = table.filter(mask)
    dropped = table.filter(~mask)
    assert kept.num_rows + dropped.num_rows == table.num_rows
    recombined = concat_tables([kept, dropped])
    assert sorted(recombined["a"].tolist()) == sorted(table["a"].tolist())


@given(ids, names)
def test_sort_is_ordered_permutation(ints, strs):
    table = make_table(ints, strs)
    ordered = table.sort("a")
    values = ordered["a"].tolist()
    assert values == sorted(table["a"].tolist())
    assert ordered.num_rows == table.num_rows


@given(ids, names)
def test_sort_descending_reverses(ints, strs):
    table = make_table(ints, strs)
    down = table.sort("a", descending=True)["a"].tolist()
    assert down == sorted(table["a"].tolist(), reverse=True)


@given(ids, names)
def test_take_identity(ints, strs):
    table = make_table(ints, strs)
    assert table.take(np.arange(table.num_rows)) == table


@given(ids, names)
def test_csv_roundtrip(tmp_path_factory, ints, strs):
    table = make_table(ints, strs)
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    write_csv(table, path)
    assert read_csv(path) == table


@given(ids, names)
def test_group_sizes_partition_rows(ints, strs):
    table = make_table(ints, strs)
    if table.num_rows == 0:
        return
    sizes = table.group_by("a").sizes()
    assert sum(sizes.values()) == table.num_rows


@given(ids, names)
def test_value_counts_total(ints, strs):
    table = make_table(ints, strs)
    counts = table.value_counts("a")
    assert sum(counts.values()) == table.num_rows


@given(ids, names, ids, names)
def test_inner_join_row_count_formula(li, ls, ri, rs):
    """|A join B| = sum over keys of count_A(key) * count_B(key)."""
    left = make_table(li, ls)
    right = make_table(ri, rs).rename({"b": "c"})
    joined = left.join(right, on="a")
    left_counts = left.value_counts("a")
    right_counts = right.value_counts("a")
    expected = sum(
        count * right_counts.get(key, 0) for key, count in left_counts.items()
    )
    assert joined.num_rows == expected

"""Tests for repro.tables.schema."""

from datetime import date

import numpy as np
import pytest

from repro.errors import ColumnNotFoundError, SchemaError
from repro.tables.schema import Column, Schema, infer_schema


class TestColumn:
    def test_valid_dtypes(self):
        for dtype in ("int", "float", "str", "bool", "date"):
            assert Column("x", dtype).dtype == dtype

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchemaError, match="unknown dtype"):
            Column("x", "varchar")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            Column("", "int")

    def test_numpy_dtype_mapping(self):
        assert Column("x", "int").numpy_dtype == np.dtype(np.int64)
        assert Column("x", "date").numpy_dtype == np.dtype("datetime64[D]")


class TestSchema:
    def test_accepts_tuples(self):
        schema = Schema([("a", "int"), ("b", "str")])
        assert schema.names == ("a", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([("a", "int"), ("a", "str")])

    def test_contains_and_getitem(self):
        schema = Schema([("a", "int")])
        assert "a" in schema
        assert "b" not in schema
        assert schema["a"].dtype == "int"

    def test_missing_column_error_lists_available(self):
        schema = Schema([("a", "int"), ("b", "str")])
        with pytest.raises(ColumnNotFoundError) as excinfo:
            schema["zzz"]
        assert "a" in str(excinfo.value)

    def test_select_preserves_order(self):
        schema = Schema([("a", "int"), ("b", "str"), ("c", "float")])
        assert schema.select(["c", "a"]).names == ("c", "a")

    def test_rename(self):
        schema = Schema([("a", "int"), ("b", "str")])
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ("x", "b")
        assert renamed["x"].dtype == "int"

    def test_rename_unknown_column(self):
        with pytest.raises(ColumnNotFoundError):
            Schema([("a", "int")]).rename({"zzz": "x"})

    def test_equality_and_hash(self):
        left = Schema([("a", "int")])
        right = Schema([Column("a", "int")])
        assert left == right
        assert hash(left) == hash(right)
        assert left != Schema([("a", "float")])

    def test_iteration(self):
        schema = Schema([("a", "int"), ("b", "str")])
        assert [c.name for c in schema] == ["a", "b"]


class TestCoercion:
    def test_int_coercion(self):
        schema = Schema([("a", "int")])
        array = schema.coerce_column("a", [1, 2, 3])
        assert array.dtype == np.int64

    def test_int_rejects_strings(self):
        schema = Schema([("a", "int")])
        with pytest.raises(SchemaError, match="cannot coerce"):
            schema.coerce_column("a", ["x"])

    def test_str_rejects_numbers(self):
        schema = Schema([("a", "str")])
        with pytest.raises(SchemaError):
            schema.coerce_column("a", [1])

    def test_str_allows_none(self):
        schema = Schema([("a", "str")])
        array = schema.coerce_column("a", ["x", None])
        assert array[1] is None

    def test_date_from_python_dates(self):
        schema = Schema([("d", "date")])
        array = schema.coerce_column("d", [date(2020, 1, 2)])
        assert array[0] == np.datetime64("2020-01-02")

    def test_date_from_iso_strings(self):
        schema = Schema([("d", "date")])
        array = schema.coerce_column("d", ["2019-12-31"])
        assert array.dtype == np.dtype("datetime64[D]")

    def test_date_rejects_int(self):
        schema = Schema([("d", "date")])
        with pytest.raises(SchemaError):
            schema.coerce_column("d", [7])


class TestInference:
    def test_infer_int(self):
        assert infer_schema({"a": [1, 2]})["a"].dtype == "int"

    def test_infer_bool_before_int(self):
        assert infer_schema({"a": [True, False]})["a"].dtype == "bool"

    def test_infer_float(self):
        assert infer_schema({"a": [1.5]})["a"].dtype == "float"

    def test_infer_str(self):
        assert infer_schema({"a": ["x"]})["a"].dtype == "str"

    def test_infer_date(self):
        assert infer_schema({"a": [date(2020, 1, 1)]})["a"].dtype == "date"

    def test_infer_empty_defaults_to_str(self):
        assert infer_schema({"a": []})["a"].dtype == "str"

    def test_infer_skips_leading_none(self):
        assert infer_schema({"a": [None, 3]})["a"].dtype == "int"

    def test_infer_from_numpy_arrays(self):
        assert infer_schema({"a": np.asarray([1, 2])})["a"].dtype == "int"
        assert (
            infer_schema({"a": np.asarray(["2020-01-01"], dtype="datetime64[D]")})[
                "a"
            ].dtype
            == "date"
        )

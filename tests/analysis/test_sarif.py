"""``--format sarif`` output validates against a SARIF 2.1.0 subset.

CI has no ``jsonschema`` package, so this module carries its own small
recursive validator plus an inlined subset of the SARIF 2.1.0 schema —
the properties ``repro check`` actually emits, with the spec's types,
required fields, and the ``level`` enum. The validator is self-tested
against a deliberately broken log so a vacuous pass cannot hide.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import SARIF_SCHEMA, SARIF_VERSION, TOOL_NAME

PKG = {"pkg/__init__.py": '"""Fixture package."""\n'}

#: Interprocedural fixture: the finding carries a witness path, so the
#: emitted SARIF exercises ``relatedLocations`` too.
FILES = {
    **PKG,
    "pkg/mod.py": '''\
        """Mod."""

        import numpy as np

        def draw():
            """Draw."""
            rng = np.random.default_rng(1234)
            return helper(rng)

        def helper(gen):
            """Help."""
            return gen.integers(0, 10)
    ''',
}


# ----------------------------------------------------------------------
# minimal JSON-Schema-style validator (subset: type/enum/required/
# properties/items/additionalProperties/minimum)
# ----------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
}


def validation_errors(instance, schema, path="$") -> list[str]:
    """Every way ``instance`` violates the schema subset."""
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        wrong_bool = expected == "integer" and isinstance(instance, bool)
        if wrong_bool or not isinstance(instance, python_type):
            return [f"{path}: expected {expected}, got {type(instance).__name__}"]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in instance:
                errors.extend(
                    validation_errors(
                        instance[key], subschema, f"{path}.{key}"
                    )
                )
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, value in instance.items():
                if key not in properties:
                    errors.extend(
                        validation_errors(value, extra, f"{path}.{key}")
                    )
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(
                validation_errors(
                    item, schema["items"], f"{path}[{index}]"
                )
            )
    if "minimum" in schema and isinstance(instance, int):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    return errors


_LOCATION_SCHEMA = {
    "type": "object",
    "required": ["physicalLocation"],
    "properties": {
        "physicalLocation": {
            "type": "object",
            "required": ["artifactLocation"],
            "properties": {
                "artifactLocation": {
                    "type": "object",
                    "required": ["uri"],
                    "properties": {"uri": {"type": "string"}},
                },
                "region": {
                    "type": "object",
                    "properties": {
                        "startLine": {"type": "integer", "minimum": 1},
                    },
                },
            },
        },
        "message": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
        },
    },
}

#: The SARIF 2.1.0 subset ``repro check`` emits (types, required
#: fields, and enums lifted from the published schema).
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"type": "string", "enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {
                                                            "type": "string"
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "columnKind": {
                        "type": "string",
                        "enum": [
                            "utf16CodeUnits",
                            "unicodeCodePoints",
                        ],
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "type": "string",
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"},
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": _LOCATION_SCHEMA,
                                },
                                "relatedLocations": {
                                    "type": "array",
                                    "items": _LOCATION_SCHEMA,
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {
                                        "type": "string"
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


@pytest.fixture
def result(check_tree):
    return check_tree(FILES, rule_ids=["seed-lineage"])


class TestValidatorIsNotVacuous:
    def test_missing_version_fails(self):
        assert validation_errors({"runs": []}, SARIF_SUBSET_SCHEMA)

    def test_bad_level_enum_fails(self):
        log = {
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {"name": "x"}},
                "results": [
                    {"message": {"text": "m"}, "level": "fatal"},
                ],
            }],
        }
        assert validation_errors(log, SARIF_SUBSET_SCHEMA)

    def test_zero_start_line_fails(self):
        location = {
            "physicalLocation": {
                "artifactLocation": {"uri": "a.py"},
                "region": {"startLine": 0},
            }
        }
        assert validation_errors(location, _LOCATION_SCHEMA)


class TestEmittedSarif:
    def test_log_validates_against_the_subset_schema(self, result):
        log = result.as_sarif()
        assert validation_errors(log, SARIF_SUBSET_SCHEMA) == []

    def test_render_round_trips_through_json(self, result):
        assert json.loads(result.render_sarif()) == result.as_sarif()

    def test_envelope_constants(self, result):
        log = result.as_sarif()
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        assert log["runs"][0]["tool"]["driver"]["name"] == TOOL_NAME

    def test_rules_metadata_lists_the_active_rules(self, result):
        driver = result.as_sarif()["runs"][0]["tool"]["driver"]
        assert [rule["id"] for rule in driver["rules"]] == ["seed-lineage"]

    def test_results_carry_fingerprints_and_witnesses(self, result):
        (finding,) = [
            f for f in result.findings if "traces back" in f.message
        ]
        (sarif_result,) = [
            entry
            for entry in result.as_sarif()["runs"][0]["results"]
            if entry["partialFingerprints"]["reproCheck/v1"]
            == finding.fingerprint
        ]
        related = sarif_result["relatedLocations"]
        assert [entry["message"]["text"] for entry in related] == [
            step.note for step in finding.witness
        ]
        assert related, "witness finding must ship relatedLocations"

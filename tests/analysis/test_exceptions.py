"""The exception-hygiene rule: no silently swallowed failures."""

from __future__ import annotations

import pytest

from repro.analysis import ExceptionHygieneRule

RULE = [ExceptionHygieneRule()]


class TestFlags:
    def test_bare_except_is_always_flagged(self, check_tree):
        source = (
            "try:\n"
            "    work()\n"
            "except:\n"
            "    pass\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert len(result.findings) == 1
        assert "bare 'except:'" in result.findings[0].message

    @pytest.mark.parametrize("name", ["Exception", "BaseException"])
    def test_silent_broad_catch_is_flagged(self, check_tree, name):
        source = (
            "try:\n"
            "    work()\n"
            f"except {name}:\n"
            "    result = None\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert len(result.findings) == 1
        assert f"'except {name}' swallows the failure" in (
            result.findings[0].message
        )

    def test_bare_except_with_logging_still_flagged(self, check_tree):
        # A bare except is wrong even when it logs: it catches
        # SystemExit/KeyboardInterrupt.
        source = (
            "try:\n"
            "    work()\n"
            "except:\n"
            "    log.warning('boom')\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert len(result.findings) == 1


class TestDoesNotFlag:
    @pytest.mark.parametrize(
        "body",
        [
            "raise",
            "raise RuntimeError('wrapped') from exc",
            "log.warning('degraded: %s', exc)",
            "logger.exception('boom')",
            "metrics.counter('errors').inc()",
            "histogram.observe(0.1)",
        ],
    )
    def test_mitigated_broad_catch_is_clean(self, check_tree, body):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception as exc:\n"
            f"    {body}\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert result.ok, result.render_text()

    def test_narrow_catch_is_clean(self, check_tree):
        source = (
            "try:\n"
            "    work()\n"
            "except (KeyError, ValueError):\n"
            "    result = None\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert result.ok


class TestSuppression:
    def test_inline_pragma_silences(self, check_tree):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception:  # repro: allow[exceptions] — degrade\n"
            "    result = None\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert result.ok
        assert result.suppressed == 1

"""``resource-lifetime``: handle lifetimes and atomic-write fixtures."""

from __future__ import annotations

import pytest

PKG = {"pkg/__init__.py": '"""Fixture package."""\n'}

RULE = ["resource-lifetime"]


def findings(check_tree, files, **kwargs):
    return check_tree({**PKG, **files}, rule_ids=RULE, **kwargs).findings


def module(body: str) -> dict[str, str]:
    import textwrap

    return {
        "pkg/mod.py": (
            '"""Mod."""\n\nimport numpy as np\n\n'
            + textwrap.dedent(body)
        ),
    }


class TestHandleLifetimes:
    def test_unowned_np_load_is_flagged(self, check_tree):
        found = findings(check_tree, module('''\
            def load(path, out):
                """Load."""
                archive = np.load(path)
                out.value = archive["x"]
            '''))
        assert len(found) == 1
        assert "never closed, returned, or handed off" in found[0].message

    def test_witness_names_binding_and_scope(self, check_tree):
        (finding,) = findings(check_tree, module('''\
            def load(path, out):
                """Load."""
                archive = np.load(path)
                out.value = archive["x"]
            '''))
        notes = [step.note for step in finding.witness]
        assert notes == [
            "np.load archive/memmap bound to `archive` here",
            "no close()/return/hand-off of `archive` in load()",
        ]

    def test_with_block_is_clean(self, check_tree):
        assert not findings(check_tree, module('''\
            def load(path):
                """Load."""
                with np.load(path) as archive:
                    return archive["x"]
            '''))

    def test_explicit_close_is_clean(self, check_tree):
        assert not findings(check_tree, module('''\
            def load(path):
                """Load."""
                archive = np.load(path)
                data = archive["x"]
                archive.close()
                return data
            '''))

    def test_returned_handle_transfers_ownership(self, check_tree):
        assert not findings(check_tree, module('''\
            def acquire(path):
                """Open and hand the memmap to the caller."""
                block = np.load(path, mmap_mode="r")
                return block
            '''))

    def test_self_store_requires_close_on_owner(self, check_tree):
        found = findings(check_tree, module('''\
            class Store:
                """Keeps a memmap resident without a release path."""

                def __init__(self, path):
                    """Init."""
                    self.block = np.load(path, mmap_mode="r")
            '''))
        assert len(found) == 1
        assert "exposes no close()" in found[0].message

    def test_self_store_with_close_is_clean(self, check_tree):
        assert not findings(check_tree, module('''\
            class Store:
                """Keeps a memmap resident behind close()."""

                def __init__(self, path):
                    """Init."""
                    self.block = np.load(path, mmap_mode="r")

                def close(self):
                    """Release."""
                    self.block = None
            '''))

    def test_anonymous_mmap_is_exempt(self, check_tree):
        assert not findings(check_tree, module('''\
            import mmap

            def shared(n):
                """Anonymous buffer — reclaimed with the array by GC."""
                buf = mmap.mmap(-1, n)
                return np.frombuffer(buf, dtype=np.uint8)
            '''))


class TestAtomicWrites:
    def test_write_text_is_flagged(self, check_tree):
        found = findings(check_tree, module('''\
            def dump(path, payload):
                """Dump."""
                path.write_text(payload)
            '''))
        assert len(found) == 1
        assert "route it through repro.resilience.artefacts.atomic_write" \
            in found[0].message

    def test_write_mode_open_is_flagged(self, check_tree):
        found = findings(check_tree, module('''\
            def dump(path, payload):
                """Dump."""
                with open(path, "w") as handle:
                    handle.write(payload)
            '''))
        assert len(found) == 1
        assert "write-mode open('w') bypasses atomic_write" \
            in found[0].message

    def test_read_mode_open_is_clean(self, check_tree):
        assert not findings(check_tree, module('''\
            def slurp(path):
                """Slurp."""
                with open(path, "r") as handle:
                    return handle.read()
            '''))

    def test_np_save_onto_bare_path_is_flagged(self, check_tree):
        found = findings(check_tree, module('''\
            def dump(arr):
                """Dump."""
                target = "out.npy"
                np.save(target, arr)
            '''))
        assert len(found) == 1
        assert "onto a bare path bypasses atomic_write" in found[0].message

    def test_np_save_into_atomic_handle_is_clean(self, check_tree):
        assert not findings(check_tree, module('''\
            from repro.resilience.artefacts import atomic_write

            def dump(path, arr):
                """Dump."""
                with atomic_write(path, "wb") as handle:
                    np.save(handle, arr)
            '''))

    def test_pragma_suppresses(self, check_tree):
        result = check_tree({**PKG, **module('''\
            def dump(path, payload):
                """Dump."""
                # repro: allow[resource-lifetime] — fixture justification
                path.write_text(payload)
            ''')}, rule_ids=RULE)
        assert result.ok
        assert result.suppressed == 1


class TestSrcRegressions:
    """Pin the real fixes this rule surfaced in the shipping code."""

    @pytest.fixture(scope="class")
    def repo(self):
        from pathlib import Path

        return Path(__file__).resolve().parents[2]

    def test_load_bpr_context_manages_its_archive(self, repo):
        source = (repo / "src/repro/app/persistence.py").read_text(
            encoding="utf-8"
        )
        assert "with np.load(path, allow_pickle=False) as archive:" in source

    def test_bench_reports_go_through_atomic_write(self, repo):
        for relpath in (
            "src/repro/parallel/bench.py",
            "src/repro/perf/fastpath.py",
            "src/repro/perf/scalebench.py",
            "src/repro/perf/servebench.py",
            "src/repro/perf/trainbench.py",
        ):
            source = (repo / relpath).read_text(encoding="utf-8")
            assert "atomic_write" in source, relpath
            assert ".write_text(" not in source, relpath

    def test_user_shard_store_exposes_a_lifecycle(self, repo):
        from repro.retrieval.shards import UserShardStore

        assert callable(UserShardStore.close)
        assert hasattr(UserShardStore, "__enter__")
        assert hasattr(UserShardStore, "__exit__")

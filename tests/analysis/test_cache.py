"""Incremental cache: hits are parse-free and byte-identical.

The cache keys post-pragma findings on the analyzed sources' digests
and the active rules' versions (:mod:`repro.analysis.cache`); these
tests pin the hit/miss contract end to end through ``run_check``.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_check
from repro.analysis.rules.seedlineage import SeedLineageRule

from .conftest import build_tree

PKG = {"pkg/__init__.py": '"""Fixture package."""\n'}

RULE = ["seed-lineage"]

MOD = '''\
    """Mod."""

    import numpy as np

    def draw():
        """Draw."""
        return np.random.default_rng(7)

    def other():
        """Other."""
        # repro: allow[seed-lineage] — fixture justification
        return np.random.default_rng(8)
'''


@pytest.fixture
def tree(tmp_path):
    """A fixture package with one live and one suppressed finding."""
    return build_tree(tmp_path / "proj", {**PKG, "pkg/mod.py": MOD})


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def check(tree, cache_dir, **kwargs):
    return run_check(
        [tree], root=tree, rule_ids=RULE, cache_dir=cache_dir, **kwargs
    )


class TestHits:
    def test_warm_run_is_byte_identical(self, tree, cache_dir):
        cold = check(tree, cache_dir)
        warm = check(tree, cache_dir)
        assert not cold.from_cache
        assert warm.from_cache
        assert warm.render_text() == cold.render_text()
        assert warm.render_json() == cold.render_json()
        assert warm.render_sarif() == cold.render_sarif()
        assert warm.suppressed == cold.suppressed == 1

    def test_hit_restores_witness_trails(self, tmp_path, cache_dir):
        tree = build_tree(tmp_path / "proj", {**PKG, "pkg/mod.py": '''\
            """Mod."""

            import numpy as np

            def draw():
                """Draw."""
                rng = np.random.default_rng(1234)
                return helper(rng)

            def helper(gen):
                """Help."""
                return gen.integers(0, 10)
        '''})
        cold = check(tree, cache_dir)
        warm = check(tree, cache_dir)
        assert warm.from_cache
        assert [f.witness for f in warm.findings] == [
            f.witness for f in cold.findings
        ]
        assert any(f.witness for f in warm.findings)

    def test_hit_path_never_parses(self, tree, cache_dir, monkeypatch):
        check(tree, cache_dir)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache hit rebuilt the project model")

        monkeypatch.setattr("repro.analysis.runner.build_project", boom)
        assert check(tree, cache_dir).from_cache

    def test_entry_lands_in_the_cache_dir(self, tree, cache_dir):
        check(tree, cache_dir)
        assert list(cache_dir.glob("*.json"))


class TestMisses:
    def test_no_cache_dir_disables_caching(self, tree, cache_dir):
        check(tree, cache_dir)  # prime
        result = run_check([tree], root=tree, rule_ids=RULE, cache_dir=None)
        assert not result.from_cache

    def test_source_edit_invalidates(self, tree, cache_dir):
        check(tree, cache_dir)
        mod = tree / "pkg" / "mod.py"
        mod.write_text(
            mod.read_text(encoding="utf-8") + "\n# trailing comment\n",
            encoding="utf-8",
        )
        assert not check(tree, cache_dir).from_cache

    def test_pragma_edit_invalidates(self, tree, cache_dir):
        """Suppression lives inside the cache key, not on top of it."""
        cold = check(tree, cache_dir)
        assert len(cold.findings) == 1
        mod = tree / "pkg" / "mod.py"
        mod.write_text(
            mod.read_text(encoding="utf-8").replace(
                "return np.random.default_rng(7)",
                "return np.random.default_rng(7)  "
                "# repro: allow[seed-lineage] — fixture justification",
            ),
            encoding="utf-8",
        )
        edited = check(tree, cache_dir)
        assert not edited.from_cache
        assert edited.ok
        assert edited.suppressed == 2

    def test_rule_version_bump_invalidates(
        self, tree, cache_dir, monkeypatch
    ):
        check(tree, cache_dir)
        monkeypatch.setattr(SeedLineageRule, "version", 999)
        assert not check(tree, cache_dir).from_cache

    def test_corrupt_entry_is_a_silent_miss(self, tree, cache_dir):
        check(tree, cache_dir)
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json", encoding="utf-8")
        result = check(tree, cache_dir)
        assert not result.from_cache
        assert len(result.findings) == 1

"""Span-aware pragma scoping regressions.

The naive model — a pragma covers its own line and the next — breaks as
soon as a decorator or a wrapped call pushes the flagged line away from
the pragma. These tests pin the three span rules in
:func:`repro.analysis.suppress.pragma_line_map`.
"""

from __future__ import annotations

from repro.analysis.rules.docs import DocstringRule
from repro.analysis.suppress import allowed_rules

PKG = {"pkg/__init__.py": '"""Fixture package."""\n'}


class TestPragmaParsing:
    def test_comma_separated_ids_and_justification(self):
        line = "x = 1  # repro: allow[seed-lineage, dtype-tier] — why"
        assert allowed_rules(line) == {"seed-lineage", "dtype-tier"}

    def test_markdown_comment_form(self):
        assert allowed_rules("<!-- repro: allow[links] -->") == {"links"}

    def test_plain_comment_is_not_a_pragma(self):
        assert allowed_rules("# allow[seed-lineage]") == set()


class TestDecoratedDefSpan:
    DECORATED = '''\
        """Mod."""

        def deco(fn):
            """Deco."""
            return fn

        @deco
        def helper():
            return 1
    '''

    def test_finding_lands_on_the_def_line(self, check_tree):
        """Control: the decorator separates pragma slot and def line."""
        result = check_tree(
            {**PKG, "pkg/mod.py": self.DECORATED},
            rules=[DocstringRule(packages=("pkg",))],
        )
        (finding,) = result.findings
        assert finding.line == 8  # two lines below the pragma slot

    def test_pragma_above_decorator_covers_the_def_line(self, check_tree):
        files = {**PKG, "pkg/mod.py": self.DECORATED.replace(
            "@deco",
            "# repro: allow[docstrings] — fixture justification\n"
            "        @deco",
        )}
        result = check_tree(files, rules=[DocstringRule(packages=("pkg",))])
        assert result.ok
        assert result.suppressed == 1


class TestMultiLineStatementSpan:
    WRAPPED = '''\
        """Mod."""

        import numpy as np

        def draw():
            """Draw."""
            return np.random.default_rng(
                1234,
            ){pragma}
    '''

    def test_finding_lands_on_the_opening_line(self, check_tree):
        result = check_tree(
            {**PKG, "pkg/mod.py": self.WRAPPED.format(pragma="")},
            rule_ids=["seed-lineage"],
        )
        (finding,) = result.findings
        assert finding.line == 7  # two lines above the closing paren

    def test_trailing_pragma_covers_the_whole_span(self, check_tree):
        files = {**PKG, "pkg/mod.py": self.WRAPPED.format(
            pragma="  # repro: allow[seed-lineage] — fixture justification"
        )}
        result = check_tree(files, rule_ids=["seed-lineage"])
        assert result.ok
        assert result.suppressed == 1


class TestCompoundBodyIsNotCovered:
    def test_header_pragma_does_not_leak_into_the_body(self, check_tree):
        """A def-header pragma must not silence findings inside it."""
        result = check_tree({**PKG, "pkg/mod.py": '''\
            """Mod."""

            import numpy as np

            # repro: allow[seed-lineage] — header only
            def draw():
                """Draw."""
                value = 7
                return np.random.default_rng(value)
        '''}, rule_ids=["seed-lineage"])
        assert not result.ok
        assert result.suppressed == 0
        (finding,) = result.findings
        assert finding.line == 9

"""``dtype-tier``: flag/no-flag fixtures and a witness golden."""

from __future__ import annotations

PKG = {"pkg/__init__.py": '"""Fixture package."""\n'}

RULE = ["dtype-tier"]


def findings(check_tree, files):
    return check_tree({**PKG, **files}, rule_ids=RULE).findings


def tiered(body: str) -> dict[str, str]:
    return {
        "pkg/kern.py": f'''\
            """Kern."""

            import numpy as np


            # repro: tier[float32]
            def hot(V, P, idx):
                """Hot path."""
            {body}
        ''',
    }


class TestAnnotationGating:
    def test_unannotated_function_is_never_checked(self, check_tree):
        assert not findings(check_tree, {
            "pkg/kern.py": '''\
                """Kern."""

                import numpy as np

                def cold(V, idx, updates):
                    """Reference tier — float64 is fine here."""
                    np.add.at(V, idx, updates)
                    return np.zeros(4)
            ''',
        })

    def test_add_at_flagged_inside_tier(self, check_tree):
        found = findings(check_tree, tiered(
            "    np.add.at(V, idx, P)"
        ))
        assert len(found) == 1
        assert "np.add.at on a tier[float32] hot path" in found[0].message

    def test_pragma_suppresses(self, check_tree):
        result = check_tree({**PKG, **tiered(
            "    np.add.at(V, idx, P)  "
            "# repro: allow[dtype-tier] — fixture justification"
        )}, rule_ids=RULE)
        assert result.ok
        assert result.suppressed == 1


class TestExplicitFloat64:
    def test_dtype_kwarg_flagged(self, check_tree):
        found = findings(check_tree, tiered(
            "    return np.zeros(4, dtype=np.float64)"
        ))
        assert len(found) == 1
        assert "explicit float64 dtype" in found[0].message

    def test_astype_float64_flagged(self, check_tree):
        found = findings(check_tree, tiered(
            "    return V.astype(np.float64)"
        ))
        assert len(found) == 1
        assert ".astype(float64) upcast" in found[0].message

    def test_bare_constructor_flagged(self, check_tree):
        found = findings(check_tree, tiered(
            "    return np.zeros(4)"
        ))
        assert len(found) == 1
        assert "without dtype= defaults to float64" in found[0].message

    def test_float32_constructor_clean(self, check_tree):
        assert not findings(check_tree, tiered(
            "    return np.zeros(4, dtype=np.float32)"
        ))


class TestBincountAdaptation:
    def test_unwrapped_bincount_flagged(self, check_tree):
        found = findings(check_tree, tiered(
            "    return np.bincount(idx, weights=P, minlength=4)"
        ))
        assert len(found) == 1
        assert "np.bincount accumulates in float64" in found[0].message

    def test_adapted_bincount_clean(self, check_tree):
        assert not findings(check_tree, tiered(
            "    return np.bincount(idx, weights=P, minlength=4)"
            ".astype(V.dtype)"
        ))


class TestPromotionFlow:
    def test_division_result_into_matmul_flagged(self, check_tree):
        found = findings(check_tree, tiered(
            "    scale = V / 3\n"
            "                return np.dot(scale, P)"
        ))
        assert len(found) == 1
        assert (
            "float64 operand `scale` flows into dot()" in found[0].message
        )

    def test_witness_names_promotion_and_sink(self, check_tree):
        (finding,) = findings(check_tree, tiered(
            "    scale = V / 3\n"
            "                return np.dot(scale, P)"
        ))
        notes = [step.note for step in finding.witness]
        assert notes == [
            "`scale` becomes float64 here",
            "`scale` reaches dot() unadapted",
        ]

    def test_adapted_operand_is_clean(self, check_tree):
        assert not findings(check_tree, tiered(
            "    scale = (V / 3).astype(np.float32)\n"
            "                return np.dot(scale, P)"
        ))

    def test_matmul_operator_flagged(self, check_tree):
        found = findings(check_tree, tiered(
            "    scale = V / 3\n"
            "                return scale @ P"
        ))
        assert len(found) == 1
        assert "flows into @()" in found[0].message

    def test_unknown_dtype_never_flags(self, check_tree):
        """Parameters have unknown dtype — the rule must stay silent."""
        assert not findings(check_tree, tiered(
            "    return np.dot(V, P)"
        ))

    def test_f64_crossing_into_annotated_peer_flagged(self, check_tree):
        found = findings(check_tree, {
            "pkg/kern.py": '''\
                """Kern."""

                import numpy as np


                # repro: tier[float32]
                def caller(V, P):
                    """Caller."""
                    scale = V / 3
                    return callee(scale, P)


                # repro: tier[float32]
                def callee(a, b):
                    """Callee."""
                    return np.dot(a, b)
            ''',
        })
        assert len(found) == 1
        assert "flows into callee()" in found[0].message


class TestRealKernelStaysClean:
    def test_shipping_bpr_kernel_is_promotion_free(self, tmp_path):
        """The annotated fast tier in src/ passes its own rule."""
        from pathlib import Path

        from repro.analysis import run_check

        repo = Path(__file__).resolve().parents[2]
        result = run_check(
            [repo / "src" / "repro" / "core" / "bpr_kernel.py"],
            root=repo,
            rule_ids=RULE,
        )
        assert result.ok, "\n" + result.render_text()

"""``seed-lineage``: flag/no-flag fixtures and witness-path goldens."""

from __future__ import annotations

import pytest

PKG = {"pkg/__init__.py": '"""Fixture package."""\n'}

RULE = ["seed-lineage"]


def findings(check_tree, files, **kwargs):
    return check_tree({**PKG, **files}, rule_ids=RULE, **kwargs).findings


class TestRawConstruction:
    def test_raw_default_rng_is_flagged(self, check_tree):
        found = findings(check_tree, {
            "pkg/mod.py": '''\
                """Mod."""

                import numpy as np

                def draw():
                    """Draw."""
                    return np.random.default_rng(7)
            ''',
        })
        assert [f.rule for f in found] == ["seed-lineage"]
        assert "outside the seed lineage" in found[0].message

    def test_make_rng_is_sanctioned(self, check_tree):
        assert not findings(check_tree, {
            "pkg/mod.py": '''\
                """Mod."""

                from repro.rng import make_rng

                def draw():
                    """Draw."""
                    return make_rng(7)
            ''',
        })

    def test_pragma_suppresses(self, check_tree):
        result = check_tree({**PKG, "pkg/mod.py": '''\
            """Mod."""

            import numpy as np

            def draw():
                """Draw."""
                # repro: allow[seed-lineage] — fixture justification
                return np.random.default_rng(7)
        '''}, rule_ids=RULE)
        assert result.ok
        assert result.suppressed == 1


class TestInterproceduralTrace:
    FILES = {
        "pkg/mod.py": '''\
            """Mod."""

            import numpy as np

            def draw():
                """Draw."""
                rng = np.random.default_rng(1234)
                return helper(rng)

            def helper(gen):
                """Help."""
                return gen.integers(0, 10)
        ''',
    }

    def test_stochastic_use_traces_to_raw_constructor(self, check_tree):
        found = findings(check_tree, self.FILES)
        trace = [f for f in found if "traces back" in f.message]
        assert len(trace) == 1
        assert trace[0].line == 12

    def test_witness_path_golden(self, check_tree):
        """The full def-use + call chain is attached to the finding."""
        (finding,) = [
            f for f in findings(check_tree, self.FILES)
            if "traces back" in f.message
        ]
        notes = [step.note for step in finding.witness]
        assert notes == [
            "produced by numpy.random.default_rng()",
            "`rng` bound here",
            "draw() passes `gen` to helper()",
            "generator consumed by .integers() in helper()",
        ]
        assert [step.line for step in finding.witness] == [7, 7, 8, 12]

    def test_unknown_lineage_degrades_silently(self, check_tree):
        """A generator from an unresolvable caller is never flagged."""
        assert not findings(check_tree, {
            "pkg/mod.py": '''\
                """Mod."""

                def helper(gen):
                    """Help — gen arrives from outside the project."""
                    return gen.integers(0, 10)
            ''',
        })

    def test_sanctioned_lineage_is_clean(self, check_tree):
        assert not findings(check_tree, {
            "pkg/mod.py": '''\
                """Mod."""

                from repro.rng import derive_rng

                def draw(seed):
                    """Draw."""
                    rng = derive_rng(seed, "pkg", "draw")
                    return helper(rng)

                def helper(gen):
                    """Help."""
                    return gen.integers(0, 10)
            ''',
        })


class TestPoolBoundary:
    def test_generator_crossing_pool_is_flagged(self, check_tree):
        found = findings(check_tree, {
            "pkg/mod.py": '''\
                """Mod."""

                from repro.parallel.pool import parallel_map
                from repro.rng import make_rng

                def run(tasks):
                    """Run."""
                    rng = make_rng(0)
                    return parallel_map(work, tasks, rng)

                def work(task, rng):
                    """Work."""
                    return task
            ''',
        })
        assert len(found) == 1
        assert "crosses the parallel_map() task boundary" in found[0].message

    def test_task_seeds_crossing_pool_is_clean(self, check_tree):
        assert not findings(check_tree, {
            "pkg/mod.py": '''\
                """Mod."""

                from repro.parallel.pool import parallel_map, task_seeds

                def run(tasks, seed):
                    """Run."""
                    seeds = task_seeds(seed, len(tasks))
                    return parallel_map(work, tasks, seeds)

                def work(task, seed):
                    """Work."""
                    return task
            ''',
        })


class TestSeedSource:
    @pytest.mark.parametrize("expr", ["os.getpid()", "time.time_ns()"])
    def test_volatile_seed_is_flagged(self, check_tree, expr):
        found = findings(check_tree, {
            "pkg/mod.py": f'''\
                """Mod."""

                import os
                import time

                from repro.rng import make_rng

                def draw():
                    """Draw."""
                    return make_rng({expr})
            ''',
        })
        assert len(found) == 1
        assert "not a config value" in found[0].message

    def test_config_seed_is_clean(self, check_tree):
        assert not findings(check_tree, {
            "pkg/mod.py": '''\
                """Mod."""

                from repro.rng import make_rng

                def draw(config_seed):
                    """Draw."""
                    return make_rng(config_seed)
            ''',
        })


class TestScopeReuse:
    def test_reused_constant_scope_is_flagged_at_second_site(
        self, check_tree
    ):
        found = findings(check_tree, {
            "pkg/a.py": '''\
                """A."""

                from repro.rng import derive_rng

                def first(seed):
                    """First."""
                    return derive_rng(seed, "stream", 1)
            ''',
            "pkg/b.py": '''\
                """B."""

                from repro.rng import derive_rng

                def second(seed):
                    """Second."""
                    return derive_rng(seed, "stream", 1)
            ''',
        })
        assert len(found) == 1
        assert found[0].path == "pkg/b.py"
        assert "already used at pkg/a.py:7" in found[0].message
        # The witness names both derivation sites.
        assert [s.path for s in found[0].witness] == [
            "pkg/a.py", "pkg/b.py",
        ]

    def test_distinct_scopes_are_clean(self, check_tree):
        assert not findings(check_tree, {
            "pkg/a.py": '''\
                """A."""

                from repro.rng import derive_rng

                def first(seed):
                    """First."""
                    return derive_rng(seed, "stream", 1)

                def second(seed):
                    """Second."""
                    return derive_rng(seed, "stream", 2)
            ''',
        })

    def test_dynamic_scope_components_are_not_compared(self, check_tree):
        assert not findings(check_tree, {
            "pkg/a.py": '''\
                """A."""

                from repro.rng import derive_rng

                def stream(seed, task):
                    """Per-task stream — dynamic component."""
                    return derive_rng(seed, "task", task)

                def other(seed, task):
                    """Another per-task stream."""
                    return derive_rng(seed, "task", task)
            ''',
        })

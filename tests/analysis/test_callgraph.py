"""Edge cases of the interprocedural call graph in ``dataflow``.

The resolver must stay *sound for its consumers*: whenever a callee
cannot be identified (dynamic dispatch, unresolvable receivers), it
returns no targets rather than a wrong one, so the dataflow rules
degrade silently instead of producing a false finding.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis import build_project, get_dataflow, run_check

from .conftest import build_tree


def make_df(tmp_path: Path, files: dict[str, str]):
    build_tree(tmp_path, files)
    model = build_project([tmp_path], tmp_path)
    return get_dataflow(model)


def calls_in(df, key):
    fi = df.functions[key]
    env = df.function_env(fi)
    out = []
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Call):
            out.extend(df.call_targets(fi, node, env))
    return out


PKG = {"pkg/__init__.py": '"""Fixture package."""\n'}


class TestAliasedImports:
    def test_module_alias_resolves(self, tmp_path):
        df = make_df(tmp_path, {
            **PKG,
            "pkg/util.py": '''\
                """Util."""

                def helper():
                    """Help."""
            ''',
            "pkg/user.py": '''\
                """User."""

                import pkg.util as u

                def caller():
                    """Call."""
                    u.helper()
            ''',
        })
        assert "pkg.util.helper" in calls_in(df, "pkg.user.caller")

    def test_from_import_alias_resolves(self, tmp_path):
        df = make_df(tmp_path, {
            **PKG,
            "pkg/util.py": '''\
                """Util."""

                def helper():
                    """Help."""
            ''',
            "pkg/user.py": '''\
                """User."""

                from pkg.util import helper as h

                def caller():
                    """Call."""
                    h()
            ''',
        })
        assert "pkg.util.helper" in calls_in(df, "pkg.user.caller")


class TestFacadeReExports:
    def test_call_through_package_facade_resolves(self, tmp_path):
        df = make_df(tmp_path, {
            "pkg/__init__.py": '''\
                """Facade re-exporting the implementation."""

                from pkg.impl import helper
            ''',
            "pkg/impl.py": '''\
                """Impl."""

                def helper():
                    """Help."""
            ''',
            "pkg/user.py": '''\
                """User."""

                from pkg import helper

                def caller():
                    """Call."""
                    helper()
            ''',
        })
        assert "pkg.impl.helper" in calls_in(df, "pkg.user.caller")


class TestInheritance:
    def test_inherited_method_resolves_to_base(self, tmp_path):
        df = make_df(tmp_path, {
            **PKG,
            "pkg/classes.py": '''\
                """Classes."""

                class Base:
                    """Base."""

                    def shared(self):
                        """Shared."""

                class Child(Base):
                    """Child."""

                    def caller(self):
                        """Call."""
                        self.shared()
            ''',
        })
        assert "pkg.classes.Base.shared" in calls_in(
            df, "pkg.classes.Child.caller"
        )

    def test_override_wins_over_base(self, tmp_path):
        df = make_df(tmp_path, {
            **PKG,
            "pkg/classes.py": '''\
                """Classes."""

                class Base:
                    """Base."""

                    def shared(self):
                        """Shared."""

                class Child(Base):
                    """Child."""

                    def shared(self):
                        """Override."""

                    def caller(self):
                        """Call."""
                        self.shared()
            ''',
        })
        targets = calls_in(df, "pkg.classes.Child.caller")
        assert "pkg.classes.Child.shared" in targets
        assert "pkg.classes.Base.shared" not in targets

    def test_method_on_attribute_of_declared_class(self, tmp_path):
        df = make_df(tmp_path, {
            **PKG,
            "pkg/classes.py": '''\
                """Classes."""

                class Inner:
                    """Inner."""

                    def work(self):
                        """Work."""

                class Outer:
                    """Outer."""

                    def __init__(self):
                        """Init."""
                        self.inner = Inner()

                    def caller(self):
                        """Call."""
                        self.inner.work()
            ''',
        })
        assert "pkg.classes.Inner.work" in calls_in(
            df, "pkg.classes.Outer.caller"
        )


class TestDynamicDegradesToUnknown:
    """Unresolvable calls yield zero targets — never a wrong one."""

    @pytest.mark.parametrize("body", [
        "getattr(obj, name)()",
        "handlers[key]()",
        "factory()()",
        "(lambda: 1)()",
    ])
    def test_dynamic_call_has_no_targets(self, tmp_path, body):
        df = make_df(tmp_path, {
            **PKG,
            "pkg/dyn.py": f'''\
                """Dyn."""

                def caller(obj, name, handlers, key, factory):
                    """Call."""
                    {body}
            ''',
        })
        # Builtins like ``getattr`` may resolve by name; what matters
        # is that no *project* function is ever wrongly targeted.
        assert not [
            t for t in calls_in(df, "pkg.dyn.caller") if t.startswith("pkg.")
        ]

    def test_closure_and_lambda_never_produce_findings(self, tmp_path):
        """Higher-order plumbing must not trip any dataflow rule."""
        result = run_check([tmp_path], root=build_tree(tmp_path, {
            **PKG,
            "pkg/hof.py": '''\
                """Higher-order fixtures."""

                def outer(seed):
                    """Outer closes over seed."""
                    def inner():
                        """Inner."""
                        return seed + 1
                    return inner

                TABLE = {"inner": outer}

                def dispatch(name):
                    """Dynamic dispatch through a table."""
                    return TABLE[name](0)()

                SQUARE = lambda x: x * x  # noqa: E731
            ''',
        }))
        dataflow_rules = {
            "seed-lineage", "dtype-tier", "lock-order", "resource-lifetime",
        }
        assert not [
            f for f in result.findings if f.rule in dataflow_rules
        ], "\n" + result.render_text()


class TestCallersIndex:
    def test_callers_is_the_inverse_of_call_targets(self, tmp_path):
        df = make_df(tmp_path, {
            **PKG,
            "pkg/util.py": '''\
                """Util."""

                def helper():
                    """Help."""
            ''',
            "pkg/user.py": '''\
                """User."""

                from pkg.util import helper

                def caller():
                    """Call."""
                    helper()
            ''',
        })
        callers = df.callers.get("pkg.util.helper", ())
        assert any(
            fi.canonical == "pkg.user.caller" for fi, _call in callers
        )

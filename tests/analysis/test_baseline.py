"""The baseline workflow: grandfather a backlog, fail on new findings."""

from __future__ import annotations

import json

import pytest

from repro.analysis import load_baseline, run_check, write_baseline
from repro.cli import main

from .conftest import build_tree

BAD = "import random\n"


class TestProgrammatic:
    def test_baseline_grandfathers_existing_findings(self, tmp_path):
        tree = build_tree(tmp_path / "tree", {"mod.py": BAD})
        baseline = tmp_path / "baseline.json"
        first = run_check([tree], root=tree)
        assert not first.ok
        write_baseline(first.findings, baseline)

        second = run_check([tree], root=tree, baseline=baseline)
        assert second.ok
        assert second.baselined == len(first.findings)

    def test_new_findings_still_fail(self, tmp_path):
        tree = build_tree(tmp_path / "tree", {"mod.py": BAD})
        baseline = tmp_path / "baseline.json"
        write_baseline(run_check([tree], root=tree).findings, baseline)

        (tree / "fresh.py").write_text("from time import time\n")
        result = run_check([tree], root=tree, baseline=baseline)
        assert not result.ok
        assert all(
            finding.path == "fresh.py" for finding in result.findings
        )

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        tree = build_tree(tmp_path / "tree", {"mod.py": BAD})
        baseline = tmp_path / "baseline.json"
        write_baseline(run_check([tree], root=tree).findings, baseline)

        (tree / "mod.py").write_text("VALUE = 1\n\nimport random\n")
        result = run_check([tree], root=tree, baseline=baseline)
        assert result.ok, result.render_text()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"not": "a baseline"}))
        with pytest.raises(ValueError, match="not a repro-check baseline"):
            load_baseline(path)


class TestCli:
    def test_write_then_check_round_trip(self, tmp_path, capsys):
        tree = build_tree(tmp_path / "tree", {"mod.py": BAD})
        baseline = tmp_path / "baseline.json"

        code = main(
            ["check", "--root", str(tree),
             "--write-baseline", str(baseline), str(tree)]
        )
        assert code == 0
        assert "baseline written" in capsys.readouterr().out
        assert load_baseline(baseline)

        code = main(
            ["check", "--root", str(tree),
             "--baseline", str(baseline), str(tree)]
        )
        assert code == 0
        assert "baselined" in capsys.readouterr().out

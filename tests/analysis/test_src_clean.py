"""Tier-1 gate: the analyzer runs clean over the repository's own src/.

Every invariant the rules enforce — seeded randomness, the layer DAG,
lock discipline, exception hygiene, docs integrity — holds for the
codebase itself. A finding here means either the code regressed or a
new rule surfaced a real issue; fix it or justify it with an inline
``# repro: allow[rule-id]`` pragma, never by relaxing this test.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_check

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_has_no_findings():
    result = run_check([REPO_ROOT / "src"], root=REPO_ROOT)
    assert result.ok, "\n" + result.render_text()


def test_src_run_covers_the_whole_package():
    result = run_check([REPO_ROOT / "src"], root=REPO_ROOT)
    # A collapse of the file walk would pass the clean gate vacuously.
    assert result.files_checked > 50


def test_scripts_and_benchmarks_clean_modulo_baseline():
    """The auxiliary trees stay clean beyond the committed baseline.

    ``check-baseline.json`` grandfathers the load generator's
    intentionally-skewed stdlib sampling; anything *new* in scripts/ or
    benchmarks/ must be fixed (or justified inline), never silently
    accumulated.
    """
    result = run_check(
        [REPO_ROOT / "scripts", REPO_ROOT / "benchmarks"],
        root=REPO_ROOT,
        baseline=REPO_ROOT / "check-baseline.json",
    )
    assert result.ok, "\n" + result.render_text()
    assert result.files_checked > 15


def test_committed_baseline_carries_no_dead_fingerprints():
    """Every baselined fingerprint still matches a live finding.

    A fixed finding must leave the baseline too, so the file never
    grows stale entries that could mask a regression with the same
    message elsewhere.
    """
    from repro.analysis import load_baseline

    result = run_check(
        [REPO_ROOT / "scripts", REPO_ROOT / "benchmarks"], root=REPO_ROOT
    )
    live = {finding.fingerprint for finding in result.findings}
    assert load_baseline(REPO_ROOT / "check-baseline.json") <= live

"""CLI behaviour of ``python -m repro check``: formats and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

from .conftest import build_tree

BAD = "import random\n"
GOOD = "VALUE = 1\n"


@pytest.fixture
def bad_tree(tmp_path):
    return build_tree(tmp_path, {"mod.py": BAD})


@pytest.fixture
def good_tree(tmp_path):
    return build_tree(tmp_path, {"mod.py": GOOD})


def check(tree, *extra):
    return main(["check", "--root", str(tree), *extra, str(tree)])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, good_tree, capsys):
        assert check(good_tree) == 0
        assert "repro check: clean" in capsys.readouterr().out

    def test_findings_exit_one(self, bad_tree, capsys):
        assert check(bad_tree) == 1
        out = capsys.readouterr().out
        assert "mod.py:1: [determinism]" in out

    def test_unknown_rule_exits_two(self, good_tree, capsys):
        assert check(good_tree, "--rule", "nonsense") == 2
        assert "unknown rule id(s): nonsense" in capsys.readouterr().err

    def test_rule_filter_limits_the_run(self, bad_tree):
        assert check(bad_tree, "--rule", "exceptions") == 0
        assert check(bad_tree, "--rule", "determinism") == 1


class TestJsonSchema:
    def test_payload_shape(self, bad_tree, capsys):
        assert check(bad_tree, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["root"] == str(bad_tree)
        assert payload["files_checked"] == 1
        counts = payload["counts"]
        assert counts["total"] == len(payload["findings"]) == 1
        assert counts["by_rule"] == {"determinism": 1}
        assert counts["suppressed"] == 0
        assert counts["baselined"] == 0
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "severity", "message"}
        assert finding["rule"] == "determinism"
        assert finding["path"] == "mod.py"
        assert finding["line"] == 1
        assert finding["severity"] == "error"

    def test_clean_payload_is_valid_json(self, good_tree, capsys):
        assert check(good_tree, "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

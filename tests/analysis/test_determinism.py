"""The determinism rule: unseeded randomness and wall-clock reads."""

from __future__ import annotations

import pytest

from repro.analysis import DeterminismRule

RULE = [DeterminismRule()]

BAD = """\
import random
import numpy as np
import time
from datetime import datetime


def stochastic():
    np.random.seed(0)
    state = np.random.RandomState(3)
    generator = np.random.default_rng()
    started = time.time()
    stamp = datetime.now()
    return random.random(), state, generator, started, stamp
"""

GOOD = """\
import time

import numpy as np


def seeded(seed):
    generator = np.random.default_rng(seed)
    started = time.perf_counter()
    return generator, started
"""


class TestFlags:
    def test_bad_fixture_flags_every_sin(self, check_tree):
        result = check_tree({"mod.py": BAD}, rules=RULE)
        messages = [finding.message for finding in result.findings]
        assert any("stdlib 'random'" in m for m in messages)
        assert any("seeds process-global numpy state" in m for m in messages)
        assert any("legacy global-state" in m for m in messages)
        assert any("default_rng() without a seed" in m for m in messages)
        assert any("time.time() reads the wall clock" in m for m in messages)
        assert any("datetime.now() reads the wall clock" in m for m in messages)
        assert all(finding.rule == "determinism" for finding in result.findings)

    def test_from_time_import_time_flagged(self, check_tree):
        result = check_tree(
            {"mod.py": "from time import time\n"}, rules=RULE
        )
        assert len(result.findings) == 1
        assert "'from time import time'" in result.findings[0].message

    @pytest.mark.parametrize("name", ["seed", "RandomState"])
    def test_from_numpy_random_import_flagged(self, check_tree, name):
        result = check_tree(
            {"mod.py": f"from numpy.random import {name}\n"}, rules=RULE
        )
        assert len(result.findings) == 1
        assert name in result.findings[0].message


class TestDoesNotFlag:
    def test_good_fixture_is_clean(self, check_tree):
        result = check_tree({"mod.py": GOOD}, rules=RULE)
        assert result.ok, result.render_text()

    def test_perf_timers_allowlisted(self, check_tree):
        source = (
            "import time\n"
            "a = time.perf_counter()\n"
            "b = time.monotonic()\n"
            "c = time.process_time()\n"
            "time.sleep(0)\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert result.ok, result.render_text()

    def test_exempt_module_may_call_unseeded_default_rng(self, check_tree):
        rule = DeterminismRule(exempt_modules={"rng"})
        source = "import numpy as np\ng = np.random.default_rng()\n"
        result = check_tree({"rng.py": source}, rules=[rule])
        assert result.ok, result.render_text()


class TestSuppression:
    def test_inline_pragma_silences(self, check_tree):
        source = (
            "import numpy as np\n"
            "np.random.seed(0)  # repro: allow[determinism] — fixture\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert result.ok
        assert result.suppressed == 1

"""The lock-discipline rule: mixed locked/unlocked attribute mutation."""

from __future__ import annotations

from repro.analysis import LockDisciplineRule

RULE = [LockDisciplineRule()]

MIXED = """\
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def hit(self):
        with self._lock:
            self.count += 1

    def reset(self):
        self.count = 0
"""

CONSISTENT = """\
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def hit(self):
        with self._lock:
            self.count += 1

    def reset(self):
        with self._lock:
            self.count = 0
"""

LOCKED_SUFFIX = """\
import threading


class Machine:
    def __init__(self):
        self._lock = threading.Lock()
        self.state = "closed"

    def trip(self):
        with self._lock:
            self.state = "open"
            self._reopen_locked()

    def _reopen_locked(self):
        self.state = "half-open"
"""

INHERITED = """\
import threading


class Base:
    def __init__(self):
        self._lock = threading.Lock()


class Child(Base):
    def __init__(self):
        super().__init__()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1

    def clear(self):
        self.value = 0
"""


class TestFlags:
    def test_mixed_mutation_is_flagged(self, check_tree):
        result = check_tree({"mod.py": MIXED}, rules=RULE)
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "locks"
        assert "'Stats.count' is mutated in 'reset'" in finding.message
        assert "outside 'with self._lock'" in finding.message

    def test_inherited_lock_ownership_is_enforced(self, check_tree):
        result = check_tree({"mod.py": INHERITED}, rules=RULE)
        assert len(result.findings) == 1
        assert "'Child.value' is mutated in 'clear'" in result.findings[0].message


class TestDoesNotFlag:
    def test_consistent_locking_is_clean(self, check_tree):
        result = check_tree({"mod.py": CONSISTENT}, rules=RULE)
        assert result.ok, result.render_text()

    def test_locked_suffix_counts_as_locked_context(self, check_tree):
        result = check_tree({"mod.py": LOCKED_SUFFIX}, rules=RULE)
        assert result.ok, result.render_text()

    def test_constructor_mutation_is_exempt(self, check_tree):
        # __init__ assigns guarded attributes lock-free: legal, the
        # instance is not shared yet.
        result = check_tree({"mod.py": CONSISTENT}, rules=RULE)
        assert result.ok

    def test_lockless_class_is_ignored(self, check_tree):
        source = (
            "class Plain:\n"
            "    def set(self, v):\n"
            "        self.value = v\n"
        )
        result = check_tree({"mod.py": source}, rules=RULE)
        assert result.ok


class TestSuppression:
    def test_inline_pragma_silences(self, check_tree):
        patched = MIXED.replace(
            "        self.count = 0\n"
            "\n"
            "    def hit",
            "        self.count = 0\n"
            "\n"
            "    def hit",
        ).replace(
            "    def reset(self):\n        self.count = 0",
            "    def reset(self):\n"
            "        self.count = 0  # repro: allow[locks] — single-threaded",
        )
        result = check_tree({"mod.py": patched}, rules=RULE)
        assert result.ok
        assert result.suppressed == 1

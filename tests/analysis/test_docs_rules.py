"""The docs-integrity rules: docstring coverage and markdown links."""

from __future__ import annotations

from repro.analysis import DocstringRule, LinkRule

UNDOCUMENTED = '''\
"""Module docstring present."""


def exposed():
    return 1


class Public:
    """Documented class."""

    def method(self):
        return 2

    def _private(self):
        return 3
'''

DOCUMENTED = '''\
"""Module docstring present."""


def exposed():
    """Documented function."""
    return 1
'''


class TestDocstringRule:
    def test_gated_package_violations_flagged(self, check_tree):
        rule = DocstringRule(packages=("pkg",))
        result = check_tree(
            {"pkg/__init__.py": '"""Pkg."""\n', "pkg/mod.py": UNDOCUMENTED},
            rules=[rule],
        )
        messages = [finding.message for finding in result.findings]
        assert "missing docstring on function exposed" in messages
        assert "missing docstring on function Public.method" in messages
        assert len(result.findings) == 2  # _private is exempt

    def test_missing_module_docstring_flagged(self, check_tree):
        rule = DocstringRule(packages=("pkg",))
        result = check_tree(
            {"pkg/__init__.py": '"""Pkg."""\n', "pkg/mod.py": "VALUE = 1\n"},
            rules=[rule],
        )
        assert any(
            finding.message == "missing docstring on module"
            and finding.line == 1
            for finding in result.findings
        )

    def test_documented_file_is_clean(self, check_tree):
        rule = DocstringRule(packages=("pkg",))
        result = check_tree(
            {"pkg/__init__.py": '"""Pkg."""\n', "pkg/mod.py": DOCUMENTED},
            rules=[rule],
        )
        assert result.ok, result.render_text()

    def test_ungated_package_is_ignored(self, check_tree):
        rule = DocstringRule(packages=("pkg",))
        result = check_tree(
            {"other/__init__.py": "", "other/mod.py": "VALUE = 1\n"},
            rules=[rule],
        )
        assert result.ok


class TestLinkRule:
    def test_broken_link_flagged(self, check_tree):
        result = check_tree(
            {
                "mod.py": "VALUE = 1\n",
                "README.md": "See [the guide](docs/missing.md) here.\n",
            },
            rules=[LinkRule()],
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "links"
        assert finding.path == "README.md"
        assert finding.message == "broken link -> docs/missing.md"

    def test_resolving_and_external_links_clean(self, check_tree):
        result = check_tree(
            {
                "mod.py": "VALUE = 1\n",
                "docs/guide.md": "Back to [readme](../README.md).\n",
                "README.md": (
                    "[guide](docs/guide.md) and [site](https://example.org) "
                    "and [anchor](#section).\n"
                ),
            },
            rules=[LinkRule()],
        )
        assert result.ok, result.render_text()

    def test_markdown_pragma_suppresses(self, check_tree):
        result = check_tree(
            {
                "mod.py": "VALUE = 1\n",
                "README.md": (
                    "[gone](missing.md) "
                    "<!-- repro: allow[links] — intentionally dangling -->\n"
                ),
            },
            rules=[LinkRule()],
        )
        assert result.ok
        assert result.suppressed == 1

"""``lock-order``: cycle detection and mixed-reachability fixtures."""

from __future__ import annotations

PKG = {"pkg/__init__.py": '"""Fixture package."""\n'}

RULE = ["lock-order"]


def findings(check_tree, files, **kwargs):
    return check_tree({**PKG, **files}, rule_ids=RULE, **kwargs).findings


CYCLE = {
    "pkg/ab.py": '''\
        """Two lock owners calling into each other under their locks."""

        import threading


        class Alpha:
            """Holds its lock while poking Beta."""

            def __init__(self, beta: "Beta"):
                """Init."""
                self._lock = threading.Lock()
                self.beta = beta

            def poke(self):
                """Poke."""
                with self._lock:
                    self.beta.nudge()


        class Beta:
            """Holds its lock while poking Alpha."""

            def __init__(self, alpha: "Alpha"):
                """Init."""
                self._lock = threading.Lock()
                self.alpha = alpha

            def nudge(self):
                """Nudge."""
                with self._lock:
                    self.alpha.poke()
    ''',
}


class TestCycles:
    def test_two_class_cycle_is_flagged(self, check_tree):
        found = findings(check_tree, CYCLE)
        assert len(found) == 1
        assert "lock-order cycle" in found[0].message
        assert "Alpha" in found[0].message and "Beta" in found[0].message

    def test_cycle_witness_walks_both_acquisitions(self, check_tree):
        (finding,) = findings(check_tree, CYCLE)
        notes = " / ".join(step.note for step in finding.witness)
        assert "Alpha.poke() holds Alpha._lock" in notes
        assert "calls Beta.nudge() while holding it" in notes
        assert "Beta.nudge() holds Beta._lock" in notes

    def test_consistent_one_way_nesting_is_clean(self, check_tree):
        assert not findings(check_tree, {
            "pkg/ab.py": '''\
                """Alpha nests Beta; Beta never calls back — a DAG."""

                import threading


                class Alpha:
                    """Outer lock."""

                    def __init__(self, beta: "Beta"):
                        """Init."""
                        self._lock = threading.Lock()
                        self.beta = beta

                    def poke(self):
                        """Poke."""
                        with self._lock:
                            self.beta.nudge()


                class Beta:
                    """Inner lock."""

                    def __init__(self):
                        """Init."""
                        self._lock = threading.Lock()
                        self.count = 0

                    def nudge(self):
                        """Nudge."""
                        with self._lock:
                            self.count += 1
            ''',
        })

    def test_edge_through_same_class_helper_is_found(self, check_tree):
        """The locked region extends through same-class helpers."""
        found = findings(check_tree, {
            "pkg/ab.py": '''\
                """The cycle hides one hop behind a helper method."""

                import threading


                class Alpha:
                    """Outer."""

                    def __init__(self, beta: "Beta"):
                        """Init."""
                        self._lock = threading.Lock()
                        self.beta = beta

                    def poke(self):
                        """Poke."""
                        with self._lock:
                            self._relay()

                    def _relay(self):
                        """Helper called with the lock held."""
                        self.beta.nudge()


                class Beta:
                    """Inner."""

                    def __init__(self, alpha: "Alpha"):
                        """Init."""
                        self._lock = threading.Lock()
                        self.alpha = alpha

                    def nudge(self):
                        """Nudge."""
                        with self._lock:
                            self.alpha.poke()
            ''',
        })
        assert len(found) == 1
        assert "lock-order cycle" in found[0].message

    def test_callback_indirection_creates_no_edge(self, check_tree):
        """Dynamic dispatch must under-approximate, never fabricate."""
        assert not findings(check_tree, {
            "pkg/ab.py": '''\
                """The call back into Alpha goes through a callback."""

                import threading


                class Alpha:
                    """Outer."""

                    def __init__(self, beta: "Beta"):
                        """Init."""
                        self._lock = threading.Lock()
                        self.beta = beta

                    def poke(self):
                        """Poke."""
                        with self._lock:
                            self.beta.fire()


                class Beta:
                    """Fires opaque callbacks under its lock."""

                    def __init__(self, listeners):
                        """Init."""
                        self._lock = threading.Lock()
                        self.listeners = listeners

                    def fire(self):
                        """Fire."""
                        with self._lock:
                            for listener in self.listeners:
                                listener()
            ''',
        })


class TestMixedReachability:
    MIXED = {
        "pkg/svc.py": '''\
            """A helper mutating guarded state, reached both ways."""

            import threading


            class Service:
                """Owns a lock but lets _bump escape it on one path."""

                def __init__(self):
                    """Init."""
                    self._lock = threading.Lock()
                    self.hits = 0

                def record(self):
                    """Locked entry point."""
                    with self._lock:
                        self._bump()

                def touch(self):
                    """Unlocked entry point."""
                    self._bump()

                def _bump(self):
                    """Mutates guarded state without acquiring."""
                    self.hits = self.hits + 1
        ''',
    }

    def test_mixed_reachability_is_flagged(self, check_tree):
        found = findings(check_tree, self.MIXED)
        assert len(found) == 1
        finding = found[0]
        assert "self.hits is mutated without Service._lock" in finding.message
        assert "with the lock held" in finding.message
        assert "without it" in finding.message

    def test_witness_names_both_call_sites(self, check_tree):
        (finding,) = findings(check_tree, self.MIXED)
        notes = [step.note for step in finding.witness]
        assert notes[0] == "unguarded mutation of self.hits in Service._bump()"
        assert "reached with the lock held from Service.record()" in notes[1]
        assert "reached without the lock from Service.touch()" in notes[2]

    def test_locked_suffix_convention_is_honoured(self, check_tree):
        """``*_locked`` helpers assert the caller holds the lock."""
        assert not findings(check_tree, {
            "pkg/svc.py": '''\
                """The helper declares its contract in its name."""

                import threading


                class Service:
                    """Owns a lock; helper is suffixed _locked."""

                    def __init__(self):
                        """Init."""
                        self._lock = threading.Lock()
                        self.hits = 0

                    def record(self):
                        """Locked entry point."""
                        with self._lock:
                            self._bump_locked()

                    def _bump_locked(self):
                        """Caller must hold the lock."""
                        self.hits = self.hits + 1
            ''',
        })

    def test_pragma_suppresses(self, check_tree):
        files = dict(self.MIXED)
        files["pkg/svc.py"] = files["pkg/svc.py"].replace(
            "self.hits = self.hits + 1",
            "self.hits = self.hits + 1  "
            "# repro: allow[lock-order] — fixture justification",
        )
        result = check_tree({**PKG, **files}, rule_ids=RULE)
        assert result.ok
        assert result.suppressed == 1

"""Shared fixture machinery for the static-analysis tests.

Every rule test builds a small fixture tree under ``tmp_path`` — with
``__init__.py`` chains, so modules model exactly like the real package —
and runs :func:`repro.analysis.run_check` over it with just the rule
under test.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_check


def build_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialise ``relpath -> source`` under ``root`` (dedented)."""
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


@pytest.fixture
def check_tree(tmp_path):
    """``check_tree(files, **kwargs) -> CheckResult`` over a fixture tree."""

    def run(files: dict[str, str], **kwargs):
        build_tree(tmp_path, files)
        return run_check([tmp_path], root=tmp_path, **kwargs)

    return run

"""The layering rule: DAG direction, spec coverage, and cycle detection."""

from __future__ import annotations

from repro.analysis import LayeringRule, LayerSpec
from repro.analysis.rules.layering import DEFAULT_SPEC

#: Flat fixture architecture: ``low`` below ``high``.
SPEC = LayerSpec(
    layers=(
        ("low", ("low",)),
        ("high", ("high",)),
    ),
)


def rules(spec=SPEC):
    return [LayeringRule(spec)]


class TestDirection:
    def test_downward_import_is_legal(self, check_tree):
        result = check_tree(
            {
                "low/__init__.py": "",
                "low/base.py": "VALUE = 1\n",
                "high/__init__.py": "",
                "high/top.py": "from low import base\n",
            },
            rules=rules(),
        )
        assert result.ok, result.render_text()

    def test_upward_import_is_flagged(self, check_tree):
        result = check_tree(
            {
                "low/__init__.py": "",
                "low/base.py": "from high import top\n",
                "high/__init__.py": "",
                "high/top.py": "VALUE = 1\n",
            },
            rules=rules(),
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "layering"
        assert finding.path == "low/base.py"
        assert (
            "layer 'low' module 'low.base' may not import 'high.top' "
            "from higher layer 'high'" in finding.message
        )

    def test_unmapped_module_is_flagged(self, check_tree):
        result = check_tree(
            {"rogue/__init__.py": "", "rogue/mod.py": "VALUE = 1\n"},
            rules=rules(),
        )
        assert any(
            "belongs to no declared layer" in finding.message
            for finding in result.findings
        )

    def test_override_rehomes_a_module(self, check_tree):
        spec = LayerSpec(
            layers=SPEC.layers,
            overrides={"low.driver": "high"},
        )
        result = check_tree(
            {
                "low/__init__.py": "",
                "low/base.py": "VALUE = 1\n",
                "low/driver.py": "from high import top\n",
                "high/__init__.py": "",
                "high/top.py": "VALUE = 2\n",
            },
            rules=rules(spec),
        )
        assert result.ok, result.render_text()


class TestCycles:
    def test_injected_cycle_is_detected(self, check_tree):
        result = check_tree(
            {
                "low/__init__.py": "",
                "low/alpha.py": "from low import beta\n",
                "low/beta.py": "from low import alpha\n",
            },
            rules=rules(),
        )
        cycles = [
            finding
            for finding in result.findings
            if "import cycle" in finding.message
        ]
        assert len(cycles) == 1
        assert (
            cycles[0].message
            == "import cycle: low.alpha -> low.beta -> low.alpha"
        )
        assert cycles[0].path == "low/alpha.py"

    def test_three_module_cycle_is_detected(self, check_tree):
        result = check_tree(
            {
                "low/__init__.py": "",
                "low/a.py": "from low import b\n",
                "low/b.py": "from low import c\n",
                "low/c.py": "from low import a\n",
            },
            rules=rules(),
        )
        assert any(
            "import cycle: low.a -> low.b -> low.c -> low.a"
            == finding.message
            for finding in result.findings
        )

    def test_acyclic_tree_is_clean(self, check_tree):
        result = check_tree(
            {
                "low/__init__.py": "",
                "low/alpha.py": "from low import beta\n",
                "low/beta.py": "VALUE = 1\n",
            },
            rules=rules(),
        )
        assert result.ok, result.render_text()

    def test_type_checking_back_reference_is_not_a_cycle(self, check_tree):
        result = check_tree(
            {
                "low/__init__.py": "",
                "low/alpha.py": "from low import beta\n",
                "low/beta.py": """\
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from low import alpha
                    """,
            },
            rules=rules(),
        )
        assert result.ok, result.render_text()

    def test_type_checking_else_branch_still_counts(self, check_tree):
        result = check_tree(
            {
                "low/__init__.py": "",
                "low/alpha.py": "from low import beta\n",
                "low/beta.py": """\
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        VALUE = 1
                    else:
                        from low import alpha
                    """,
            },
            rules=rules(),
        )
        assert any(
            "import cycle: low.alpha -> low.beta -> low.alpha"
            == finding.message
            for finding in result.findings
        )


class TestDefaultSpec:
    def test_real_packages_map_to_layers(self):
        assert DEFAULT_SPEC.layer_of("repro.errors")[0] == "foundation"
        assert DEFAULT_SPEC.layer_of("repro.core.bpr")[0] == "core"
        assert DEFAULT_SPEC.layer_of("repro.app.service")[0] == "app"
        assert DEFAULT_SPEC.layer_of("repro.cli")[0] == "drivers"

    def test_overrides_rehome_demo_and_faults(self):
        assert DEFAULT_SPEC.layer_of("repro.obs.demo")[0] == "drivers"
        assert DEFAULT_SPEC.layer_of("repro.parallel.bench")[0] == "drivers"
        assert DEFAULT_SPEC.layer_of("repro.resilience.faults")[0] == "core"

    def test_foreign_modules_are_unmapped(self):
        assert DEFAULT_SPEC.layer_of("numpy.random") is None

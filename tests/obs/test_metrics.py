"""Property and unit tests for the metrics registry.

The invariants promised in :mod:`repro.obs.metrics`'s docstring are pinned
here: bucket counts always sum to the observation count, snapshots are
immutable deep copies, counters are monotone, and the exact-percentile
window agrees with ``numpy.quantile`` bit for bit.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

observations = st.lists(
    st.floats(
        min_value=0.0, max_value=100.0,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=200,
)


class TestHistogramProperties:
    @settings(deadline=None, max_examples=100)
    @given(values=observations)
    def test_bucket_counts_sum_to_observation_count(self, values):
        histogram = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in values:
            histogram.observe(value)
        assert sum(histogram.bucket_counts) == histogram.count == len(values)

    @settings(deadline=None, max_examples=100)
    @given(values=observations)
    def test_sum_and_mean_match_raw_observations(self, values):
        histogram = Histogram("h")
        for value in values:
            histogram.observe(value)
        assert histogram.sum == pytest.approx(sum(values))
        if values:
            assert histogram.mean == pytest.approx(
                sum(values) / len(values)
            )
        else:
            assert histogram.mean == 0.0

    @settings(deadline=None, max_examples=100)
    @given(
        values=st.lists(
            st.floats(
                min_value=0.0, max_value=100.0,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=100,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_percentile_matches_numpy_quantile(self, values, q):
        histogram = Histogram("h", buckets=(1.0, 10.0), window=1000)
        for value in values:
            histogram.observe(value)
        assert histogram.percentile(q) == float(
            np.quantile(np.asarray(values), q)
        )

    @settings(deadline=None, max_examples=50)
    @given(values=observations)
    def test_overflow_bucket_catches_everything_above_last_bound(self, values):
        bounds = (0.5,)
        histogram = Histogram("h", buckets=bounds)
        for value in values:
            histogram.observe(value)
        overflow = sum(1 for v in values if v > bounds[-1])
        assert histogram.bucket_counts[-1] == overflow

    def test_window_is_bounded_and_oldest_first(self):
        histogram = Histogram("h", window=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.window == (2.0, 3.0, 4.0)
        assert histogram.count == 4  # buckets keep the full history

    def test_disabled_window_falls_back_to_bucket_bounds(self):
        histogram = Histogram("h", buckets=(0.1, 1.0, 10.0), window=0)
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.window == ()
        assert histogram.percentile(0.5) == 1.0
        assert histogram.percentile(1.0) == 10.0  # overflow clamps to last

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram("h").percentile(0.5) == 0.0

    def test_percentile_rejects_out_of_range_q(self):
        with pytest.raises(ConfigurationError):
            Histogram("h").percentile(1.5)

    def test_bucket_bounds_must_strictly_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_bucket_bounds_must_be_finite(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, float("inf")))


class TestCounterAndGauge:
    def test_counter_rejects_negative_increment(self):
        counter = Counter("c")
        counter.inc(2.5)
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)
        assert counter.value == 2.5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0

    def test_labelled_children_are_cached_and_order_independent(self):
        counter = Counter("c")
        counter.labels(source="static", outcome="hit").inc()
        counter.labels(outcome="hit", source="static").inc()
        assert counter.labels(source="static", outcome="hit").value == 2.0

    def test_labels_requires_at_least_one_label(self):
        with pytest.raises(ConfigurationError):
            Counter("c").labels()


class TestRegistry:
    def test_create_or_get_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry
        assert registry.names == ("a",)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")
        with pytest.raises(ConfigurationError):
            registry.histogram("a")

    @settings(deadline=None, max_examples=50)
    @given(values=observations)
    def test_snapshot_is_immutable_copy(self, values):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        for value in values:
            histogram.observe(value)

        first = registry.snapshot()
        reference = copy.deepcopy(first)
        # Mutating the snapshot must not reach back into the registry.
        first["counters"]["c"]["value"] = 999.0
        first["histograms"]["h"]["counts"][0] = 999
        assert registry.snapshot() == reference
        # An idle registry snapshots identically twice.
        assert registry.snapshot() == registry.snapshot()

    def test_snapshot_includes_labelled_series(self):
        registry = MetricsRegistry()
        registry.counter("c").labels(source="static").inc(2)
        registry.histogram("h", buckets=(1.0,)).labels(site="a").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["c"]["labels"] == {"source=static": 2.0}
        assert snap["histograms"]["h"]["labels"]["site=a"]["count"] == 1

    def test_reset_zeroes_everything_including_children(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.counter("c").labels(source="x").inc(2)
        histogram = registry.histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        registry.reset()
        assert registry.counter("c").value == 0.0
        assert registry.counter("c").labels(source="x").value == 0.0
        assert histogram.count == 0
        assert histogram.window == ()

    def test_render_lists_every_series(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(0.5)
        rendered = registry.render()
        for fragment in ("counter", "gauge", "histogram", "c", "g", "h"):
            assert fragment in rendered


class TestLatencyPercentilePinning:
    """Satellite: p50/p95/p99 over a known latency sequence are pinned."""

    def test_default_bucket_pinning(self):
        histogram = Histogram(
            "service.latency_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS,
            window=1000,
        )
        latencies = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        for value in latencies:
            histogram.observe(value)
        assert histogram.percentile(0.50) == pytest.approx(0.0505)
        assert histogram.percentile(0.95) == pytest.approx(0.09505)
        assert histogram.percentile(0.99) == pytest.approx(0.09901)
        assert histogram.percentile(0.0) == 0.001
        assert histogram.percentile(1.0) == 0.1


class TestConcurrentReset:
    """Regression: ``registry.reset()`` racing recorders stays consistent.

    The static lock-discipline rule caught ``_reset`` zeroing instrument
    state outside the instrument lock; these tests pin the fixed
    behaviour — a reset must never resurrect a half-applied increment or
    tear a histogram's buckets away from its count.
    """

    def test_counter_reset_under_contention(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("hits")
        stop = threading.Event()

        def resetter() -> None:
            while not stop.is_set():
                registry.reset()

        def worker() -> None:
            for _ in range(2000):
                counter.inc()

        reset_thread = threading.Thread(target=resetter)
        workers = [threading.Thread(target=worker) for _ in range(4)]
        reset_thread.start()
        try:
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
        finally:
            stop.set()
            reset_thread.join()

        # Every surviving increment is whole: a torn read-modify-write
        # would leave a fractional or negative count behind.
        assert counter.value == int(counter.value)
        assert 0 <= counter.value <= 8000
        registry.reset()
        assert counter.value == 0.0

    def test_histogram_reset_keeps_counts_consistent(self):
        import threading

        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0), window=64)
        stop = threading.Event()

        def resetter() -> None:
            while not stop.is_set():
                registry.reset()

        def worker() -> None:
            for index in range(1500):
                histogram.observe((index % 3) * 0.4)

        reset_thread = threading.Thread(target=resetter)
        workers = [threading.Thread(target=worker) for _ in range(4)]
        reset_thread.start()
        try:
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
        finally:
            stop.set()
            reset_thread.join()

        # Quiesced: buckets, sum, and count moved together or not at all.
        assert sum(histogram.bucket_counts) == histogram.count
        assert len(histogram.window) <= 64
        registry.reset()
        assert histogram.count == 0
        assert histogram.window == ()
        assert sum(histogram.bucket_counts) == 0

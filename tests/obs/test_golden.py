"""Golden trace/snapshot test for the fixed-seed instrumented demo.

``run_instrumented_demo(deterministic=True)`` makes the whole
pipeline → fit → evaluate → serve run a pure function of the seed: span
ids come from the seeded id stream, every tracer/service timestamp from
:class:`~repro.obs.trace.TickingClock`. The committed goldens pin the
normalised trace (all spans, ids, nesting, deterministic timings) and
metrics snapshot (all counters, KPI gauges, histogram counts; real
wall-clock fields zeroed by :mod:`repro.obs.golden`).

Regenerate after an intentional instrumentation change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs/test_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.obs.demo import DEMO_KS, run_instrumented_demo
from repro.obs.golden import (
    assert_golden_equal,
    normalize_snapshot,
    normalize_trace,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"
SNAPSHOT_GOLDEN = GOLDEN_DIR / "demo_metrics_snapshot.json"
TRACE_GOLDEN = GOLDEN_DIR / "demo_trace.jsonl"
REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"


@pytest.fixture(scope="module")
def demo_run():
    return run_instrumented_demo(deterministic=True)


def _normalized(run):
    snapshot = normalize_snapshot(run.metrics.snapshot())
    trace = normalize_trace([span.as_dict() for span in run.tracer.spans])
    return snapshot, trace


def _regen(snapshot: dict, trace: list[dict]) -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    SNAPSHOT_GOLDEN.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    TRACE_GOLDEN.write_text(
        "".join(json.dumps(span, sort_keys=True) + "\n" for span in trace),
        encoding="utf-8",
    )


class TestGoldens:
    def test_metrics_snapshot_matches_golden(self, demo_run):
        snapshot, trace = _normalized(demo_run)
        if REGEN:
            _regen(snapshot, trace)
        expected = json.loads(SNAPSHOT_GOLDEN.read_text(encoding="utf-8"))
        assert_golden_equal(snapshot, expected)

    def test_trace_matches_golden(self, demo_run):
        snapshot, trace = _normalized(demo_run)
        if REGEN:
            _regen(snapshot, trace)
        expected = [
            json.loads(line)
            for line in TRACE_GOLDEN.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert_golden_equal(trace, expected)

    def test_demo_run_is_reproducible_in_process(self, demo_run):
        first_snapshot, first_trace = _normalized(demo_run)
        second_snapshot, second_trace = _normalized(
            run_instrumented_demo(deterministic=True)
        )
        assert_golden_equal(first_snapshot, second_snapshot)
        assert_golden_equal(first_trace, second_trace)

    def test_demo_covers_the_whole_request_path(self, demo_run):
        names = {span.name for span in demo_run.tracer.spans}
        for expected in (
            "demo.run", "pipeline.merge", "pipeline.genres", "bpr.fit",
            "bpr.epoch", "eval.fit", "eval.evaluate", "service.request",
            "service.batch",
        ):
            assert expected in names, f"missing span {expected!r}"
        assert demo_run.evaluation.kpis.keys() == set(DEMO_KS)
        assert demo_run.health["status"] == "ok"
        assert demo_run.served_by.get("primary", 0) > 0
        # The second serve pass and the batch answer from the cache.
        snap = demo_run.metrics.snapshot()
        cache = snap["counters"]["service.cache"]["labels"]
        assert cache["outcome=hit"] >= cache["outcome=miss"]

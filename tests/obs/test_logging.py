"""Capture tests for the structured JSON logging setup.

Every emitted line must parse back with ``json.loads``, carry the active
span's trace/span ids, and reconfiguration must replace (not stack) the
handler while leaving the root logger untouched.
"""

from __future__ import annotations

import io
import json
import logging

from repro.obs.logging import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
)
from repro.obs.trace import TickingClock, Tracer


def capture_logger():
    stream = io.StringIO()
    logger = configure_logging(level=logging.DEBUG, stream=stream)
    return logger, stream


def parse_lines(stream: io.StringIO) -> list[dict]:
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line.strip()
    ]


class TestJsonRoundTrip:
    def test_every_record_is_one_parsable_json_line(self):
        logger, stream = capture_logger()
        logger.info("plain message")
        logger.warning("another %s", "message")
        records = parse_lines(stream)
        assert [r["message"] for r in records] == [
            "plain message", "another message"
        ]
        assert [r["level"] for r in records] == ["INFO", "WARNING"]
        assert all(r["logger"] == ROOT_LOGGER_NAME for r in records)
        assert all(isinstance(r["ts"], float) for r in records)

    def test_extra_fields_survive_and_non_json_values_stringify(self):
        logger, stream = capture_logger()
        logger.info(
            "with extras",
            extra={"user_id": "u1", "k": 5, "payload": {1: object()}},
        )
        (record,) = parse_lines(stream)
        assert record["user_id"] == "u1"
        assert record["k"] == 5
        assert isinstance(record["payload"]["1"], str)

    def test_exception_info_lands_in_error_field(self):
        logger, stream = capture_logger()
        try:
            raise ValueError("broken")
        except ValueError:
            logger.exception("operation failed")
        (record,) = parse_lines(stream)
        assert record["error"] == "ValueError: broken"
        assert record["level"] == "ERROR"


class TestTraceCorrelation:
    def test_records_inside_a_span_carry_its_ids(self):
        logger, stream = capture_logger()
        tracer = Tracer(
            seed=3, clock=TickingClock(), cpu_clock=TickingClock()
        )
        logger.info("outside")
        with tracer.span("outer") as outer:
            logger.info("in outer")
            with tracer.span("inner") as inner:
                logger.info("in inner")
        logger.info("after")
        records = parse_lines(stream)
        assert "trace_id" not in records[0]
        assert records[1]["trace_id"] == outer.trace_id
        assert records[1]["span_id"] == outer.span_id
        assert records[2]["span_id"] == inner.span_id
        assert records[2]["trace_id"] == outer.trace_id
        assert "trace_id" not in records[3]


class TestConfiguration:
    def test_reconfigure_replaces_rather_than_stacks_handlers(self):
        _, first_stream = capture_logger()
        logger, second_stream = capture_logger()
        logger.info("only once")
        assert first_stream.getvalue() == ""
        assert len(parse_lines(second_stream)) == 1

    def test_child_loggers_flow_through_the_repro_handler(self):
        logger, stream = capture_logger()
        child = get_logger("pipeline")
        child.info("from the child")
        (record,) = parse_lines(stream)
        assert record["logger"] == f"{ROOT_LOGGER_NAME}.pipeline"

    def test_root_logger_is_untouched_and_propagation_is_off(self):
        logger, _ = capture_logger()
        assert logger.propagate is False
        root_handlers_before = list(logging.getLogger().handlers)
        configure_logging(stream=io.StringIO())
        assert list(logging.getLogger().handlers) == root_handlers_before

"""Overhead and non-interference guarantees of the instrumentation.

Two promises keep observability safe to leave in the hot paths:

- the no-op path (``tracer=None``) hands out one shared ``NULL_SPAN``
  and retains zero memory — instrumented code pays a single ``if``;
- hooks draw no randomness from the training stream, so a fit with
  tracing/metrics/callbacks attached is bit-identical to a bare fit.
"""

from __future__ import annotations

import tracemalloc

import numpy as np

from repro.core.bpr import BPR, BPRConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, TickingClock, Tracer, start_span

OVERHEAD_CONFIG = BPRConfig(epochs=2, seed=7)


class TestNoOpOverhead:
    def test_no_tracer_returns_the_shared_null_span(self):
        spans = {id(start_span(None, "stage", k=i)) for i in range(100)}
        assert spans == {id(NULL_SPAN)}

    def test_null_span_retains_zero_memory(self):
        def run(n: int) -> None:
            for index in range(n):
                with start_span(None, "hot.loop", index=index) as span:
                    span.set_attr("x", index)

        run(100)  # warm up allocator caches and bytecode specialisation
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            run(10_000)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0, (
            f"no-op spans retained {after - before} bytes over 10k entries"
        )

    def test_real_spans_do_allocate_as_a_sanity_check(self):
        tracer = Tracer(
            seed=1, clock=TickingClock(), cpu_clock=TickingClock()
        )
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(100):
                with tracer.span("real"):
                    pass
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before > 0


class TestBitCompatibility:
    def test_instrumented_fit_is_bit_identical_to_bare_fit(
        self, tiny_split, tiny_merged
    ):
        bare = BPR(OVERHEAD_CONFIG)
        bare.fit(tiny_split.train, tiny_merged)

        seen_epochs = []
        instrumented = BPR(
            OVERHEAD_CONFIG,
            callbacks=[seen_epochs.append],
            tracer=Tracer(
                seed=123, clock=TickingClock(), cpu_clock=TickingClock()
            ),
            metrics=MetricsRegistry(),
        )
        instrumented.fit(tiny_split.train, tiny_merged)

        assert np.array_equal(bare.user_factors, instrumented.user_factors)
        assert np.array_equal(bare.item_factors, instrumented.item_factors)
        assert len(seen_epochs) == OVERHEAD_CONFIG.epochs
        assert [e.epoch for e in seen_epochs] == [
            e.epoch for e in bare.history
        ]
        assert [e.updated_fraction for e in seen_epochs] == [
            e.updated_fraction for e in bare.history
        ]

    def test_instrumented_fit_records_spans_and_metrics(
        self, tiny_split, tiny_merged
    ):
        metrics = MetricsRegistry()
        tracer = Tracer(
            seed=5, clock=TickingClock(), cpu_clock=TickingClock()
        )
        model = BPR(OVERHEAD_CONFIG, tracer=tracer, metrics=metrics)
        model.fit(tiny_split.train, tiny_merged)

        names = [span.name for span in tracer.spans]
        assert names.count("bpr.epoch") == OVERHEAD_CONFIG.epochs
        assert names[-1] == "bpr.fit"
        assert metrics.counter("bpr.epochs").value == OVERHEAD_CONFIG.epochs
        epoch_hist = metrics.histogram("bpr.epoch_seconds")
        assert epoch_hist.count == OVERHEAD_CONFIG.epochs
        batch_hist = metrics.histogram("bpr.batch_seconds")
        assert batch_hist.count > 0

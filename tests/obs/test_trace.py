"""Property and unit tests for the tracer.

Pins the docstring invariants: span trees are well-nested (every child's
interval lies inside its parent's, timestamps monotone under a monotone
clock), ids are a deterministic function of the seed, exceptions mark the
span and propagate, and the JSONL export round-trips.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.obs.report import load_trace_jsonl, stage_profiles
from repro.obs.trace import (
    NULL_SPAN,
    STATUS_ERROR,
    STATUS_OK,
    TickingClock,
    Tracer,
    active_ids,
    start_span,
)


def make_tracer(seed: int = 7) -> Tracer:
    return Tracer(
        seed=seed,
        clock=TickingClock(start=100.0, step=0.5),
        cpu_clock=TickingClock(start=0.0, step=0.25),
    )


# Random nesting scripts: each entry is how many children to open at that
# depth (depth <= 3 keeps the tree small but genuinely nested).
nesting_scripts = st.lists(
    st.integers(min_value=0, max_value=3), min_size=1, max_size=4
)


def _run_script(tracer: Tracer, script, depth: int = 0) -> None:
    if depth >= len(script):
        return
    for index in range(script[depth] or 1):
        with tracer.span(f"level{depth}.{index}"):
            _run_script(tracer, script, depth + 1)


class TestWellNestedness:
    @settings(deadline=None, max_examples=50)
    @given(script=nesting_scripts)
    def test_children_nest_inside_parents_with_monotone_timestamps(
        self, script
    ):
        tracer = make_tracer()
        _run_script(tracer, script)
        spans = {span.span_id: span for span in tracer.spans}
        assert spans, "script opened no spans"
        for span in spans.values():
            assert span.start is not None and span.end is not None
            assert span.end >= span.start
            if span.parent_id is not None:
                parent = spans[span.parent_id]
                assert parent.start <= span.start
                assert span.end <= parent.end
                assert span.trace_id == parent.trace_id

    @settings(deadline=None, max_examples=50)
    @given(script=nesting_scripts)
    def test_completion_order_lists_children_before_parents(self, script):
        tracer = make_tracer()
        _run_script(tracer, script)
        seen = set()
        for span in tracer.spans:
            if span.parent_id is not None:
                assert span.parent_id not in seen
            seen.add(span.span_id)

    def test_sibling_spans_share_trace_and_parent(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == root.span_id
        assert a.trace_id == b.trace_id == root.trace_id
        assert a.end <= b.start  # monotone clock orders the siblings

    def test_separate_roots_start_separate_traces(self):
        tracer = make_tracer()
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.trace_id != second.trace_id
        assert first.parent_id is None and second.parent_id is None


class TestDeterminism:
    def test_same_seed_replays_identical_ids(self):
        runs = []
        for _ in range(2):
            tracer = make_tracer(seed=99)
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
            runs.append(
                [(s.trace_id, s.span_id, s.parent_id) for s in tracer.spans]
            )
        assert runs[0] == runs[1]

    def test_different_seeds_diverge(self):
        ids = set()
        for seed in (1, 2):
            tracer = make_tracer(seed=seed)
            with tracer.span("root") as span:
                pass
            ids.add(span.span_id)
        assert len(ids) == 2

    def test_ticking_clock_makes_timings_pure_call_order(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            pass
        assert root.start == 100.0
        assert root.end == 100.5
        assert root.cpu_seconds == 0.25


class TestStatusAndErrors:
    def test_exception_marks_span_and_propagates(self):
        tracer = make_tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.status == STATUS_ERROR
        assert span.error == "ValueError: boom"

    def test_clean_exit_is_ok(self):
        tracer = make_tracer()
        with tracer.span("fine"):
            pass
        assert tracer.spans[0].status == STATUS_OK
        assert tracer.spans[0].error is None

    def test_active_ids_follow_the_span_stack(self):
        tracer = make_tracer()
        assert active_ids() == (None, None)
        with tracer.span("outer") as outer:
            assert active_ids() == (outer.trace_id, outer.span_id)
            with tracer.span("inner") as inner:
                assert active_ids() == (inner.trace_id, inner.span_id)
            assert active_ids() == (outer.trace_id, outer.span_id)
        assert active_ids() == (None, None)


class TestNullSpan:
    def test_start_span_without_tracer_returns_shared_instance(self):
        assert start_span(None, "anything", k=1) is NULL_SPAN
        assert start_span(None, "other") is NULL_SPAN

    def test_null_span_accepts_the_full_span_protocol(self):
        with start_span(None, "noop") as span:
            span.set_attr("a", 1)
            span.set_attrs(b=2)

    def test_traced_call_site_uses_real_span_when_tracer_given(self):
        tracer = make_tracer()
        with start_span(tracer, "real", k=5) as span:
            span.set_attrs(extra=True)
        assert tracer.spans[0].attrs == {"k": 5, "extra": True}


class TestExportAndLimits:
    def test_export_jsonl_round_trips(self, tmp_path):
        tracer = make_tracer()
        with tracer.span("root", stage="demo"):
            with tracer.span("child"):
                pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        spans = load_trace_jsonl(path)
        assert [s["name"] for s in spans] == ["child", "root"]
        assert spans == [json.loads(json.dumps(s)) for s in spans]
        assert spans[1]["attrs"] == {"stage": "demo"}

    def test_stage_profiles_aggregate_by_name(self):
        tracer = make_tracer()
        for _ in range(3):
            with tracer.span("stage.a"):
                pass
        with pytest.raises(RuntimeError):
            with tracer.span("stage.b"):
                raise RuntimeError("x")
        profiles = {p.name: p for p in stage_profiles(tracer.spans)}
        assert profiles["stage.a"].calls == 3
        assert profiles["stage.a"].errors == 0
        assert profiles["stage.b"].errors == 1
        assert profiles["stage.a"].wall_seconds == pytest.approx(1.5)

    def test_max_spans_drops_oldest(self):
        tracer = Tracer(
            seed=1, clock=TickingClock(), cpu_clock=TickingClock(),
            max_spans=2,
        )
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans] == ["s2", "s3"]

    def test_clear_empties_finished_spans(self):
        tracer = make_tracer()
        with tracer.span("root"):
            pass
        tracer.clear()
        assert tracer.spans == ()

    def test_span_name_must_be_non_empty(self):
        with pytest.raises(ConfigurationError):
            make_tracer().span("")

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)

    def test_ticking_clock_step_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TickingClock(step=0.0)

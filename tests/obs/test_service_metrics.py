"""Service-level metrics regressions.

The chaos-marked class is the degradation-source regression the issue
asks for: every ``served_by`` source that :class:`ServiceStats` records
under fault injection must also be visible in the shared metrics
registry — the health report and the metrics snapshot can never tell
different stories about where responses came from.
"""

from __future__ import annotations

import pytest

from repro.app.service import (
    SERVED_BY_MOST_READ,
    SERVED_BY_PRIMARY,
    RecommendationRequest,
    RecommendationService,
)
from repro.core.most_read import MostReadItems
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TickingClock, Tracer
from repro.resilience.breaker import STATE_OPEN, CircuitBreaker
from repro.resilience.faults import (
    SITE_MODEL_SCORE,
    FaultInjector,
    FaultyModel,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_service(
    tiny_bpr, tiny_split, tiny_merged,
    injector=None, with_cold_start=True, **kwargs
):
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=0.5, min_calls=4, window=8,
        cooldown_seconds=10.0, clock=clock,
    )
    cold_start = None
    if with_cold_start:
        cold_start = MostReadItems()
        cold_start.fit(tiny_split.train, tiny_merged)
    model = tiny_bpr if injector is None else FaultyModel(tiny_bpr, injector)
    metrics = MetricsRegistry()
    service = RecommendationService(
        model,
        tiny_split.train,
        tiny_merged,
        cold_start_fallback=cold_start,
        cache_size=kwargs.pop("cache_size", 0),
        breaker=breaker,
        clock=clock,
        metrics=metrics,
        **kwargs,
    )
    return service, clock, metrics


def served_counter_labels(metrics: MetricsRegistry) -> dict[str, float]:
    snap = metrics.snapshot()
    return {
        key.removeprefix("source="): value
        for key, value in
        snap["counters"]["service.served"].get("labels", {}).items()
    }


@pytest.fixture()
def users(tiny_split):
    return [str(u) for u in list(tiny_split.train.users.ids)[:12]]


@pytest.mark.chaos
class TestDegradationSourcesVisibleInMetrics:
    def test_every_stats_degradation_source_appears_in_registry(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        service, _, metrics = make_service(
            tiny_bpr, tiny_split, tiny_merged, injector,
            degrade_unknown_users=True,
        )
        for user in users[:4]:
            service.recommend(RecommendationRequest(user_id=user, k=5))
        service.recommend(RecommendationRequest(user_id="nobody", k=5))

        stats_sources = set(service.stats.degradations)
        assert stats_sources  # faults guarantee at least one degradation
        snap = metrics.snapshot()
        degraded_labels = {
            key.removeprefix("source=")
            for key in
            snap["counters"]["service.degraded"].get("labels", {})
        }
        assert stats_sources <= degraded_labels
        # Counts agree series by series, not just the label sets.
        for source, count in service.stats.degradations.items():
            assert (
                snap["counters"]["service.degraded"]["labels"][
                    f"source={source}"
                ]
                == count
            )

    def test_all_four_sources_reach_the_served_counter(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        # Script: first call fails (most-read fallback), rest succeed.
        injector = FaultInjector(
            script={SITE_MODEL_SCORE: [True]}, seed=0
        )
        service, _, metrics = make_service(
            tiny_bpr, tiny_split, tiny_merged, injector,
            degrade_unknown_users=True,
        )
        service.recommend(RecommendationRequest(user_id=users[0], k=5))
        service.recommend(RecommendationRequest(user_id=users[1], k=5))
        service.recommend(RecommendationRequest(user_id="stranger", k=5))

        served = served_counter_labels(metrics)
        # One scripted fault + one unknown user both land on most-read;
        # the healthy second request is served by the primary.
        assert served[SERVED_BY_MOST_READ] == 2.0
        assert served[SERVED_BY_PRIMARY] == 1.0
        assert SERVED_BY_MOST_READ in service.stats.degradations
        assert sum(served.values()) == service.stats.requests

    def test_breaker_transitions_land_in_gauge_and_counter(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        service, clock, metrics = make_service(
            tiny_bpr, tiny_split, tiny_merged, injector
        )
        assert metrics.gauge("service.breaker_state").value == 0.0
        for user in users[:4]:
            service.recommend(RecommendationRequest(user_id=user, k=5))
        assert service.breaker.state == STATE_OPEN
        assert metrics.gauge("service.breaker_state").value == 2.0
        transitions = metrics.counter("service.breaker_transitions")
        assert transitions.labels(to="open").value == 1.0

        # Heal: cool down, half-open probe succeeds, breaker closes.
        clock.advance(10.0)
        injector.set_rate(SITE_MODEL_SCORE, 0.0)
        service.recommend(RecommendationRequest(user_id=users[5], k=5))
        assert metrics.gauge("service.breaker_state").value == 0.0
        assert transitions.labels(to="half-open").value == 1.0
        assert transitions.labels(to="closed").value == 1.0

    def test_error_counter_tracks_stats_errors(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        injector = FaultInjector(rates={SITE_MODEL_SCORE: 1.0}, seed=0)
        service, _, metrics = make_service(
            tiny_bpr, tiny_split, tiny_merged, injector
        )
        for user in users[:3]:
            service.recommend(RecommendationRequest(user_id=user, k=5))
        assert metrics.counter("service.errors").value == float(
            service.stats.errors
        )
        assert service.stats.errors >= 3


class TestHealthAndSnapshotAgree:
    """Satellite: one histogram drives stats, health() and the snapshot."""

    def test_latency_percentiles_come_from_the_shared_histogram(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        service, _, metrics = make_service(
            tiny_bpr, tiny_split, tiny_merged
        )
        # Deterministic latencies: feed the shared histogram directly.
        histogram = metrics.histogram("service.latency_seconds")
        assert service.stats.histogram is histogram
        for user in users[:6]:
            service.recommend(RecommendationRequest(user_id=user, k=5))

        health = service.health()
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            assert health["latency"][key] == service.stats.percentile(q)
            assert health["latency"][key] == histogram.percentile(q)
        assert health["latency"]["mean_seconds"] == histogram.mean
        snap = service.metrics_snapshot()
        assert (
            snap["histograms"]["service.latency_seconds"]["count"]
            == service.stats.requests
            == len(users[:6])
        )

    def test_pinned_percentiles_over_known_latency_sequence(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        service, clock, metrics = make_service(
            tiny_bpr, tiny_split, tiny_merged
        )
        histogram = metrics.histogram("service.latency_seconds")
        # Bypass serving: record a known latency sequence through stats,
        # exactly as recommend_response does.
        for ms in range(1, 101):
            service.stats.record(ms / 1000.0)
        assert service.stats.percentile(0.50) == pytest.approx(0.0505)
        assert service.stats.percentile(0.95) == pytest.approx(0.09505)
        assert service.stats.percentile(0.99) == pytest.approx(0.09901)
        health = service.health()
        assert health["latency"]["p50"] == pytest.approx(0.0505)
        assert health["latency"]["p95"] == pytest.approx(0.09505)
        assert health["latency"]["p99"] == pytest.approx(0.09901)
        assert histogram.count == 100

    def test_cache_outcomes_split_into_hit_and_miss(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        service, _, metrics = make_service(
            tiny_bpr, tiny_split, tiny_merged, cache_size=8
        )
        request = RecommendationRequest(user_id=users[0], k=5)
        service.recommend(request)
        service.recommend(request)
        cache = metrics.counter("service.cache")
        assert cache.labels(outcome="miss").value == 1.0
        assert cache.labels(outcome="hit").value == 1.0

    def test_request_span_carries_serving_outcome(
        self, tiny_bpr, tiny_split, tiny_merged, users
    ):
        tracer = Tracer(
            seed=11, clock=TickingClock(), cpu_clock=TickingClock()
        )
        service, _, _ = make_service(
            tiny_bpr, tiny_split, tiny_merged, tracer=tracer
        )
        service.recommend(RecommendationRequest(user_id=users[0], k=5))
        (span,) = [s for s in tracer.spans if s.name == "service.request"]
        assert span.attrs["user_id"] == users[0]
        assert span.attrs["served_by"] == SERVED_BY_PRIMARY
        assert span.attrs["degraded"] is False

"""Tests for the seeded RNG helpers."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, derive_rng, make_rng, spawn_seeds


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_none_uses_default(self):
        assert (
            make_rng(None).integers(1000)
            == make_rng(DEFAULT_SEED).integers(1000)
        )

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(5, "bpr", "negatives").integers(10**6)
        b = derive_rng(5, "bpr", "negatives").integers(10**6)
        assert a == b

    def test_scopes_independent(self):
        a = derive_rng(5, "bpr").integers(10**6)
        b = derive_rng(5, "split").integers(10**6)
        assert a != b

    def test_seed_changes_stream(self):
        a = derive_rng(5, "x").integers(10**6)
        b = derive_rng(6, "x").integers(10**6)
        assert a != b


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(1, 5)) == 5

    def test_distinct(self):
        seeds = spawn_seeds(1, 20)
        assert len(set(seeds)) == 20

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_zero(self):
        assert spawn_seeds(1, 0) == []

"""Guard the documented public API surface.

Every name the README and DESIGN.md tell users to import must exist and be
importable exactly as documented; this test fails when a refactor silently
breaks the documented contract.
"""

import importlib

import pytest

PUBLIC_API = {
    "repro": ["ReproError", "__version__"],
    "repro.tables": [
        "Table", "Schema", "Column", "concat_tables",
        "read_csv", "write_csv", "read_jsonl", "write_jsonl",
        "read_npz_columns", "write_npz_columns", "ops",
    ],
    "repro.datasets": [
        "WorldConfig", "LatentWorld", "generate_sources",
        "BCTDataset", "AnobiiDataset", "MergedDataset",
        "CorpusConfig", "ShardedCorpus", "ShardedCorpusWriter",
    ],
    "repro.pipeline": [
        "clean_bct", "clean_anobii", "build_genre_model", "GenreModel",
        "MergeConfig", "MergeReport", "build_merged_dataset", "stats",
        "QuarantineReport", "QuarantinedRow",
        "quarantine_bct", "quarantine_anobii",
        "merge_sharded_corpus", "StreamingMergeResult", "load_merged_corpus",
    ],
    "repro.text": [
        "HashedTfidfEmbedder", "SentenceEmbedder", "TfidfModel",
        "MetadataSummaryBuilder", "field_combinations",
        "cosine_similarity_matrix", "normalize_text", "tokenize",
    ],
    "repro.core": [
        "Recommender", "InteractionMatrix", "Indexer",
        "RandomItems", "MostReadItems", "ClosestItems", "BPR", "BPRConfig",
        "ItemKNN", "HybridRecommender", "SequentialMarkov",
        "available_models", "create_model", "register_model",
    ],
    "repro.eval": [
        "SplitConfig", "DatasetSplit", "split_readings",
        "KPIReport", "compute_kpis",
        "EvaluationResult", "evaluate_model", "fit_and_evaluate",
        "GridSearchResult", "grid_search_bpr",
        "GroupKPIs", "evaluate_by_history_size",
        "BeyondAccuracyReport", "evaluate_beyond_accuracy",
        "ConfidenceInterval", "PairedComparison",
        "bootstrap_metric", "paired_bootstrap_difference",
    ],
    "repro.experiments": [
        "ExperimentConfig", "ExperimentContext",
        "available_experiments", "run_experiment", "SCALES",
    ],
    "repro.app": [
        "RecommendationService", "RecommendationRequest", "ServedBook",
        "ServedResponse", "ServiceStats",
        "save_dataset", "load_dataset", "save_bpr", "load_bpr",
    ],
    "repro.parallel": [
        "BACKENDS", "WorkerPool", "chunk_slices", "parallel_map",
        "resolve_n_jobs", "shared_payload", "task_seeds",
    ],
    "repro.resilience": [
        "BackoffPolicy", "Deadline", "retry_call",
        "CircuitBreaker",
        "FaultInjector", "FaultyModel", "FaultyEmbedder",
        "atomic_write", "write_manifest", "verify_manifest", "sha256_file",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_API[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} is missing"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_all_declares_documented_names(module_name):
    module = importlib.import_module(module_name)
    if not hasattr(module, "__all__"):
        pytest.skip(f"{module_name} has no __all__")
    missing = set(PUBLIC_API[module_name]) - set(module.__all__)
    assert not missing, f"{module_name}.__all__ is missing {sorted(missing)}"


def test_registered_models_match_docs():
    from repro.core import available_models

    assert set(available_models()) >= {
        "random", "most_read", "closest", "bpr", "item_knn", "sequential",
    }


def test_registered_experiments_match_docs():
    from repro.experiments import available_experiments

    assert set(available_experiments()) >= {
        "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5",
        "gridsearch", "beyond_accuracy", "sequential",
        "ablation_sampler", "ablation_anobii", "ablation_embedder",
        "ablation_split", "ablation_duration",
    }

"""Acceptance tests: the paper's qualitative results at the `small` preset.

These run the calibrated `small` configuration (≈200 merged books, ≈1 000
users) once per session and assert the paper's headline findings:

- Table 1 ordering: BPR > Closest >> Random, Most Read; BPR(BCT) << BPR;
- Fig. 4: the content-based model gains more from history than BPR;
- Fig. 5: title-only is the worst summary, author+genres the best.

They are statistical assertions on a stochastic world, so thresholds carry
slack; the `default`-scale numbers in EXPERIMENTS.md are the precise record.
"""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments.config import config_for_scale
from repro.experiments import fig4, fig5, table1


@pytest.fixture(scope="module")
def small_context():
    return ExperimentContext(config_for_scale("small"))


@pytest.fixture(scope="module")
def table1_result(small_context):
    return table1.run(small_context)


class TestTable1Shapes:
    def test_personalised_models_clear_baselines(self, table1_result):
        rows = table1_result.rows
        floor = max(rows["Random Items"].urr, rows["Most Read Items"].urr)
        assert rows["Closest Items"].urr > 1.5 * floor
        assert rows["BPR"].urr > 1.5 * floor

    def test_bpr_beats_closest(self, table1_result):
        rows = table1_result.rows
        assert rows["BPR"].urr > rows["Closest Items"].urr
        assert rows["BPR"].nrr > rows["Closest Items"].nrr

    def test_bct_only_clearly_weaker(self, table1_result):
        rows = table1_result.rows
        assert rows["BPR (BCT only)"].urr < 0.8 * rows["BPR"].urr

    def test_first_rank_ordering(self, table1_result):
        rows = table1_result.rows
        assert rows["BPR"].first_rank < rows["Random Items"].first_rank
        assert rows["Closest Items"].first_rank < rows["Random Items"].first_rank


class TestFig4Shapes:
    def test_closest_growth_exceeds_bpr(self, small_context):
        result = fig4.run(small_context)
        cb = result.groups["Closest Items"].nrr
        bpr = result.groups["BPR"].nrr
        assert cb[-1] / max(cb[0], 1e-9) > bpr[-1] / max(bpr[0], 1e-9)

    def test_bpr_strong_for_light_readers(self, small_context):
        result = fig4.run(small_context)
        assert (
            result.groups["BPR"].nrr[0]
            >= 0.8 * result.groups["Closest Items"].nrr[0]
        )


class TestFig5Shapes:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return fig5.run(small_context)

    def test_title_is_worst(self, result):
        title = result.rows[("title",)].urr
        for fields, report in result.rows.items():
            if fields != ("title",):
                assert report.urr >= title

    def test_author_genres_among_best(self, result):
        best_urr = max(report.urr for report in result.rows.values())
        assert result.rows[("author", "genres")].urr >= 0.85 * best_urr

    def test_author_alone_strong(self, result):
        assert (
            result.rows[("author",)].urr
            > 2 * result.rows[("title",)].urr
        )

"""Tests for experiment configuration presets."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SCALES, ExperimentConfig, config_for_scale


class TestPresets:
    def test_all_scales_buildable(self):
        for scale in SCALES:
            config = config_for_scale(scale)
            assert config.scale == scale

    def test_small_is_smaller_than_default(self):
        small = config_for_scale("small")
        default = config_for_scale("default")
        assert small.world.n_books < default.world.n_books
        assert small.bpr.epochs <= default.bpr.epochs

    def test_paper_matches_published_dimensions(self):
        paper = config_for_scale("paper")
        assert paper.world.n_bct_users == 6079
        assert paper.world.n_anobii_users == 37452
        assert paper.merge.min_book_readings == 100

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            config_for_scale("galactic")

    def test_seed_override(self):
        config = config_for_scale("small", seed=777)
        assert config.seed == 777
        assert config.world.seed == 777

    def test_with_seed_preserves_rest(self):
        config = ExperimentConfig().with_seed(9)
        assert config.seed == 9
        assert config.k == 20

    def test_default_k_is_papers_deployed_value(self):
        assert ExperimentConfig().k == 20

    def test_default_closest_fields_are_papers_best(self):
        assert ExperimentConfig().closest_fields == ("author", "genres")

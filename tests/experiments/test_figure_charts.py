"""Tests for the figure experiments' ASCII chart rendering."""

import pytest

from repro.experiments import fig3, fig4


class TestFig3Chart:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig3.run(tiny_context, ks=(1, 10, 20))

    def test_chart_for_each_metric(self, result):
        for metric in ("urr", "nrr", "precision", "recall"):
            chart = result.chart(metric)
            assert "BPR" in chart
            assert "|" in chart  # y axis present

    def test_render_embeds_urr_chart(self, result):
        assert "URR vs k" in result.render()

    def test_chart_x_ticks_are_ks(self, result):
        chart = result.chart("urr")
        for k in (1, 10, 20):
            assert str(k) in chart


class TestFig4Chart:
    def test_render_embeds_chart(self, tiny_context):
        result = fig4.run(tiny_context)
        text = result.render()
        assert "NRR by training-history bin" in text
        assert "*=Random Items" in text

"""Tests for the future-work extension experiments."""

import pytest

from repro.experiments import extensions, run_experiment


class TestBeyondAccuracy:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return extensions.run_beyond_accuracy(tiny_context)

    def test_three_systems(self, result):
        assert set(result.rows) == {"Most Read Items", "Closest Items", "BPR"}

    def test_popularity_list_has_low_coverage(self, result):
        assert (
            result.rows["Most Read Items"].coverage
            < result.rows["BPR"].coverage
        )

    def test_accuracy_attached(self, result):
        assert result.accuracy["BPR"].urr > 0

    def test_render(self, result):
        text = result.render()
        assert "Div" in text and "Cov" in text


class TestSequentialExperiment:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return extensions.run_sequential(tiny_context)

    def test_four_rows(self, result):
        assert set(result.rows) == {
            "Closest Items", "BPR", "Sequential Markov",
            "Sequential + BPR blend",
        }

    def test_chain_is_credible(self, result):
        assert (
            result.rows["Sequential Markov"].urr
            > 0.4 * result.rows["BPR"].urr
        )

    def test_render(self, result):
        assert "Sequential" in result.render()


class TestSplitAblation:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        from repro.experiments import split_ablation

        return split_ablation.run(tiny_context)

    def test_both_protocols_evaluated(self, result):
        assert set(result.temporal) == set(result.random_order)

    def test_most_read_gains_under_random_split(self, result):
        assert (
            result.random_order["Most Read Items"].urr
            >= result.temporal["Most Read Items"].urr
        )

    def test_render(self, result):
        assert "temporal" in result.render()


class TestRegistryIntegration:
    def test_runnable_by_name(self, tiny_context):
        result = run_experiment("beyond_accuracy", tiny_context)
        assert hasattr(result, "render")

    def test_listed(self):
        from repro.experiments import available_experiments

        names = available_experiments()
        assert "beyond_accuracy" in names and "sequential" in names

"""Tests for the text rendering helpers."""

from repro.experiments.reporting import ascii_table, format_value, series_block


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(0.123456, precision=2) == "0.12"
        assert format_value(0.123456, precision=4) == "0.1235"

    def test_non_float_passthrough(self):
        assert format_value(7) == "7"
        assert format_value("x") == "x"


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(["name", "v"], [["long-name", 1.0], ["x", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        # All rows align to the same width.
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_empty_rows(self):
        text = ascii_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_precision_applied(self):
        text = ascii_table(["v"], [[0.126]], precision=1)
        assert "0.1" in text


class TestAsciiChart:
    def test_basic_chart(self):
        from repro.experiments.reporting import ascii_chart

        text = ascii_chart([1, 2, 3], {"up": [0.0, 0.5, 1.0]})
        lines = text.splitlines()
        assert any("1.00" in line for line in lines)
        assert any("0.00" in line for line in lines)
        assert "*=up" in lines[-1]

    def test_extremes_placed_on_edge_rows(self):
        from repro.experiments.reporting import ascii_chart

        text = ascii_chart([1, 2], {"s": [0.0, 1.0]}, height=5)
        lines = text.splitlines()
        assert "*" in lines[0]       # max on the top row
        assert "*" in lines[4]       # min on the bottom row

    def test_multiple_series_symbols(self):
        from repro.experiments.reporting import ascii_chart

        text = ascii_chart(
            [1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]}
        )
        assert "*=a" in text and "o=b" in text

    def test_flat_series_does_not_crash(self):
        from repro.experiments.reporting import ascii_chart

        text = ascii_chart([1, 2, 3], {"flat": [0.5, 0.5, 0.5]})
        assert "flat" in text

    def test_validation(self):
        import pytest

        from repro.experiments.reporting import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart([], {"a": []})
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]}, height=1)

    def test_title_included(self):
        from repro.experiments.reporting import ascii_chart

        assert ascii_chart([1], {"a": [1.0]}, title="T").startswith("T")


class TestSeriesBlock:
    def test_pairs_rendered(self):
        text = series_block("BPR", [1, 5], [0.1234, 0.5])
        assert text.startswith("BPR:")
        assert "1:0.123" in text and "5:0.500" in text

    def test_empty_series(self):
        assert series_block("x", [], []) == "x: "

"""Tests for the experiment context's lazy caching."""

import pytest

from repro.errors import ConfigurationError


class TestDatasetCaching:
    def test_merged_is_cached(self, tiny_context):
        assert tiny_context.merged is tiny_context.merged

    def test_split_is_cached(self, tiny_context):
        assert tiny_context.split is tiny_context.split

    def test_merge_report_available(self, tiny_context):
        assert tiny_context.merge_report.matched_books > 0


class TestModelCaching:
    def test_model_cached_by_name(self, tiny_context):
        assert tiny_context.model("random") is tiny_context.model("random")

    def test_fit_seconds_recorded(self, tiny_context):
        tiny_context.model("most_read")
        assert tiny_context.fit_seconds("most_read") >= 0.0

    def test_closest_field_variants_are_distinct(self, tiny_context):
        default = tiny_context.model("closest")
        title_only = tiny_context.model("closest:title")
        assert default is not title_only
        assert title_only.fields == ("title",)

    def test_unknown_model(self, tiny_context):
        with pytest.raises(ConfigurationError):
            tiny_context.model("svd++")

    def test_bct_only_uses_loans_dataset(self, tiny_context):
        dataset, split = tiny_context.bct_only
        assert set(dataset.readings["source"].tolist()) == {"bct"}
        assert split.train.n_items == tiny_context.split.train.n_items


class TestEvaluationCaching:
    def test_same_request_cached(self, tiny_context):
        first = tiny_context.evaluation("random", ks=(10,))
        second = tiny_context.evaluation("random", ks=(10,))
        assert first is second

    def test_different_ks_not_conflated(self, tiny_context):
        a = tiny_context.evaluation("random", ks=(10,))
        b = tiny_context.evaluation("random", ks=(5,))
        assert a is not b

    def test_default_k_from_config(self, tiny_context):
        result = tiny_context.evaluation("most_read")
        assert tiny_context.config.k in result.kpis

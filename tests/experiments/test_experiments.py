"""Run every experiment on the tiny context and assert paper shapes.

These are the reproduction's acceptance tests: each experiment must run end
to end AND show the qualitative result the paper reports (orderings and
trends — absolute values are data-dependent).
"""

import math

import pytest

from repro.experiments import available_experiments, run_experiment
from repro.experiments import (
    ablations,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    gridsearch,
    table1,
    table2,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return table1.run(tiny_context)

    def test_all_five_systems(self, result):
        assert set(result.rows) == {
            "Random Items", "Most Read Items", "Closest Items",
            "BPR", "BPR (BCT only)",
        }

    def test_personalized_models_beat_baselines(self, result):
        for personalised in ("Closest Items", "BPR"):
            for baseline in ("Random Items", "Most Read Items"):
                assert result.rows[personalised].urr > result.rows[baseline].urr
                assert result.rows[personalised].nrr > result.rows[baseline].nrr

    def test_bpr_competitive_with_closest(self, result):
        """At this fixture's tiny scale (21 test users) the CB/CF ranking is
        noisy; the calibrated ordering is asserted in test_paper_shapes.py
        on the `small` preset. Here we only require BPR to be in the same
        league as the content-based model."""
        assert result.rows["BPR"].nrr >= result.rows["Closest Items"].nrr * 0.5

    def test_bct_only_weaker_than_merged(self, result):
        assert result.rows["BPR (BCT only)"].urr < result.rows["BPR"].urr

    def test_fr_ordering_inverse_of_urr(self, result):
        assert (
            result.rows["BPR"].first_rank
            < result.rows["Random Items"].first_rank
        )

    def test_render_is_table(self, result):
        text = result.render()
        assert "URR" in text and "BPR (BCT only)" in text


class TestFig1:
    def test_distributions_heavy_tailed(self, tiny_context):
        result = fig1.run(tiny_context)
        assert result.per_user.max() > result.per_user.min()
        assert result.per_book.max() >= 2 * float(
            sorted(result.per_book)[len(result.per_book) // 2]
        )

    def test_cdf_accessor(self, tiny_context):
        result = fig1.run(tiny_context)
        values, probs = result.cdf("per_user")
        assert probs[-1] == 1.0
        assert "p50" in result.render()


class TestFig2:
    def test_shares_sum_to_one(self, tiny_context):
        result = fig2.run(tiny_context)
        assert sum(result.shares.values()) == pytest.approx(1.0)

    def test_leading_genre_dominates(self, tiny_context):
        """Fig. 2: one genre family (Comics) accounts for the biggest share."""
        result = fig2.run(tiny_context)
        ordered = result.sorted_shares()
        assert ordered[0][1] > 2 * ordered[2][1]

    def test_dominance_reported(self, tiny_context):
        result = fig2.run(tiny_context)
        assert 0.0 <= result.dominance <= 1.0
        assert "%" in result.render()


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig3.run(tiny_context, ks=(1, 5, 20, 50))

    def test_urr_grows_with_k(self, result):
        for model in ("Random Items", "Closest Items", "BPR"):
            series = result.metric_series(model, "urr")
            assert series == sorted(series)

    def test_recall_grows_with_k(self, result):
        for model in ("Closest Items", "BPR"):
            series = result.metric_series(model, "recall")
            assert series == sorted(series)

    def test_precision_falls_overall(self, result):
        for model in ("Closest Items", "BPR"):
            series = result.metric_series(model, "precision")
            assert series[-1] < series[0]

    def test_models_ordered_at_k20(self, result):
        assert (
            result.series["BPR"][20].urr
            > result.series["Random Items"][20].urr
        )

    def test_render_has_all_metrics(self, result):
        text = result.render()
        for label in ("[URR]", "[NRR]", "[P]", "[R]"):
            assert label in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig4.run(tiny_context)

    def test_three_series_share_bins(self, result):
        for groups in result.groups.values():
            assert groups.bins == result.bins

    def test_closest_improves_with_history(self, result):
        series = result.groups["Closest Items"].nrr
        assert series[-1] > series[0]

    def test_bpr_improves_with_history(self, result):
        """At tiny scale only the coarse trend is stable (the CB-vs-BPR
        growth comparison lives in test_paper_shapes.py)."""
        series = result.groups["BPR"].nrr
        assert series[-1] > series[0]

    def test_render(self, result):
        assert "Fig. 4" in result.render()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return fig5.run(tiny_context)

    def test_title_only_is_worst(self, result):
        title = result.rows[("title",)]
        for fields, report in result.rows.items():
            if fields != ("title",):
                assert report.urr >= title.urr

    def test_author_beats_title(self, result):
        assert result.rows[("author",)].urr > result.rows[("title",)].urr

    def test_author_genres_is_best_or_close(self, result):
        best = result.best()
        combo = result.rows[("author", "genres")]
        assert combo.urr >= result.rows[best].urr * 0.9

    def test_render(self, result):
        assert "author+genres" in result.render()


class TestTable2:
    def test_timing_semantics(self, tiny_context):
        result = table2.run(tiny_context)
        random_train, random_rec = result.rows["Random Items"]
        bpr_train, bpr_rec = result.rows["BPR"]
        assert random_train is None  # "no proper training phase"
        assert bpr_train is not None and bpr_train > 0
        assert random_rec > 0 and bpr_rec > 0
        assert "-" in result.render()


class TestGridsearch:
    def test_small_grid(self, tiny_context):
        result = gridsearch.run(tiny_context)
        assert len(result.grid.points) == 4  # reduced small-scale grid
        assert "best:" in result.render()


class TestAblations:
    def test_sampler_ablation_rows(self, tiny_context):
        result = ablations.run_sampler_ablation(tiny_context)
        assert set(result.rows) == {"warp (paper)", "uniform"}

    def test_anobii_ablation_shows_both_contributions(self, tiny_context):
        result = ablations.run_anobii_ablation(tiny_context)
        assert (
            result.rows["BPR, merged readings"].urr
            > result.rows["BPR, BCT readings only"].urr
        )
        assert (
            result.rows["Closest, anobii metadata (author+genres)"].urr
            >= result.rows["Closest, BCT metadata only (title+author)"].urr
        )

    def test_embedder_ablation(self, tiny_context):
        result = ablations.run_embedder_ablation(tiny_context)
        assert len(result.rows) == 2


class TestRegistry:
    def test_all_experiments_listed(self):
        names = available_experiments()
        for expected in ("table1", "table2", "gridsearch", "ablation_anobii"):
            assert expected in names

    def test_run_by_name(self, tiny_context):
        result = run_experiment("fig2", tiny_context)
        assert hasattr(result, "render")

    def test_unknown_experiment(self, tiny_context):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_experiment("table9", tiny_context)

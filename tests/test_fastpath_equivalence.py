"""Fast-path equivalence: every vectorised path must reproduce its
reference implementation exactly.

The reproduced Table 1 / Fig. 3 numbers must not move, so the CSR-scatter
masking, batched top-k, rank-only (counting) evaluation, blockwise /
truncated similarity, and batched serving are each pinned against the
original per-user/argsort code paths — on fitted models over the tiny
synthetic world and on adversarial random score matrices with heavy ties.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.app.service import RecommendationRequest, RecommendationService
from repro.core.base import Recommender
from repro.core.closest_items import ClosestItems
from repro.core.interactions import InteractionMatrix
from repro.errors import EvaluationError
from repro.eval.evaluator import _ranks_by_counting, evaluate_model
from repro.eval.metrics import compute_kpis
from repro.eval.split import DatasetSplit


class FixedScores(Recommender):
    """Test model serving an arbitrary dense score matrix."""

    def __init__(self, scores, exclude_seen=True):
        super().__init__()
        self._scores = np.asarray(scores, dtype=np.float64)
        self.exclude_seen = exclude_seen

    def _fit(self, train, dataset):
        pass

    def score_users(self, user_indices):
        return self._scores[np.asarray(user_indices, dtype=np.int64)].copy()


def _tied_matrix(seed, n_users=25, n_items=160):
    """A score matrix with many exact ties (quantised normals)."""
    rng = np.random.default_rng(seed)
    return np.round(rng.normal(size=(n_users, n_items)), 1)


def _train_matrix(seed, n_users=25, n_items=160):
    rng = np.random.default_rng(seed)
    pairs = []
    for user in range(n_users):
        history = rng.choice(n_items, size=int(rng.integers(1, 30)), replace=False)
        pairs.extend((f"u{user:03d}", int(item)) for item in history)
    return InteractionMatrix.from_pairs(pairs)


def _fake_split(train, seed):
    """A DatasetSplit over ``train`` with random unseen held-out items."""
    rng = np.random.default_rng(seed + 1)
    test_items = {}
    for user in range(train.n_users):
        unseen = np.setdiff1d(
            np.arange(train.n_items), train.user_items(user)
        )
        held = rng.choice(
            unseen, size=int(rng.integers(1, 6)), replace=False
        )
        test_items[int(user)] = np.asarray(sorted(held), dtype=np.int64)
    return DatasetSplit(
        train=train,
        val_items={},
        test_items=test_items,
        bct_user_indices=np.arange(train.n_users, dtype=np.int64),
    )


class TestMaskingEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_models_with_ties(self, seed):
        train = _train_matrix(seed)
        model = FixedScores(_tied_matrix(seed)).fit(train)
        users = np.arange(train.n_users)
        assert np.array_equal(
            model.masked_scores(users), model.masked_scores_reference(users)
        )

    def test_fitted_bpr(self, tiny_split, tiny_bpr):
        users = np.asarray(sorted(tiny_split.test_items), dtype=np.int64)
        assert np.array_equal(
            tiny_bpr.masked_scores(users),
            tiny_bpr.masked_scores_reference(users),
        )

    def test_no_masking_when_model_includes_seen(self):
        train = _train_matrix(3)
        model = FixedScores(_tied_matrix(3), exclude_seen=False).fit(train)
        users = np.arange(train.n_users)
        assert np.array_equal(
            model.masked_scores(users), model.score_users(users)
        )

    def test_empty_chunk(self, tiny_bpr):
        assert tiny_bpr.masked_scores(np.asarray([], dtype=np.int64)).shape[0] == 0


class TestBatchTopKEquivalence:
    @pytest.mark.parametrize("k", [1, 5, 40, 500])
    def test_matches_per_user_recommend(self, k):
        train = _train_matrix(11)
        model = FixedScores(_tied_matrix(11)).fit(train)
        users = np.arange(train.n_users)
        batched = model.recommend_batch(users, k)
        for user, items in zip(users, batched):
            assert np.array_equal(items, model.recommend(int(user), k))

    def test_matches_reference_batch(self, tiny_split, tiny_bpr):
        users = np.asarray(sorted(tiny_split.test_items), dtype=np.int64)[:40]
        fast = tiny_bpr.recommend_batch(users, 20)
        reference = tiny_bpr.recommend_batch_reference(users, 20)
        assert all(np.array_equal(f, r) for f, r in zip(fast, reference))

    def test_catalogue_exhaustion(self):
        # One user read every item but two: top-k must come back short.
        pairs = [("u", i) for i in range(8)] + [("v", 0)]
        train = InteractionMatrix.from_pairs(pairs + [("u", 8), ("v", 9)])
        scores = np.ones((2, train.n_items))
        model = FixedScores(scores).fit(train)
        batched = model.recommend_batch(np.asarray([0, 1]), k=5)
        assert len(batched[0]) == 1  # "u" has one unread item left
        assert len(batched[1]) == 5
        assert np.array_equal(batched[0], model.recommend(0, 5))
        assert np.array_equal(batched[1], model.recommend(1, 5))


class TestRankOnlyEvaluation:
    def _assert_results_equal(self, fast, reference):
        assert fast.kpis == reference.kpis
        assert np.array_equal(
            fast.per_user.first_ranks, reference.per_user.first_ranks
        )
        assert np.array_equal(
            fast.per_user.test_sizes, reference.per_user.test_sizes
        )
        for k in fast.kpis:
            assert np.array_equal(fast.per_user.hits[k], reference.per_user.hits[k])

    @pytest.mark.parametrize("model_name", ["bpr", "closest", "most_read"])
    def test_identical_kpi_reports(self, tiny_context, model_name):
        model = tiny_context.model(model_name)
        split = tiny_context.split
        fast = evaluate_model(model, split, ks=(1, 5, 20), rank_method="count")
        reference = evaluate_model(
            model, split, ks=(1, 5, 20), rank_method="argsort"
        )
        self._assert_results_equal(fast, reference)

    def test_identical_across_chunk_sizes(self, tiny_split, tiny_bpr):
        fast = evaluate_model(
            tiny_bpr, tiny_split, ks=(20,), rank_method="count", chunk_size=7
        )
        reference = evaluate_model(
            tiny_bpr, tiny_split, ks=(20,), rank_method="argsort",
            chunk_size=1000,
        )
        self._assert_results_equal(fast, reference)

    def test_rejects_unknown_method(self, tiny_split, tiny_bpr):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError, match="rank_method"):
            evaluate_model(tiny_bpr, tiny_split, rank_method="quantum")

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000))
    def test_property_counting_ranks_match_stable_argsort(self, seed):
        rng = np.random.default_rng(seed)
        n_users, n_items = 8, 60
        scores = np.round(rng.normal(size=(n_users, n_items)), 1)
        scores[rng.random(size=scores.shape) < 0.1] = -np.inf  # masked items
        held = [
            rng.choice(n_items, size=int(rng.integers(1, 6)), replace=False)
            for _ in range(n_users)
        ]
        order = np.argsort(-scores, axis=1, kind="stable")
        ranks = np.empty_like(order)
        row_index = np.arange(n_users)[:, None]
        ranks[row_index, order] = np.arange(1, n_items + 1)
        expected = np.concatenate(
            [ranks[row, items] for row, items in enumerate(held)]
        )
        assert np.array_equal(_ranks_by_counting(scores, held), expected)


class TestSimilarityEquivalence:
    def test_closest_items_sparse_scoring_matches_dense_truncated(
        self, tiny_split, tiny_merged
    ):
        sparse_model = ClosestItems(
            fields=("author", "genres"), top_n_neighbors=15, block_size=64
        ).fit(tiny_split.train, tiny_merged)
        users = np.asarray(sorted(tiny_split.test_items), dtype=np.int64)[:30]
        fast = sparse_model.score_users(users)
        # Reference: Eq. (1) per-user loop over the densified truncated
        # similarity — same ranking required.
        dense = sparse_model.similarity
        train = tiny_split.train
        reference = np.zeros_like(fast)
        for row, user in enumerate(users):
            history = train.user_items(int(user))
            if history.size:
                reference[row] = dense[:, history].mean(axis=1)
        assert np.allclose(fast, reference, atol=1e-12)
        assert np.array_equal(
            np.argsort(-fast, axis=1, kind="stable"),
            np.argsort(-reference, axis=1, kind="stable"),
        )

    def test_sparse_mode_kpis_match_densified_reference(
        self, tiny_split, tiny_merged
    ):
        sparse_model = ClosestItems(
            fields=("author", "genres"), top_n_neighbors=15
        ).fit(tiny_split.train, tiny_merged)
        dense_model = FixedScores(
            sparse_model.score_users(np.arange(tiny_split.train.n_users))
        ).fit(tiny_split.train)
        fast = evaluate_model(sparse_model, tiny_split, ks=(20,))
        reference = evaluate_model(
            dense_model, tiny_split, ks=(20,), rank_method="argsort"
        )
        assert fast.kpis == reference.kpis

    def test_dense_mode_unchanged_by_block_size(self, tiny_split, tiny_merged):
        whole = ClosestItems(fields=("author",)).fit(tiny_split.train, tiny_merged)
        blocked = ClosestItems(fields=("author",), block_size=37).fit(
            tiny_split.train, tiny_merged
        )
        assert np.allclose(whole.similarity, blocked.similarity)
        users = np.asarray(sorted(tiny_split.test_items), dtype=np.int64)[:10]
        assert np.array_equal(
            np.argsort(-whole.masked_scores(users), axis=1, kind="stable"),
            np.argsort(-blocked.masked_scores(users), axis=1, kind="stable"),
        )


class TestServingEquivalence:
    @pytest.fixture()
    def service(self, tiny_bpr, tiny_split, tiny_merged):
        return RecommendationService(tiny_bpr, tiny_split.train, tiny_merged)

    def test_cached_request_identical(self, service, tiny_merged):
        request = RecommendationRequest(user_id=tiny_merged.bct_user_ids[0], k=7)
        cold = service.recommend(request)
        warm = service.recommend(request)
        assert cold == warm
        assert service.stats.cache_hits == 1

    def test_recommend_many_matches_per_request(
        self, tiny_bpr, tiny_split, tiny_merged
    ):
        users = tiny_merged.bct_user_ids[:8]
        requests = [RecommendationRequest(user_id=u, k=9) for u in users]
        batch_service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0
        )
        single_service = RecommendationService(
            tiny_bpr, tiny_split.train, tiny_merged, cache_size=0
        )
        batched = batch_service.recommend_many(requests)
        singles = [single_service.recommend(r) for r in requests]
        assert batched == singles


# ----------------------------------------------------------------------
# KPI properties (eval/metrics.py): bounds, invariances, rank-method
# agreement — the aggregate layer the fast paths feed into.
# ----------------------------------------------------------------------

per_user_arrays = st.integers(min_value=1, max_value=40).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.integers(min_value=1, max_value=30), min_size=n, max_size=n
        ),
        st.lists(
            st.integers(min_value=1, max_value=500), min_size=n, max_size=n
        ),
        st.integers(min_value=1, max_value=50),
    )
)


class TestKpiProperties:
    @settings(deadline=None, max_examples=100)
    @given(arrays=per_user_arrays)
    def test_ratio_kpis_are_bounded_and_fr_at_least_one(self, arrays):
        test_sizes, first_ranks, k = arrays
        rng = np.random.default_rng(sum(test_sizes))
        # hits can never exceed min(|T_u|, k) for any user.
        hits = np.asarray(
            [int(rng.integers(0, min(size, k) + 1)) for size in test_sizes]
        )
        report = compute_kpis(
            hits, np.asarray(test_sizes), np.asarray(first_ranks), k
        )
        assert 0.0 <= report.urr <= 1.0
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert report.nrr >= 0.0
        assert report.nrr <= min(max(test_sizes), k)
        assert report.first_rank >= 1.0

    @settings(deadline=None, max_examples=100)
    @given(arrays=per_user_arrays, seed=st.integers(0, 2**16))
    def test_kpis_are_invariant_under_user_permutation(self, arrays, seed):
        test_sizes, first_ranks, k = arrays
        rng = np.random.default_rng(seed)
        hits = np.asarray(
            [int(rng.integers(0, min(size, k) + 1)) for size in test_sizes]
        )
        test_sizes = np.asarray(test_sizes)
        first_ranks = np.asarray(first_ranks)
        order = rng.permutation(len(hits))
        original = compute_kpis(hits, test_sizes, first_ranks, k)
        permuted = compute_kpis(
            hits[order], test_sizes[order], first_ranks[order], k
        )
        # Mean-of-floats is permutation-invariant only up to summation
        # order, so compare to a tight relative tolerance.
        assert permuted.as_row() == pytest.approx(
            original.as_row(), rel=1e-12
        )

    @settings(deadline=None, max_examples=50)
    @given(n_users=st.integers(2, 10))
    def test_perfect_and_empty_recommendations_hit_the_bounds(self, n_users):
        k = 10
        test_sizes = np.full(n_users, k)
        perfect = compute_kpis(
            np.full(n_users, k), test_sizes, np.ones(n_users), k
        )
        assert perfect.urr == perfect.precision == perfect.recall == 1.0
        assert perfect.nrr == float(k)
        assert perfect.first_rank == 1.0
        empty = compute_kpis(
            np.zeros(n_users), test_sizes, np.full(n_users, 100), k
        )
        assert empty.urr == empty.precision == empty.recall == empty.nrr == 0.0

    def test_degenerate_inputs_raise(self):
        with pytest.raises(EvaluationError):
            compute_kpis(np.asarray([]), np.asarray([]), np.asarray([]), 5)
        with pytest.raises(EvaluationError):
            compute_kpis(
                np.asarray([1]), np.asarray([0]), np.asarray([1]), 5
            )
        with pytest.raises(EvaluationError):
            compute_kpis(
                np.asarray([1, 2]), np.asarray([3]), np.asarray([1]), 5
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rank_only_kpis_match_argsort_on_tied_matrices(self, seed):
        train = _train_matrix(seed)
        model = FixedScores(_tied_matrix(seed)).fit(train)
        split = _fake_split(train, seed)
        counted = evaluate_model(
            model, split, ks=(5, 20), rank_method="count"
        )
        argsorted = evaluate_model(
            model, split, ks=(5, 20), rank_method="argsort"
        )
        assert counted.kpis == argsorted.kpis
        assert np.array_equal(
            counted.per_user.first_ranks, argsorted.per_user.first_ranks
        )

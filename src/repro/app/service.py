"""The recommendation service behind the Reading&Machine GUI.

The paper's application shows each library user a list of k = 20 books
("a good trade-off between the quality of recommendations and the
prevention of users' choice overload"). This module provides that request
path over any fitted :class:`~repro.core.base.Recommender`: user id in,
book cards out, with latency accounting matching Table 2's methodology.

Serving-scale additions: a bounded LRU cache of served top-k lists keyed
on ``(user_id, k)`` (models are read-only between refreshes, so a user's
list only changes when the model does — :meth:`RecommendationService.refresh_model`
invalidates the cache explicitly), a :meth:`~RecommendationService.recommend_many`
batch endpoint that funnels cache misses through the vectorised
:meth:`~repro.core.base.Recommender.recommend_batch` scoring path, and a
bounded latency window so long-lived services don't grow without limit.

Retrieval: the primary scoring path is tiered (``retrieval="exact"`` or
``"ivf"``). The exact tier scores the whole catalogue; the IVF tier
(:class:`~repro.retrieval.ivf.IVFIndex`) probes ``probe_cells`` k-means
cells and exactly re-ranks the pooled candidates — recall@k traded for
latency, with ``probe_cells >= n_cells`` falling back to the exact
paths bit for bit. An optional
:class:`~repro.retrieval.shards.UserShardStore` replaces the in-memory
user-factor matrix with mmap-backed shards (resident memory stays
O(active shards)); batch requests are coalesced per ``(k, shard)``
group so each shard is touched once and scored in one gathered matmul.
Models without factor matrices (or the ``most-read``/``static`` chain
links) are untouched: they always serve through the exact tier.
``docs/serving.md`` is the operator's guide to all of this.

Lifecycle: :meth:`RecommendationService.refresh_from_store` hot-swaps
the serving model from a versioned
:class:`~repro.app.lifecycle.ModelStore` with zero downtime — the
candidate is loaded, checksum-verified, and validated entirely outside
the service lock, swapped in only on success, and any failure keeps the
current model serving with a counted ``refresh_failed`` stat instead of
an exception. Every response carries the serving version's name as
``model_version`` provenance.

Resilience: the primary model is guarded by a
:class:`~repro.resilience.breaker.CircuitBreaker` and backed by a
degradation chain — primary model → fitted
:class:`~repro.core.most_read.MostReadItems` → a static most-popular
list derived from the training counts. A scoring failure (or an open
breaker, or an expired per-request deadline) degrades the response
instead of failing the request; every response carries a ``served_by``
tag, degradations are counted per source in :class:`ServiceStats`, and
:meth:`RecommendationService.health` reports the whole picture.

Observability: the service owns (or is handed) a
:class:`~repro.obs.metrics.MetricsRegistry` and mirrors every
:class:`ServiceStats` movement into it — request/cache/degradation
counters, breaker state transitions (via
:attr:`~repro.resilience.breaker.CircuitBreaker.on_transition`), and a
shared latency histogram that *is* the percentile source for both
:meth:`ServiceStats.percentile` and :meth:`RecommendationService.health`,
so the two views can never disagree. An optional
:class:`~repro.obs.trace.Tracer` records one span per cache-missed
request and per batch.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.core.base import (
    EXCLUDED_SCORE,
    Recommender,
    _top_k,
    mask_seen_rows,
    top_k_rows,
)
from repro.core.interactions import InteractionMatrix
from repro.core.most_read import MostReadItems
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, UnknownUserError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer, start_span
from repro.retrieval.ivf import IVFIndex, default_probe_cells, recall_at_k
from repro.retrieval.shards import UserShardStore
from repro.rng import derive_rng
from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.retry import BackoffPolicy, Deadline, retry_call

#: The paper's deployed list length.
DEFAULT_K = 20

#: Served top-k lists kept in the LRU cache by default.
DEFAULT_CACHE_SIZE = 1024

#: Per-request latencies kept for percentile reporting by default.
DEFAULT_LATENCY_WINDOW = 10_000

#: ``served_by`` tags, in degradation-chain order.
SERVED_BY_PRIMARY = "primary"
SERVED_BY_MOST_READ = "most-read"
SERVED_BY_STATIC = "static"
SERVED_BY_NONE = "none"

#: Retrieval tiers for primary scoring.
RETRIEVAL_EXACT = "exact"
RETRIEVAL_IVF = "ivf"
RETRIEVAL_TIERS = (RETRIEVAL_EXACT, RETRIEVAL_IVF)

#: Users sampled by :meth:`RecommendationService.measure_retrieval_recall`.
DEFAULT_RECALL_SAMPLE = 64

#: Breaker states encoded for the ``service.breaker_state`` gauge.
_BREAKER_STATE_VALUE = {
    STATE_CLOSED: 0.0,
    STATE_HALF_OPEN: 1.0,
    STATE_OPEN: 2.0,
}


@dataclass(frozen=True)
class RecommendationRequest:
    """One GUI request.

    ``timeout_seconds`` is an optional per-request deadline budget: when
    it runs out before the primary model was invoked, the service answers
    from the degradation chain instead of blocking the GUI.
    """

    user_id: str
    k: int = DEFAULT_K
    timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )


@dataclass(frozen=True)
class ServedBook:
    """One recommended book, as shown on a GUI card."""

    book_id: int
    title: str
    author: str
    rank: int


@dataclass(frozen=True)
class ServedResponse:
    """One answered request, with provenance.

    ``served_by`` names the chain link that produced the list
    (:data:`SERVED_BY_PRIMARY`, :data:`SERVED_BY_MOST_READ`,
    :data:`SERVED_BY_STATIC`, or :data:`SERVED_BY_NONE` when nothing
    could serve it). ``degraded`` is True when a *failure* forced a
    fallback — a cold-start user intentionally served by the popularity
    list is not degraded. ``error`` carries the triggering failure, if
    any, and ``from_cache`` marks LRU hits. ``model_version`` is the
    model-store version name the serving model came from (``None`` when
    the service was built from an in-memory model rather than a
    :class:`~repro.app.lifecycle.ModelStore`).
    """

    books: tuple[ServedBook, ...]
    served_by: str
    degraded: bool = False
    error: str | None = None
    from_cache: bool = False
    model_version: str | None = None


@dataclass
class ServiceStats:
    """Aggregate latency, cache, and degradation accounting.

    Latency percentiles are driven by a single shared
    :class:`~repro.obs.metrics.Histogram` (``latency_window`` bounds its
    raw-observation window, so a long-lived service's memory stays
    constant): :meth:`percentile`, :attr:`latencies`, and the metrics
    registry's ``service.latency_seconds`` series all read the same
    object and cannot disagree. ``degradations`` counts fallback-served
    requests per ``served_by`` source; ``errors`` counts underlying
    failures (which can exceed degradations when retries or multiple
    chain links fail for one request).

    Thread safety: every mutation (:meth:`record`, :meth:`note_cache`,
    :meth:`note_error`, :meth:`note_degraded`) runs under one lock, and
    the shared histogram carries its own, so concurrent serving threads
    never lose an increment — the concurrency suite asserts exact
    counts under contention.
    """

    requests: int = 0
    total_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    latency_window: int = DEFAULT_LATENCY_WINDOW
    errors: int = 0
    last_error: str | None = None
    refreshes: int = 0
    """Successful hot swaps (:meth:`RecommendationService.refresh_from_store`)."""
    refresh_failed: int = 0
    """Rejected hot-swap candidates (corruption, validation, injected
    faults); each one kept the previous model serving."""
    degradations: Counter = field(default_factory=Counter)
    histogram: "Histogram | None" = field(default=None, repr=False)
    """The shared latency histogram; a standalone one is built when the
    stats object is not wired into a registry."""

    def __post_init__(self) -> None:
        if self.latency_window < 1:
            raise ConfigurationError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )
        if self.histogram is None:
            self.histogram = Histogram(
                "service.latency_seconds", window=self.latency_window
            )
        self._lock = threading.Lock()

    @property
    def latencies(self) -> tuple[float, ...]:
        """The retained per-request latencies (histogram window view)."""
        assert self.histogram is not None
        return self.histogram.window

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.requests if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def degraded_requests(self) -> int:
        return int(sum(self.degradations.values()))

    def percentile(self, q: float) -> float:
        assert self.histogram is not None
        return self.histogram.percentile(q)

    def record(self, elapsed: float, requests: int = 1) -> None:
        """Account ``requests`` requests served in ``elapsed`` seconds."""
        assert self.histogram is not None
        with self._lock:
            self.requests += requests
            self.total_seconds += elapsed
        per_request = elapsed / requests if requests else 0.0
        for _ in range(requests):
            self.histogram.observe(per_request)

    def note_cache(self, hit: bool) -> None:
        """Account one cache lookup (``hit=True``) or miss."""
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def note_error(self, error: BaseException | str) -> None:
        """Account one underlying failure, remembering its description."""
        if isinstance(error, BaseException):
            error = f"{type(error).__name__}: {error}"
        with self._lock:
            self.errors += 1
            self.last_error = error

    def note_refresh(self, ok: bool, error: BaseException | str | None = None) -> None:
        """Account one hot-swap attempt; failures remember their cause."""
        if isinstance(error, BaseException):
            error = f"{type(error).__name__}: {error}"
        with self._lock:
            if ok:
                self.refreshes += 1
            else:
                self.refresh_failed += 1
                if error is not None:
                    self.last_error = error

    def note_degraded(self, served_by: str, error: str | None = None) -> None:
        """Account one fallback-served request by its chain link.

        ``error`` (when given) becomes ``last_error`` only if no earlier
        failure was recorded — the first cause is the interesting one.
        """
        with self._lock:
            self.degradations[served_by] += 1
            if error is not None and self.last_error is None:
                self.last_error = error


class RecommendationService:
    """Serve top-k recommendations for library users.

    Args:
        model: a fitted recommender (the *primary* chain link).
        train: the interaction matrix the model was fitted on (provides the
            user indexing and the static most-popular fallback list).
        dataset: the merged dataset (provides titles/authors for cards).
        cold_start_fallback: optional fitted
            :class:`~repro.core.most_read.MostReadItems`; when given,
            unknown users receive the global top-k instead of an error,
            and it is the second link of the degradation chain for
            primary-model failures.
        cache_size: served lists kept in the LRU top-k cache; ``0``
            disables caching. Only healthy (non-degraded) responses are
            cached, so a recovered primary is not shadowed by cached
            fallback lists.
        latency_window: per-request latencies retained for percentile
            reporting.
        breaker: circuit breaker guarding primary scoring (a default
            breaker is built when omitted).
        retry_policy: optional :class:`~repro.resilience.retry.BackoffPolicy`;
            when set, primary scoring failures are retried per the policy
            before degrading.
        degrade_unknown_users: when True, an unknown user without a
            ``cold_start_fallback`` gets the static most-popular list (a
            degraded response) instead of :class:`UnknownUserError`.
        seed: seed for the retry jitter stream (``repro.rng`` semantics).
        clock: injectable monotonic clock for deadlines, staleness, and
            latency accounting.
        retry_sleep: injectable sleep for retry backoff (tests pass a
            no-op or recorder).
        metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to record
            into; the service builds a private one when omitted, so the
            ``service.*`` series always exist.
        tracer: optional :class:`~repro.obs.trace.Tracer`; when set, each
            cache-missed request and each batch gets a span.
        model_version: provenance tag of the serving model (the
            :class:`~repro.app.lifecycle.ModelStore` version name); set
            automatically by :meth:`refresh_from_store` and stamped onto
            every :class:`ServedResponse`.
        retrieval: primary-scoring tier — :data:`RETRIEVAL_EXACT` (full
            catalogue, the default) or :data:`RETRIEVAL_IVF` (probe an
            :class:`~repro.retrieval.ivf.IVFIndex` built over the
            model's item factors, exactly re-rank the candidates).
            ``"ivf"`` with a factor-less model serves exactly — the tier
            is a request, not a promise; :meth:`health` reports which is
            active.
        probe_cells: IVF probe width (default:
            :func:`~repro.retrieval.ivf.default_probe_cells` of the
            built index). ``probe_cells >= n_cells`` serves through the
            exact paths, bit for bit.
        ivf_cells: IVF cell count (default:
            :func:`~repro.retrieval.ivf.default_n_cells`).
        user_shards: optional
            :class:`~repro.retrieval.shards.UserShardStore` holding the
            model's user-factor rows; when set, primary scoring reads
            user vectors through the mmap-backed store instead of the
            in-memory matrix, and batch requests coalesce per
            ``(k, shard)`` group. The store's rows must match the
            serving model (bit-for-bit, for exact-tier identity).

    Thread safety: one service instance may be shared by any number of
    request threads (``scripts/loadgen.py`` drives exactly that). The
    LRU cache and model swap are guarded by a service lock with short
    critical sections — the lock is *never* held across model scoring,
    so cache bookkeeping cannot serialise the actual recommendation
    work. Stats, metrics instruments, and the circuit breaker each
    carry their own locks. :meth:`refresh_model` is atomic with respect
    to concurrent requests: a request observes either the old or the
    new (model, cache) pair, never a mixture.
    """

    def __init__(
        self,
        model: Recommender,
        train: InteractionMatrix,
        dataset: MergedDataset,
        cold_start_fallback: "MostReadItems | None" = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        breaker: CircuitBreaker | None = None,
        retry_policy: BackoffPolicy | None = None,
        degrade_unknown_users: bool = False,
        seed: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        retry_sleep: Callable[[float], None] = time.sleep,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        model_version: str | None = None,
        retrieval: str = RETRIEVAL_EXACT,
        probe_cells: int | None = None,
        ivf_cells: int | None = None,
        user_shards: UserShardStore | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ConfigurationError(
                f"{model.name} must be fitted before serving"
            )
        if cold_start_fallback is not None and not cold_start_fallback.is_fitted:
            raise ConfigurationError(
                "the cold-start fallback must be fitted before serving"
            )
        if cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        if retrieval not in RETRIEVAL_TIERS:
            raise ConfigurationError(
                f"retrieval must be one of {RETRIEVAL_TIERS}, got {retrieval!r}"
            )
        if probe_cells is not None and probe_cells < 1:
            raise ConfigurationError(
                f"probe_cells must be >= 1, got {probe_cells}"
            )
        if ivf_cells is not None and ivf_cells < 1:
            raise ConfigurationError(
                f"ivf_cells must be >= 1, got {ivf_cells}"
            )
        if user_shards is not None and user_shards.n_users != train.n_users:
            raise ConfigurationError(
                f"user_shards holds {user_shards.n_users} users but the "
                f"training matrix has {train.n_users}"
            )
        self.model = model
        self.train = train
        self.dataset = dataset
        self.cold_start_fallback = cold_start_fallback
        self.cache_size = cache_size
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.retry_policy = retry_policy
        self.degrade_unknown_users = degrade_unknown_users
        self.seed = seed
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.model_version = model_version
        self.retrieval = retrieval
        self.ivf_cells = ivf_cells
        self.user_shards = user_shards
        self._probe_cells_config = probe_cells
        self._m_requests = self.metrics.counter(
            "service.requests", help="requests answered (all paths)"
        )
        self._m_cache = self.metrics.counter(
            "service.cache", help="cache lookups by outcome label"
        )
        self._m_served = self.metrics.counter(
            "service.served", help="responses by served_by source label"
        )
        self._m_degraded = self.metrics.counter(
            "service.degraded", help="degraded responses by source label"
        )
        self._m_errors = self.metrics.counter(
            "service.errors", help="underlying scoring/fallback failures"
        )
        self._m_refreshes = self.metrics.counter(
            "service.refreshes", help="hot-swap attempts by outcome label"
        )
        self._m_breaker_state = self.metrics.gauge(
            "service.breaker_state", help="0=closed, 1=half-open, 2=open"
        )
        self._m_breaker_transitions = self.metrics.counter(
            "service.breaker_transitions", help="state changes by target"
        )
        self._m_retrieval = self.metrics.counter(
            "service.retrieval.requests",
            help="primary scorings by retrieval tier label",
        )
        self._m_retrieval_groups = self.metrics.counter(
            "service.retrieval.groups",
            help="coalesced batch scoring groups by tier label",
        )
        self._m_retrieval_candidates = self.metrics.counter(
            "service.retrieval.candidates",
            help="candidate items scored by the ivf tier",
        )
        self._m_retrieval_cells = self.metrics.gauge(
            "service.retrieval.cells",
            help="cells in the active ivf index (0 = exact serving)",
        )
        self._m_retrieval_recall = self.metrics.gauge(
            "service.retrieval.recall_at_k",
            help="last measured ivf recall@k against the exact tier",
        )
        latency_histogram = self.metrics.histogram(
            "service.latency_seconds", window=latency_window,
            help="per-request service latency",
        )
        self.stats = ServiceStats(
            latency_window=latency_window, histogram=latency_histogram
        )
        self.breaker.on_transition = self._on_breaker_transition
        self._m_breaker_state.set(_BREAKER_STATE_VALUE[self.breaker.state])
        self._clock = clock
        self._retry_sleep = retry_sleep
        self._model_loaded_at = clock()
        self._lock = threading.RLock()
        self._cache: OrderedDict[tuple[str, int], ServedResponse] = OrderedDict()
        # Model-swap generation: bumped by refresh_model so responses
        # resolved against a previous model are never cached afterwards.
        self._swap_token = 0
        self._ivf = self._build_index(model, user_shards)
        self._m_retrieval_cells.set(
            float(self._ivf.n_cells) if self._ivf is not None else 0.0
        )
        # The last chain link: a static popularity order over the training
        # counts, available even when every model object misbehaves.
        counts = train.item_counts().astype(np.float64)
        self._static_order = np.argsort(-counts, kind="stable")
        self._cards: dict[int, tuple[str, str]] = {}
        books = dataset.books
        for book_id, title, author in zip(
            books["book_id"], books["title"], books["author"]
        ):
            self._cards[int(book_id)] = (str(title), str(author))

    def known_user(self, user_id: str) -> bool:
        return user_id in self.train.users

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------

    @property
    def cached_entries(self) -> int:
        """How many served lists the LRU cache currently holds."""
        with self._lock:
            return len(self._cache)

    def invalidate_cache(self) -> None:
        """Drop every cached top-k list (e.g. after retraining)."""
        with self._lock:
            self._cache.clear()

    def refresh_model(
        self,
        model: Recommender,
        train: InteractionMatrix | None = None,
        cold_start_fallback: "MostReadItems | None" = None,
        model_version: str | None = None,
        user_shards: UserShardStore | None = None,
    ) -> None:
        """Swap in a newly fitted model and invalidate the served cache.

        Cached lists are only valid for the model that produced them, so
        any refresh clears the cache explicitly *and* bumps the swap
        token — a request that resolved against the previous model can
        never sneak its stale response into the fresh cache afterwards
        (:meth:`_cache_put` drops it). The breaker is reset because its
        failure history belongs to the previous model. The swap happens
        under the service lock, so a concurrent request sees either the
        old or the new (model, cache) pair. ``model_version`` replaces
        the provenance tag stamped onto responses (``None`` when the new
        model has no store version).

        When IVF retrieval is configured, the new model's index is built
        *before* the lock is taken (in-flight requests keep serving the
        old pair throughout) and swapped in together with the model.
        ``user_shards`` replaces the shard store; when omitted, any
        existing store is dropped — its rows belong to the previous
        model's factors — and scoring falls back to the in-memory
        matrix. Pass a store written from the new model's factors to
        keep shard-backed serving across a refresh.
        """
        if not model.is_fitted:
            raise ConfigurationError(
                f"{model.name} must be fitted before serving"
            )
        if cold_start_fallback is not None and not cold_start_fallback.is_fitted:
            raise ConfigurationError(
                "the cold-start fallback must be fitted before serving"
            )
        effective_train = train if train is not None else self.train
        if (
            user_shards is not None
            and user_shards.n_users != effective_train.n_users
        ):
            raise ConfigurationError(
                f"user_shards holds {user_shards.n_users} users but the "
                f"training matrix has {effective_train.n_users}"
            )
        index = self._build_index(model, user_shards)
        with self._lock:
            self.model = model
            self.model_version = model_version
            if train is not None:
                self.train = train
                counts = train.item_counts().astype(np.float64)
                self._static_order = np.argsort(-counts, kind="stable")
            if cold_start_fallback is not None:
                self.cold_start_fallback = cold_start_fallback
            self.user_shards = user_shards
            self._ivf = index
            self._m_retrieval_cells.set(
                float(index.n_cells) if index is not None else 0.0
            )
            self.breaker.reset()
            self._model_loaded_at = self._clock()
            self._swap_token += 1
            self._cache.clear()

    def refresh_from_store(
        self,
        store,
        version: "str | int | None" = None,
        probe_user: str | None = None,
    ) -> bool:
        """Zero-downtime hot swap from a versioned model store.

        The expensive work — resolving the version, checksum-verified
        loading, and candidate validation (shape/finiteness checks plus a
        smoke-scored probe user) — all happens *outside* the service
        lock, so in-flight requests keep being answered by the current
        model throughout. Only a fully validated candidate is swapped in
        (via :meth:`refresh_model`, under the lock, with the version name
        as the new provenance tag).

        Never raises to callers: any failure — a dangling ``CURRENT``,
        corruption detected by the manifest, an injected IO fault, a
        candidate that fails validation — leaves the current model
        serving, counts one :attr:`ServiceStats.refresh_failed`, and
        returns ``False``.

        Args:
            store: a :class:`~repro.app.lifecycle.ModelStore`.
            version: version name/number to load (default: ``CURRENT``).
            probe_user: user id to smoke-score during validation; default
                is the candidate's first known user.

        Returns:
            True when the candidate was swapped in, False when it was
            rejected (the previous model keeps serving).
        """
        with start_span(
            self.tracer, "service.refresh", version=str(version)
        ) as span:
            try:
                resolved = store.resolve(version)
                candidate, train = store.load(resolved)
                self._validate_candidate(candidate, train, probe_user)
            except Exception as exc:  # repro: allow[exceptions] — degrade, never fail
                self.stats.note_refresh(ok=False, error=exc)
                self._m_refreshes.labels(outcome="failed").inc()
                self._m_errors.inc()
                span.set_attrs(outcome="failed", error=type(exc).__name__)
                return False
            self.refresh_model(candidate, train, model_version=resolved.name)
            self.stats.note_refresh(ok=True)
            self._m_refreshes.labels(outcome="ok").inc()
            span.set_attrs(outcome="ok", version=resolved.name)
            return True

    def _validate_candidate(
        self,
        model: Recommender,
        train: InteractionMatrix,
        probe_user: str | None,
    ) -> None:
        """Reject a hot-swap candidate before it can reach the lock.

        Checks, in order: the model is fitted; its factor matrices (when
        it has any) are finite; and a probe user's recommendation request
        smoke-executes to a non-empty, in-catalogue list. Raises
        :class:`~repro.errors.ConfigurationError` on any failure — the
        caller converts that into a counted, non-raising rejection.
        """
        if not model.is_fitted:
            raise ConfigurationError("hot-swap candidate is not fitted")
        for attr in ("user_factors", "item_factors"):
            factors = getattr(model, attr, None)
            if factors is not None and not np.isfinite(factors).all():
                raise ConfigurationError(
                    f"hot-swap candidate has non-finite {attr}"
                )
        if train.n_users < 1 or train.n_items < 1:
            raise ConfigurationError(
                "hot-swap candidate has an empty catalogue"
            )
        if probe_user is not None:
            if probe_user not in train.users:
                raise ConfigurationError(
                    f"probe user {probe_user!r} is unknown to the candidate"
                )
            probe_index = int(train.users.index_of(probe_user))
        else:
            probe_index = 0
        k = min(DEFAULT_K, train.n_items)
        items = np.asarray(model.recommend(probe_index, k))
        if len(items) == 0:
            raise ConfigurationError(
                "hot-swap candidate served an empty list for the probe user"
            )
        if int(items.min()) < 0 or int(items.max()) >= train.n_items:
            raise ConfigurationError(
                "hot-swap candidate recommended items outside its catalogue"
            )

    def _cache_get(self, key: tuple[str, int]) -> ServedResponse | None:
        if not self.cache_size:
            return None
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
            return cached

    def _cache_put(
        self,
        key: tuple[str, int],
        response: ServedResponse,
        token: int | None = None,
    ) -> None:
        """Insert a healthy response, unless the model moved on.

        ``token`` is the :attr:`_swap_token` captured before the request
        resolved; a mismatch means :meth:`refresh_model` ran in between,
        so the response belongs to the previous model and caching it
        would serve v(N) books under v(N+1) provenance. Such late
        responses are still returned to their requester — they were
        correct when resolved — they just never enter the cache.
        """
        if not self.cache_size or response.degraded or response.error:
            return
        with self._lock:
            if token is not None and token != self._swap_token:
                return
            self._cache[key] = response
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # request paths
    # ------------------------------------------------------------------

    def recommend(self, request: RecommendationRequest) -> list[ServedBook]:
        """Handle one request; the books of :meth:`recommend_response`.

        Unknown users raise :class:`UnknownUserError` unless a cold-start
        fallback was configured (or ``degrade_unknown_users`` is set), in
        which case they get a popularity list.
        """
        return list(self.recommend_response(request).books)

    def recommend_response(self, request: RecommendationRequest) -> ServedResponse:
        """Handle one request, reporting provenance and degradation.

        Served lists are answered from the LRU cache when possible; a
        primary-model failure degrades through the fallback chain instead
        of raising.
        """
        started = self._clock()
        self._m_requests.inc()
        key = (request.user_id, request.k)
        cached = self._cache_get(key)
        if cached is not None:
            self.stats.note_cache(hit=True)
            self._m_cache.labels(outcome="hit").inc()
            self._m_served.labels(source=cached.served_by).inc()
            self.stats.record(self._clock() - started)
            return replace(cached, from_cache=True)
        self.stats.note_cache(hit=False)
        self._m_cache.labels(outcome="miss").inc()
        token = self._swap_token
        with start_span(
            self.tracer, "service.request", user_id=request.user_id,
            k=request.k,
        ) as span:
            try:
                response = self._stamped(self._resolve(request))
            except UnknownUserError:
                self.stats.record(self._clock() - started)
                raise
            span.set_attrs(
                served_by=response.served_by, degraded=response.degraded
            )
        self._account(response)
        self._cache_put(key, response, token)
        self.stats.record(self._clock() - started)
        return response

    def recommend_many(
        self, requests: Sequence[RecommendationRequest]
    ) -> list[list[ServedBook]]:
        """Handle a batch of requests in one scoring pass per distinct k.

        Every request resolves: a request that cannot be served (unknown
        user, no fallback) comes back as an empty list with the error
        recorded on its :class:`ServedResponse` (see
        :meth:`recommend_many_responses`) — it never aborts the batch.
        """
        return [
            list(response.books)
            for response in self.recommend_many_responses(requests)
        ]

    def recommend_many_responses(
        self, requests: Sequence[RecommendationRequest]
    ) -> list[ServedResponse]:
        """Batch variant of :meth:`recommend_response`; never raises.

        Cache hits are answered directly; the remaining known users are
        coalesced into one vectorised scoring call per distinct
        ``(k, shard)`` group (per distinct k when no shard store is
        configured), each counted as one breaker outcome — so a batch
        touches each user shard at most once per k and scores it in one
        gathered matmul. A failed group call degrades its whole group
        through the fallback chain; per-request failures are returned as
        error-marked responses, so one bad request cannot poison the
        rest of the batch.
        """
        started = self._clock()
        self._m_requests.inc(len(requests))
        batch_span = start_span(
            self.tracer, "service.batch", requests=len(requests)
        )
        batch_span.__enter__()
        results: list[ServedResponse | None] = [None] * len(requests)
        pending: dict[tuple[int, int], list[tuple[int, int]]] = {}
        token = self._swap_token
        shards = self.user_shards
        for position, request in enumerate(requests):
            key = (request.user_id, request.k)
            cached = self._cache_get(key)
            if cached is not None:
                self.stats.note_cache(hit=True)
                self._m_cache.labels(outcome="hit").inc()
                self._m_served.labels(source=cached.served_by).inc()
                results[position] = replace(cached, from_cache=True)
                continue
            self.stats.note_cache(hit=False)
            self._m_cache.labels(outcome="miss").inc()
            if self.known_user(request.user_id) and self.breaker.allow():
                user_index = int(self.train.users.index_of(request.user_id))
                shard = (
                    shards.shard_of(user_index) if shards is not None else 0
                )
                pending.setdefault((request.k, shard), []).append(
                    (position, user_index)
                )
                continue
            # Unknown users, and known users behind an open breaker.
            try:
                response = self._stamped(self._resolve(request))
            except UnknownUserError as exc:
                self._note_error(exc)
                response = self._stamped(ServedResponse(
                    books=(),
                    served_by=SERVED_BY_NONE,
                    degraded=True,
                    error=f"{type(exc).__name__}: {exc}",
                ))
                self.stats.note_degraded(SERVED_BY_NONE)
                self._m_degraded.labels(source=SERVED_BY_NONE).inc()
                self._m_served.labels(source=SERVED_BY_NONE).inc()
                results[position] = response
                continue
            self._account(response)
            self._cache_put(key, response, token)
            results[position] = response
        for (k, _shard), entries in pending.items():
            indices = np.asarray([index for _, index in entries], dtype=np.int64)
            try:
                batches = self._primary_batch(indices, k)
            except Exception as exc:  # repro: allow[exceptions] — degrade, never fail
                self.breaker.record_failure()
                self._note_error(exc)
                error = f"{type(exc).__name__}: {exc}"
                for position, user_index in entries:
                    items, source = self._fallback_items(user_index, k)
                    response = self._stamped(ServedResponse(
                        books=tuple(self._serve_books(items, k)),
                        served_by=source,
                        degraded=True,
                        error=error,
                    ))
                    self._account(response)
                    results[position] = response
                continue
            self.breaker.record_success()
            for (position, _), items in zip(entries, batches):
                response = self._stamped(ServedResponse(
                    books=tuple(self._serve_books(items, k)),
                    served_by=SERVED_BY_PRIMARY,
                ))
                self._account(response)
                self._cache_put((requests[position].user_id, k), response, token)
                results[position] = response
        batch_span.__exit__(None, None, None)
        if requests:
            self.stats.record(self._clock() - started, len(requests))
        return [
            result
            if result is not None
            else ServedResponse(
                books=(), served_by=SERVED_BY_NONE, degraded=True,
                error="request was not resolved",
            )
            for result in results
        ]

    def history(self, user_id: str) -> list[ServedBook]:
        """The user's training history as cards (for the GUI's shelf view)."""
        if not self.known_user(user_id):
            raise UnknownUserError(user_id)
        user_index = self.train.users.index_of(user_id)
        cards = []
        for position, item_index in enumerate(
            self.train.user_items(int(user_index)), start=1
        ):
            book_id = int(self.train.items.id_of(int(item_index)))
            title, author = self._cards.get(book_id, ("(unknown)", "(unknown)"))
            cards.append(
                ServedBook(book_id=book_id, title=title, author=author,
                           rank=position)
            )
        return cards

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The metrics registry's immutable snapshot (see
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`)."""
        return self.metrics.snapshot()

    def health(self) -> dict:
        """A service health report (breaker, cache, latency, errors).

        The ``latency`` percentiles read the same shared histogram as
        :meth:`ServiceStats.percentile` and the metrics snapshot — one
        source of truth for all three views.
        """
        stats = self.stats
        breaker = self.breaker.snapshot()
        return {
            "status": "ok" if breaker["state"] == STATE_CLOSED else "degraded",
            "breaker": breaker,
            "cache": {
                "entries": self.cached_entries,
                "capacity": self.cache_size,
                "hit_rate": round(stats.cache_hit_rate, 4),
            },
            "latency": {
                "mean_seconds": stats.mean_seconds,
                "p50": stats.percentile(0.50),
                "p95": stats.percentile(0.95),
                "p99": stats.percentile(0.99),
            },
            "model": {
                "name": self.model.name,
                "version": self.model_version,
                "staleness_seconds": round(
                    self._clock() - self._model_loaded_at, 3
                ),
            },
            "retrieval": {
                "requested": self.retrieval,
                "active": (
                    RETRIEVAL_IVF if self._ivf is not None else RETRIEVAL_EXACT
                ),
                "cells": self._ivf.n_cells if self._ivf is not None else None,
                "probe_cells": self.probe_cells,
                "shards": (
                    self.user_shards.stats()
                    if self.user_shards is not None
                    else None
                ),
            },
            "refreshes": {
                "ok": stats.refreshes,
                "failed": stats.refresh_failed,
            },
            "requests": stats.requests,
            "degraded_requests": stats.degraded_requests,
            "degradations": dict(stats.degradations),
            "errors": stats.errors,
            "last_error": stats.last_error,
        }

    # ------------------------------------------------------------------
    # resolution: primary -> most-read -> static
    # ------------------------------------------------------------------

    def _resolve(self, request: RecommendationRequest) -> ServedResponse:
        """Resolve one cache-missed request through the chain.

        Raises :class:`UnknownUserError` only for an unknown user with no
        fallback link available and ``degrade_unknown_users`` unset.
        """
        k = request.k
        deadline = (
            Deadline.start(request.timeout_seconds, self._clock)
            if request.timeout_seconds is not None
            else None
        )
        if self.known_user(request.user_id):
            user_index = int(self.train.users.index_of(request.user_id))
            if deadline is not None and deadline.expired:
                error = "deadline expired before primary scoring"
            elif self.breaker.allow():
                try:
                    items = self._primary_one(user_index, k, deadline)
                    self.breaker.record_success()
                    return ServedResponse(
                        books=tuple(self._serve_books(items, k)),
                        served_by=SERVED_BY_PRIMARY,
                    )
                except Exception as exc:  # repro: allow[exceptions] — degrade, never fail
                    self.breaker.record_failure()
                    self._note_error(exc)
                    error = f"{type(exc).__name__}: {exc}"
            else:
                error = "circuit breaker open"
            items, source = self._fallback_items(user_index, k)
            return ServedResponse(
                books=tuple(self._serve_books(items, k)),
                served_by=source,
                degraded=True,
                error=error,
            )
        # Unknown user: cold-start link, then (optionally) static.
        if self.cold_start_fallback is not None:
            try:
                items = self.cold_start_fallback.top_items(k)
                return ServedResponse(
                    books=tuple(self._serve_books(items, k)),
                    served_by=SERVED_BY_MOST_READ,
                )
            except Exception as exc:  # repro: allow[exceptions] — cold-start chain degrades
                self._note_error(exc)
                items, source = self._static_items(None, k)
                return ServedResponse(
                    books=tuple(self._serve_books(items, k)),
                    served_by=source,
                    degraded=True,
                    error=f"{type(exc).__name__}: {exc}",
                )
        if self.degrade_unknown_users:
            items, source = self._static_items(None, k)
            return ServedResponse(
                books=tuple(self._serve_books(items, k)),
                served_by=source,
                degraded=True,
                error=f"unknown user: {request.user_id!r}",
            )
        raise UnknownUserError(request.user_id)

    def _primary_one(
        self, user_index: int, k: int, deadline: Deadline | None
    ) -> np.ndarray:
        def call() -> np.ndarray:
            return self._primary_one_items(user_index, k)

        if self.retry_policy is None:
            return call()
        return retry_call(
            call,
            policy=self.retry_policy,
            seed=self.seed,
            scope="service.primary",
            sleep=self._retry_sleep,
            deadline=deadline,
        )

    def _primary_batch(self, indices: np.ndarray, k: int) -> list[np.ndarray]:
        def call() -> list[np.ndarray]:
            return self._primary_batch_items(indices, k)

        if self.retry_policy is None:
            return call()
        return retry_call(
            call,
            policy=self.retry_policy,
            seed=self.seed,
            scope="service.primary-batch",
            sleep=self._retry_sleep,
        )

    # ------------------------------------------------------------------
    # retrieval tiers: ivf probing, shard-backed exact scoring
    # ------------------------------------------------------------------

    @property
    def probe_cells(self) -> int | None:
        """The effective IVF probe width (``None`` when serving exactly).

        A configured width is clamped to the cell count; unconfigured,
        :func:`~repro.retrieval.ivf.default_probe_cells` decides.
        """
        index = self._ivf
        if index is None:
            return None
        if self._probe_cells_config is not None:
            return min(self._probe_cells_config, index.n_cells)
        return default_probe_cells(index.n_cells)

    def _build_index(
        self, model: Recommender, user_shards: UserShardStore | None
    ) -> IVFIndex | None:
        """Build the IVF index for ``model``, or ``None`` if inapplicable.

        The index needs the model's item factors to cluster and a source
        of user query vectors (the shard store or the model's
        user-factor matrix); a factor-less model serves exactly instead.
        """
        if self.retrieval != RETRIEVAL_IVF:
            return None
        item_factors = self._factors_of(model, "item_factors")
        if item_factors is None:
            return None
        if user_shards is None and self._factors_of(model, "user_factors") is None:
            return None
        return IVFIndex.build(
            item_factors, n_cells=self.ivf_cells, seed=self.seed
        )

    @staticmethod
    def _factors_of(model: Recommender, attr: str) -> np.ndarray | None:
        """A model's factor matrix, or ``None`` when it has no usable one."""
        try:
            factors = getattr(model, attr, None)
        except Exception:  # repro: allow[exceptions] — factor-less models serve exactly
            return None
        if factors is None:
            return None
        factors = np.asarray(factors)
        return factors if factors.ndim == 2 else None

    def _serving_state(
        self,
    ) -> tuple[Recommender, "IVFIndex | None", "UserShardStore | None"]:
        """A consistent (model, index, shard store) triple for one scoring.

        Taken under the lock so a concurrent :meth:`refresh_model` can
        never hand a scorer the old model with the new model's index.
        """
        with self._lock:
            return self.model, self._ivf, self.user_shards

    def _primary_one_items(self, user_index: int, k: int) -> np.ndarray:
        """Score one user through the active retrieval tier."""
        model, index, shards = self._serving_state()
        probe = self.probe_cells
        if index is not None and probe is not None and probe < index.n_cells:
            items = self._ivf_one(model, index, shards, user_index, k, probe)
            tier = RETRIEVAL_IVF
        elif shards is not None and self._factors_of(model, "item_factors") is not None:
            items = self._shard_exact_one(model, shards, user_index, k)
            tier = RETRIEVAL_EXACT
        else:
            items = model.recommend(user_index, k)
            tier = RETRIEVAL_EXACT
        self._m_retrieval.labels(tier=tier).inc()
        return items

    def _primary_batch_items(
        self, indices: np.ndarray, k: int
    ) -> list[np.ndarray]:
        """Score one coalesced ``(k, shard)`` group through the active tier."""
        model, index, shards = self._serving_state()
        probe = self.probe_cells
        if index is not None and probe is not None and probe < index.n_cells:
            items = self._ivf_batch(model, index, shards, indices, k, probe)
            tier = RETRIEVAL_IVF
        elif shards is not None and self._factors_of(model, "item_factors") is not None:
            items = self._shard_exact_batch(model, shards, indices, k)
            tier = RETRIEVAL_EXACT
        else:
            items = model.recommend_batch(indices, k)
            tier = RETRIEVAL_EXACT
        self._m_retrieval.labels(tier=tier).inc(len(indices))
        self._m_retrieval_groups.labels(tier=tier).inc()
        return items

    def _user_query(
        self,
        model: Recommender,
        shards: "UserShardStore | None",
        user_index: int,
    ) -> np.ndarray:
        """One user's float64 query vector (shard store, else in-memory)."""
        if shards is not None:
            row = shards.user_vector(user_index)
        else:
            row = np.asarray(model.user_factors)[user_index]
        return np.asarray(row, dtype=np.float64)

    def _ivf_one(
        self,
        model: Recommender,
        index: IVFIndex,
        shards: "UserShardStore | None",
        user_index: int,
        k: int,
        probe: int,
    ) -> np.ndarray:
        """IVF tier, one user: probe cells, exactly re-rank the pool."""
        query = self._user_query(model, shards, user_index)
        exclude = self._seen_items(user_index if model.exclude_seen else None)
        pool = index.candidates(query, probe, min_candidates=k + len(exclude))
        self._m_retrieval_candidates.inc(len(pool))
        return index.rerank(pool, query, k, exclude)

    def _ivf_batch(
        self,
        model: Recommender,
        index: IVFIndex,
        shards: "UserShardStore | None",
        indices: np.ndarray,
        k: int,
        probe: int,
    ) -> list[np.ndarray]:
        """IVF tier, one group: per-user pools, one coalesced matmul.

        All pools are scored together against their union in a single
        ``(users, |union|)`` GEMM; each row then masks items outside its
        own pool (and its seen items) before the shared batched top-k
        cut. Rankings match :meth:`_ivf_one` — the scores are the same
        exact dot products — though float summation order may differ
        between the two GEMM shapes, so the IVF tier's batch/single
        agreement is semantic, not bitwise (the exact tier's is bitwise).
        """
        if shards is not None:
            queries = np.asarray(shards.gather(indices), dtype=np.float64)
        else:
            queries = np.asarray(
                np.asarray(model.user_factors)[indices], dtype=np.float64
            )
        pools: list[np.ndarray] = []
        excludes: list[np.ndarray] = []
        for row in range(len(indices)):
            user_index = int(indices[row])
            exclude = self._seen_items(
                user_index if model.exclude_seen else None
            )
            excludes.append(exclude)
            pools.append(
                index.candidates(
                    queries[row], probe, min_candidates=k + len(exclude)
                )
            )
        union = np.unique(np.concatenate(pools))
        self._m_retrieval_candidates.inc(int(sum(len(p) for p in pools)))
        scores = queries @ index.vectors[union].T
        for row in range(len(indices)):
            drop = ~np.isin(union, pools[row], assume_unique=True)
            if len(excludes[row]):
                drop |= np.isin(union, excludes[row])
            scores[row, drop] = EXCLUDED_SCORE
        return [union[top] for top in top_k_rows(scores, k)]

    def _shard_exact_one(
        self,
        model: Recommender,
        shards: UserShardStore,
        user_index: int,
        k: int,
    ) -> np.ndarray:
        """Exact tier through the shard store, one user.

        Bit-identical to ``model.recommend``: the query row is
        byte-equal to the in-memory factor row, the GEMM has the same
        operands and shape, the mask hits the same positions, and the
        cut is the same :func:`~repro.core.base._top_k`.
        """
        query = shards.user_vector(user_index)
        scores = (query[np.newaxis, :] @ np.asarray(model.item_factors).T)[0]
        if model.exclude_seen:
            seen = self._seen_items(user_index)
            if len(seen):
                scores[seen] = EXCLUDED_SCORE
        return _top_k(scores, k)

    def _shard_exact_batch(
        self,
        model: Recommender,
        shards: UserShardStore,
        indices: np.ndarray,
        k: int,
    ) -> list[np.ndarray]:
        """Exact tier through the shard store, one coalesced group.

        One gathered matmul per group; shares
        :func:`~repro.core.base.mask_seen_rows` and
        :func:`~repro.core.base.top_k_rows` with
        ``model.recommend_batch``, so the two are bit-identical.
        """
        scores = shards.gather(indices) @ np.asarray(model.item_factors).T
        if model.exclude_seen:
            mask_seen_rows(scores, self.train.csr, indices)
        return top_k_rows(scores, k)

    def measure_retrieval_recall(
        self,
        k: int = 10,
        sample_users: int = DEFAULT_RECALL_SAMPLE,
    ) -> float:
        """Measure IVF recall@k against the exact tier on sampled users.

        Samples up to ``sample_users`` known users deterministically
        (``repro.rng`` on the service seed), compares the probed top-k
        with the exact top-k under the same seen-item masks, records the
        mean overlap on the ``service.retrieval.recall_at_k`` gauge, and
        returns it. Exact serving (no active index, or probe-everything)
        is its own reference: recall is 1.0 by construction.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if sample_users < 1:
            raise ConfigurationError(
                f"sample_users must be >= 1, got {sample_users}"
            )
        model, index, shards = self._serving_state()
        probe = self.probe_cells
        if index is None or probe is None or probe >= index.n_cells:
            self._m_retrieval_recall.set(1.0)
            return 1.0
        rng = derive_rng(self.seed, "service", "retrieval", "recall")
        n_users = self.train.n_users
        users = np.sort(
            rng.choice(n_users, size=min(sample_users, n_users), replace=False)
        )
        queries = np.stack(
            [self._user_query(model, shards, int(u)) for u in users]
        )
        exclude = [
            self._seen_items(int(u) if model.exclude_seen else None)
            for u in users
        ]
        recall = recall_at_k(index, queries, k, probe, exclude=exclude)
        self._m_retrieval_recall.set(recall)
        return recall

    def _fallback_items(
        self, user_index: int | None, k: int
    ) -> tuple[np.ndarray, str]:
        """The degradation chain below the primary model; never raises.

        Known users get their already-read books filtered out of the
        popularity list (the service's lists must stay unread even when
        degraded); unknown users have no history to filter.
        """
        if self.cold_start_fallback is not None:
            try:
                seen = self._seen_items(user_index)
                items = self.cold_start_fallback.top_items(k + len(seen))
                if len(seen):
                    items = items[~np.isin(items, seen)]
                return items[:k], SERVED_BY_MOST_READ
            except Exception as exc:  # repro: allow[exceptions] — fall further down the chain
                self._note_error(exc)
        return self._static_items(user_index, k)

    def _static_items(
        self, user_index: int | None, k: int
    ) -> tuple[np.ndarray, str]:
        """The chain's last link: a precomputed popularity order (pure
        numpy over an array captured at construction, so it cannot fail)."""
        seen = self._seen_items(user_index)
        items = self._static_order
        if len(seen):
            items = items[~np.isin(items, seen)]
        return items[:k], SERVED_BY_STATIC

    def _seen_items(self, user_index: int | None) -> np.ndarray:
        if user_index is None:
            return np.asarray([], dtype=np.int64)
        return np.asarray(self.train.user_items(user_index), dtype=np.int64)

    def _stamped(self, response: ServedResponse) -> ServedResponse:
        """Attach the serving model's version provenance to a response.

        Read without the lock: during a concurrent hot swap a response
        may carry the adjacent version's name, but always the name of a
        *published* version — never a torn or invalid tag.
        """
        version = self.model_version
        if version is None or response.model_version == version:
            return response
        return replace(response, model_version=version)

    def _note_error(self, error: BaseException | str) -> None:
        """Record a failure in both the stats and the metrics registry."""
        self.stats.note_error(error)
        self._m_errors.inc()

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self._m_breaker_state.set(_BREAKER_STATE_VALUE.get(new, -1.0))
        self._m_breaker_transitions.labels(to=new).inc()

    def _account(self, response: ServedResponse) -> None:
        """Mirror one resolved response into stats and metrics."""
        self._m_served.labels(source=response.served_by).inc()
        if response.degraded:
            self.stats.note_degraded(response.served_by, error=response.error)
            self._m_degraded.labels(source=response.served_by).inc()

    def _serve_books(self, items: np.ndarray, k: int) -> list[ServedBook]:
        served = []
        for rank, item_index in enumerate(items, start=1):
            book_id = int(self.train.items.id_of(int(item_index)))
            title, author = self._cards.get(book_id, ("(unknown)", "(unknown)"))
            served.append(
                ServedBook(book_id=book_id, title=title, author=author, rank=rank)
            )
        return served

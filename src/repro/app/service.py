"""The recommendation service behind the Reading&Machine GUI.

The paper's application shows each library user a list of k = 20 books
("a good trade-off between the quality of recommendations and the
prevention of users' choice overload"). This module provides that request
path over any fitted :class:`~repro.core.base.Recommender`: user id in,
book cards out, with latency accounting matching Table 2's methodology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.core.most_read import MostReadItems
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, UnknownUserError

#: The paper's deployed list length.
DEFAULT_K = 20


@dataclass(frozen=True)
class RecommendationRequest:
    """One GUI request."""

    user_id: str
    k: int = DEFAULT_K

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class ServedBook:
    """One recommended book, as shown on a GUI card."""

    book_id: int
    title: str
    author: str
    rank: int


@dataclass
class ServiceStats:
    """Aggregate latency accounting (Table 2 semantics)."""

    requests: int = 0
    total_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.requests if self.requests else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.quantile(np.asarray(self.latencies), q))


class RecommendationService:
    """Serve top-k recommendations for library users.

    Args:
        model: a fitted recommender.
        train: the interaction matrix the model was fitted on (provides the
            user indexing).
        dataset: the merged dataset (provides titles/authors for cards).
        cold_start_fallback: optional fitted
            :class:`~repro.core.most_read.MostReadItems`; when given,
            unknown users receive the global top-k instead of an error.
            (The paper leaves personalised cold-start to future work; a
            popularity list is the standard deployed stopgap.)
    """

    def __init__(
        self,
        model: Recommender,
        train: InteractionMatrix,
        dataset: MergedDataset,
        cold_start_fallback: "MostReadItems | None" = None,
    ) -> None:
        if not model.is_fitted:
            raise ConfigurationError(
                f"{model.name} must be fitted before serving"
            )
        if cold_start_fallback is not None and not cold_start_fallback.is_fitted:
            raise ConfigurationError(
                "the cold-start fallback must be fitted before serving"
            )
        self.model = model
        self.train = train
        self.dataset = dataset
        self.cold_start_fallback = cold_start_fallback
        self.stats = ServiceStats()
        self._cards: dict[int, tuple[str, str]] = {}
        books = dataset.books
        for book_id, title, author in zip(
            books["book_id"], books["title"], books["author"]
        ):
            self._cards[int(book_id)] = (str(title), str(author))

    def known_user(self, user_id: str) -> bool:
        return user_id in self.train.users

    def recommend(self, request: RecommendationRequest) -> list[ServedBook]:
        """Handle one request.

        Unknown users raise :class:`UnknownUserError` unless a cold-start
        fallback was configured, in which case they get the global most-read
        list.
        """
        started = time.perf_counter()
        if self.known_user(request.user_id):
            user_index = self.train.users.index_of(request.user_id)
            items = self.model.recommend(int(user_index), request.k)
        elif self.cold_start_fallback is not None:
            items = self.cold_start_fallback.top_items(request.k)
        else:
            raise UnknownUserError(request.user_id)
        elapsed = time.perf_counter() - started
        self.stats.requests += 1
        self.stats.total_seconds += elapsed
        self.stats.latencies.append(elapsed)
        served = []
        for rank, item_index in enumerate(items, start=1):
            book_id = int(self.train.items.id_of(int(item_index)))
            title, author = self._cards.get(book_id, ("(unknown)", "(unknown)"))
            served.append(
                ServedBook(book_id=book_id, title=title, author=author, rank=rank)
            )
        return served

    def history(self, user_id: str) -> list[ServedBook]:
        """The user's training history as cards (for the GUI's shelf view)."""
        if not self.known_user(user_id):
            raise UnknownUserError(user_id)
        user_index = self.train.users.index_of(user_id)
        cards = []
        for position, item_index in enumerate(
            self.train.user_items(int(user_index)), start=1
        ):
            book_id = int(self.train.items.id_of(int(item_index)))
            title, author = self._cards.get(book_id, ("(unknown)", "(unknown)"))
            cards.append(
                ServedBook(book_id=book_id, title=title, author=author,
                           rank=position)
            )
        return cards

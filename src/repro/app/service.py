"""The recommendation service behind the Reading&Machine GUI.

The paper's application shows each library user a list of k = 20 books
("a good trade-off between the quality of recommendations and the
prevention of users' choice overload"). This module provides that request
path over any fitted :class:`~repro.core.base.Recommender`: user id in,
book cards out, with latency accounting matching Table 2's methodology.

Serving-scale additions: a bounded LRU cache of served top-k lists keyed
on ``(user_id, k)`` (models are read-only between refreshes, so a user's
list only changes when the model does — :meth:`RecommendationService.refresh_model`
invalidates the cache explicitly), a :meth:`~RecommendationService.recommend_many`
batch endpoint that funnels cache misses through the vectorised
:meth:`~repro.core.base.Recommender.recommend_batch` scoring path, and a
bounded latency window so long-lived services don't grow without limit.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.core.most_read import MostReadItems
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, UnknownUserError

#: The paper's deployed list length.
DEFAULT_K = 20

#: Served top-k lists kept in the LRU cache by default.
DEFAULT_CACHE_SIZE = 1024

#: Per-request latencies kept for percentile reporting by default.
DEFAULT_LATENCY_WINDOW = 10_000


@dataclass(frozen=True)
class RecommendationRequest:
    """One GUI request."""

    user_id: str
    k: int = DEFAULT_K

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class ServedBook:
    """One recommended book, as shown on a GUI card."""

    book_id: int
    title: str
    author: str
    rank: int


@dataclass
class ServiceStats:
    """Aggregate latency and cache accounting (Table 2 semantics).

    ``latencies`` is a bounded deque (``latency_window`` most recent
    requests) so a long-lived service's memory stays constant;
    :meth:`percentile` reports over that window.
    """

    requests: int = 0
    total_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    latency_window: int = DEFAULT_LATENCY_WINDOW
    latencies: deque = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.latency_window < 1:
            raise ConfigurationError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )
        self.latencies = deque(maxlen=self.latency_window)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.requests if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.quantile(np.asarray(self.latencies), q))

    def record(self, elapsed: float, requests: int = 1) -> None:
        """Account ``requests`` requests served in ``elapsed`` seconds."""
        self.requests += requests
        self.total_seconds += elapsed
        per_request = elapsed / requests if requests else 0.0
        for _ in range(requests):
            self.latencies.append(per_request)


class RecommendationService:
    """Serve top-k recommendations for library users.

    Args:
        model: a fitted recommender.
        train: the interaction matrix the model was fitted on (provides the
            user indexing).
        dataset: the merged dataset (provides titles/authors for cards).
        cold_start_fallback: optional fitted
            :class:`~repro.core.most_read.MostReadItems`; when given,
            unknown users receive the global top-k instead of an error.
            (The paper leaves personalised cold-start to future work; a
            popularity list is the standard deployed stopgap.)
        cache_size: served lists kept in the LRU top-k cache; ``0``
            disables caching.
        latency_window: per-request latencies retained for percentile
            reporting.
    """

    def __init__(
        self,
        model: Recommender,
        train: InteractionMatrix,
        dataset: MergedDataset,
        cold_start_fallback: "MostReadItems | None" = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
    ) -> None:
        if not model.is_fitted:
            raise ConfigurationError(
                f"{model.name} must be fitted before serving"
            )
        if cold_start_fallback is not None and not cold_start_fallback.is_fitted:
            raise ConfigurationError(
                "the cold-start fallback must be fitted before serving"
            )
        if cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        self.model = model
        self.train = train
        self.dataset = dataset
        self.cold_start_fallback = cold_start_fallback
        self.cache_size = cache_size
        self.stats = ServiceStats(latency_window=latency_window)
        self._cache: OrderedDict[tuple[str, int], tuple[ServedBook, ...]] = (
            OrderedDict()
        )
        self._cards: dict[int, tuple[str, str]] = {}
        books = dataset.books
        for book_id, title, author in zip(
            books["book_id"], books["title"], books["author"]
        ):
            self._cards[int(book_id)] = (str(title), str(author))

    def known_user(self, user_id: str) -> bool:
        return user_id in self.train.users

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------

    @property
    def cached_entries(self) -> int:
        return len(self._cache)

    def invalidate_cache(self) -> None:
        """Drop every cached top-k list (e.g. after retraining)."""
        self._cache.clear()

    def refresh_model(
        self,
        model: Recommender,
        train: InteractionMatrix | None = None,
        cold_start_fallback: "MostReadItems | None" = None,
    ) -> None:
        """Swap in a newly fitted model and invalidate the served cache.

        Cached lists are only valid for the model that produced them, so
        any refresh clears the cache explicitly.
        """
        if not model.is_fitted:
            raise ConfigurationError(
                f"{model.name} must be fitted before serving"
            )
        if cold_start_fallback is not None and not cold_start_fallback.is_fitted:
            raise ConfigurationError(
                "the cold-start fallback must be fitted before serving"
            )
        self.model = model
        if train is not None:
            self.train = train
        if cold_start_fallback is not None:
            self.cold_start_fallback = cold_start_fallback
        self.invalidate_cache()

    def _cache_get(self, key: tuple[str, int]) -> tuple[ServedBook, ...] | None:
        if not self.cache_size:
            return None
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
        return cached

    def _cache_put(self, key: tuple[str, int], books: tuple[ServedBook, ...]) -> None:
        if not self.cache_size:
            return
        self._cache[key] = books
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # request paths
    # ------------------------------------------------------------------

    def recommend(self, request: RecommendationRequest) -> list[ServedBook]:
        """Handle one request.

        Unknown users raise :class:`UnknownUserError` unless a cold-start
        fallback was configured, in which case they get the global most-read
        list. Served lists are answered from the LRU cache when possible.
        """
        started = time.perf_counter()
        key = (request.user_id, request.k)
        cached = self._cache_get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self.stats.record(time.perf_counter() - started)
            return list(cached)
        self.stats.cache_misses += 1
        served = tuple(self._serve_books(self._score_one(request), request.k))
        self._cache_put(key, served)
        self.stats.record(time.perf_counter() - started)
        return list(served)

    def recommend_many(
        self, requests: Sequence[RecommendationRequest]
    ) -> list[list[ServedBook]]:
        """Handle a batch of requests in one scoring pass per distinct k.

        Cache hits are answered directly; the remaining known users funnel
        through :meth:`~repro.core.base.Recommender.recommend_batch`, which
        scores and top-k-cuts the whole group with vectorised kernels.
        """
        started = time.perf_counter()
        results: list[list[ServedBook] | None] = [None] * len(requests)
        pending: dict[int, list[tuple[int, int]]] = {}
        for position, request in enumerate(requests):
            key = (request.user_id, request.k)
            cached = self._cache_get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                results[position] = list(cached)
                continue
            self.stats.cache_misses += 1
            if self.known_user(request.user_id):
                user_index = int(self.train.users.index_of(request.user_id))
                pending.setdefault(request.k, []).append((position, user_index))
            elif self.cold_start_fallback is not None:
                items = self.cold_start_fallback.top_items(request.k)
                served = tuple(self._serve_books(items, request.k))
                self._cache_put(key, served)
                results[position] = list(served)
            else:
                raise UnknownUserError(request.user_id)
        for k, entries in pending.items():
            indices = np.asarray([index for _, index in entries], dtype=np.int64)
            batches = self.model.recommend_batch(indices, k)
            for (position, _), items in zip(entries, batches):
                served = tuple(self._serve_books(items, k))
                self._cache_put((requests[position].user_id, k), served)
                results[position] = list(served)
        if requests:
            self.stats.record(time.perf_counter() - started, len(requests))
        return [result if result is not None else [] for result in results]

    def history(self, user_id: str) -> list[ServedBook]:
        """The user's training history as cards (for the GUI's shelf view)."""
        if not self.known_user(user_id):
            raise UnknownUserError(user_id)
        user_index = self.train.users.index_of(user_id)
        cards = []
        for position, item_index in enumerate(
            self.train.user_items(int(user_index)), start=1
        ):
            book_id = int(self.train.items.id_of(int(item_index)))
            title, author = self._cards.get(book_id, ("(unknown)", "(unknown)"))
            cards.append(
                ServedBook(book_id=book_id, title=title, author=author,
                           rank=position)
            )
        return cards

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _score_one(self, request: RecommendationRequest) -> np.ndarray:
        if self.known_user(request.user_id):
            user_index = self.train.users.index_of(request.user_id)
            return self.model.recommend(int(user_index), request.k)
        if self.cold_start_fallback is not None:
            return self.cold_start_fallback.top_items(request.k)
        raise UnknownUserError(request.user_id)

    def _serve_books(self, items: np.ndarray, k: int) -> list[ServedBook]:
        served = []
        for rank, item_index in enumerate(items, start=1):
            book_id = int(self.train.items.id_of(int(item_index)))
            title, author = self._cards.get(book_id, ("(unknown)", "(unknown)"))
            served.append(
                ServedBook(book_id=book_id, title=title, author=author, rank=rank)
            )
        return served

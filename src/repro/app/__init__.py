"""Application layer: the Reading&Machine serving path.

:class:`~repro.app.service.RecommendationService` wraps a fitted
recommender behind the request/response interface the paper's VR GUI
calls: resolve the user, produce the top-k unread books with their titles
and authors, track per-request latency. :mod:`~repro.app.persistence`
saves and loads fitted models and merged datasets so the service can start
without retraining, and :mod:`~repro.app.lifecycle` versions those model
artefacts in a crash-safe :class:`~repro.app.lifecycle.ModelStore` with
publish / rollback / gc operations and zero-downtime hot swap into the
running service.
"""

from repro.app.service import (
    RecommendationRequest,
    RecommendationService,
    ServedBook,
    ServedResponse,
    ServiceStats,
)
from repro.app.lifecycle import ModelStore, ModelVersion
from repro.app.persistence import load_bpr, load_dataset, save_bpr, save_dataset

__all__ = [
    "ModelStore",
    "ModelVersion",
    "RecommendationRequest",
    "RecommendationService",
    "ServedBook",
    "ServedResponse",
    "ServiceStats",
    "load_bpr",
    "load_dataset",
    "save_bpr",
    "save_dataset",
]

"""Saving and loading artefacts: merged datasets and fitted BPR models.

Datasets persist as a directory of typed CSV tables; BPR models as an
``.npz`` of factor matrices plus indexer ids. This lets the deployed
service (and the examples) start from disk instead of regenerating and
refitting.

Every artefact is crash-safe and self-verifying:

- files are written through
  :func:`repro.resilience.artefacts.atomic_write` (temp + fsync +
  rename), so an interrupted save never leaves a half-written file under
  the final name;
- a SHA-256 checksum manifest is written beside each artefact
  (``MANIFEST.json`` inside a dataset directory,
  ``<model>.npz.manifest.json`` beside a model) and verified on load,
  with precise :class:`~repro.errors.PersistenceError` subclasses for a
  missing manifest, truncation, corruption, and version mismatch;
- the model archive stores only plain numeric/string arrays, so loading
  never needs ``allow_pickle`` (a pickle in an artefact is arbitrary code
  execution waiting to happen).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.bpr import BPR, BPRConfig
from repro.core.interactions import Indexer, InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ArtefactVersionError, PersistenceError
from repro.resilience._ambient import fault_check
from repro.resilience.artefacts import (
    atomic_write,
    verify_manifest,
    write_manifest,
)
from repro.tables import read_csv, write_csv

DATASET_FILES = ("books.csv", "readings.csv", "genres.csv")

#: Kind tags stamped into manifests (a model manifest cannot vouch for a
#: dataset and vice versa).
DATASET_KIND = "dataset"
BPR_KIND = "bpr-model"

#: Version of the ``.npz`` layout; bumped when arrays are added/retyped.
#: Version 2 dropped the pickled object arrays of version 1.
BPR_FORMAT_VERSION = 2


def save_dataset(dataset: MergedDataset, directory: str | Path) -> None:
    """Write a merged dataset as three typed CSV files plus a manifest."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_csv(dataset.books, directory / "books.csv")
    write_csv(dataset.readings, directory / "readings.csv")
    write_csv(dataset.genres, directory / "genres.csv")
    write_manifest(
        directory,
        [directory / name for name in DATASET_FILES],
        kind=DATASET_KIND,
    )


def load_dataset(directory: str | Path, verify: bool = True) -> MergedDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    With ``verify=True`` (the default) the checksum manifest is checked
    first, so truncated or corrupted tables fail with a precise
    :class:`~repro.errors.PersistenceError` subclass before any parsing.
    """
    directory = Path(directory)
    for name in DATASET_FILES:
        if not (directory / name).exists():
            raise PersistenceError(
                f"{directory} is not a saved dataset: missing {name}"
            )
    if verify:
        verify_manifest(directory, kind=DATASET_KIND)
    dataset = MergedDataset(
        books=read_csv(directory / "books.csv"),
        readings=read_csv(directory / "readings.csv"),
        genres=read_csv(directory / "genres.csv"),
    )
    dataset.validate()
    return dataset


def _npz_path(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_bpr(model: BPR, train: InteractionMatrix, path: str | Path) -> None:
    """Persist a fitted BPR model (factors + indexers + config) atomically."""
    path = _npz_path(path)
    config_json = json.dumps(asdict(model.config))
    with atomic_write(path, "wb") as handle:
        np.savez_compressed(
            handle,
            format_version=np.asarray([BPR_FORMAT_VERSION], dtype=np.int64),
            user_factors=model.user_factors,
            item_factors=model.item_factors,
            user_ids=np.asarray([str(u) for u in train.users.ids], dtype=np.str_),
            item_ids=np.asarray(train.items.ids, dtype=np.int64),
            train_indptr=train.csr.indptr,
            train_indices=train.csr.indices,
            train_data=train.csr.data,
            config=np.asarray([config_json], dtype=np.str_),
        )
    write_manifest(
        path,
        [path],
        kind=BPR_KIND,
        extra={"format_version": BPR_FORMAT_VERSION},
    )


def load_bpr(
    path: str | Path, verify: bool = True
) -> tuple[BPR, InteractionMatrix]:
    """Load a model saved by :func:`save_bpr`, ready to serve.

    The checksum manifest is verified first (``verify=True``), the archive
    is read with ``allow_pickle=False``, and every array is validated —
    both factor matrices' shapes and the CSR triplet's consistency with
    the saved indexers — before a model is constructed.
    """
    path = Path(path)
    if not path.exists():
        # numpy appends .npz when saving without a suffix.
        candidate = path.with_suffix(path.suffix + ".npz")
        if not candidate.exists():
            raise PersistenceError(f"no saved model at {path}")
        path = candidate
    if verify:
        verify_manifest(path, kind=BPR_KIND)
    # Read-side crash point: chaos tests inject IO faults here to prove a
    # failed load (not just a failed save) degrades cleanly — e.g. a hot
    # swap that cannot read its candidate keeps serving the old model.
    fault_check("io.read")
    try:
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["format_version"][0])
            if version != BPR_FORMAT_VERSION:
                raise ArtefactVersionError(
                    f"{path} has BPR format version {version}; this build "
                    f"reads version {BPR_FORMAT_VERSION}"
                )
            config = BPRConfig(**json.loads(str(archive["config"][0])))
            model = BPR(config)
            users = Indexer(str(u) for u in archive["user_ids"])
            items = Indexer(int(i) for i in archive["item_ids"])
            indptr = archive["train_indptr"]
            indices = archive["train_indices"]
            data = archive["train_data"]
            _validate_csr_triplet(
                path, indptr, indices, data, len(users), len(items)
            )
            from scipy import sparse

            csr = sparse.csr_matrix(
                (data, indices, indptr), shape=(len(users), len(items))
            )
            train = InteractionMatrix(users, items, csr)
            model._train = train
            model._user_factors = archive["user_factors"]
            model._item_factors = archive["item_factors"]
    except (KeyError, ValueError, OSError) as exc:
        raise PersistenceError(f"cannot load BPR model from {path}: {exc}") from exc
    if model._user_factors.shape != (len(users), config.n_factors):
        raise PersistenceError(
            f"saved user factors have shape {model._user_factors.shape}, "
            f"expected ({len(users)}, {config.n_factors})"
        )
    if model._item_factors.shape != (len(items), config.n_factors):
        raise PersistenceError(
            f"saved item factors have shape {model._item_factors.shape}, "
            f"expected ({len(items)}, {config.n_factors})"
        )
    return model, train


def _validate_csr_triplet(
    path: Path,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    n_users: int,
    n_items: int,
) -> None:
    """Check the saved CSR triplet is consistent with the saved indexers."""
    if indptr.ndim != 1 or len(indptr) != n_users + 1:
        raise PersistenceError(
            f"{path}: train_indptr has {len(indptr)} entries, expected "
            f"{n_users + 1} (one per user plus one)"
        )
    if len(indptr) and int(indptr[0]) != 0:
        raise PersistenceError(f"{path}: train_indptr does not start at 0")
    if (np.diff(indptr) < 0).any():
        raise PersistenceError(f"{path}: train_indptr is not monotonic")
    nnz = int(indptr[-1]) if len(indptr) else 0
    if len(indices) != nnz or len(data) != nnz:
        raise PersistenceError(
            f"{path}: CSR arrays disagree: indptr promises {nnz} entries, "
            f"indices has {len(indices)} and data has {len(data)}"
        )
    if len(indices) and (
        int(indices.min()) < 0 or int(indices.max()) >= n_items
    ):
        raise PersistenceError(
            f"{path}: train_indices reference items outside the saved "
            f"catalogue of {n_items}"
        )

"""Saving and loading artefacts: merged datasets and fitted BPR models.

Datasets persist as a directory of typed CSV tables; BPR models as an
``.npz`` of factor matrices plus indexer ids. This lets the deployed
service (and the examples) start from disk instead of regenerating and
refitting.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.bpr import BPR, BPRConfig
from repro.core.interactions import Indexer, InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import PersistenceError
from repro.tables import read_csv, write_csv

DATASET_FILES = ("books.csv", "readings.csv", "genres.csv")


def save_dataset(dataset: MergedDataset, directory: str | Path) -> None:
    """Write a merged dataset as three typed CSV files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_csv(dataset.books, directory / "books.csv")
    write_csv(dataset.readings, directory / "readings.csv")
    write_csv(dataset.genres, directory / "genres.csv")


def load_dataset(directory: str | Path) -> MergedDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    for name in DATASET_FILES:
        if not (directory / name).exists():
            raise PersistenceError(
                f"{directory} is not a saved dataset: missing {name}"
            )
    dataset = MergedDataset(
        books=read_csv(directory / "books.csv"),
        readings=read_csv(directory / "readings.csv"),
        genres=read_csv(directory / "genres.csv"),
    )
    dataset.validate()
    return dataset


def save_bpr(model: BPR, train: InteractionMatrix, path: str | Path) -> None:
    """Persist a fitted BPR model (factors + indexers + config)."""
    path = Path(path)
    config_json = json.dumps(asdict(model.config))
    np.savez_compressed(
        path,
        user_factors=model.user_factors,
        item_factors=model.item_factors,
        user_ids=np.asarray(train.users.ids, dtype=object),
        item_ids=np.asarray(train.items.ids, dtype=np.int64),
        train_indptr=train.csr.indptr,
        train_indices=train.csr.indices,
        train_data=train.csr.data,
        config=np.asarray([config_json], dtype=object),
    )


def load_bpr(path: str | Path) -> tuple[BPR, InteractionMatrix]:
    """Load a model saved by :func:`save_bpr`, ready to serve."""
    path = Path(path)
    if not path.exists():
        # numpy appends .npz when saving without a suffix.
        candidate = path.with_suffix(path.suffix + ".npz")
        if not candidate.exists():
            raise PersistenceError(f"no saved model at {path}")
        path = candidate
    try:
        archive = np.load(path, allow_pickle=True)
        config = BPRConfig(**json.loads(str(archive["config"][0])))
        model = BPR(config)
        users = Indexer(str(u) for u in archive["user_ids"])
        items = Indexer(int(i) for i in archive["item_ids"])
        from scipy import sparse

        csr = sparse.csr_matrix(
            (
                archive["train_data"],
                archive["train_indices"],
                archive["train_indptr"],
            ),
            shape=(len(users), len(items)),
        )
        train = InteractionMatrix(users, items, csr)
        model._train = train
        model._user_factors = archive["user_factors"]
        model._item_factors = archive["item_factors"]
    except (KeyError, ValueError, OSError) as exc:
        raise PersistenceError(f"cannot load BPR model from {path}: {exc}") from exc
    if model._user_factors.shape != (len(users), config.n_factors):
        raise PersistenceError(
            f"saved factors have shape {model._user_factors.shape}, expected "
            f"({len(users)}, {config.n_factors})"
        )
    return model, train

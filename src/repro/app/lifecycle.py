"""Online model lifecycle: the versioned, crash-safe model store.

Libraries acquire books and readers continuously, so the fitted BPR
model is a *living artefact*: it gets retrained (warm-started from its
predecessor), extended with folded-in users, published, served, rolled
back, and garbage-collected — all without restarting the service. This
module provides the storage half of that lifecycle; the serving half is
:meth:`~repro.app.service.RecommendationService.refresh_from_store`.

A :class:`ModelStore` is a directory of monotonically numbered version
directories plus an atomically-renamed ``CURRENT`` pointer file::

    store/
      v000001/
        model.npz
        model.npz.manifest.json
      v000002/
        ...
      CURRENT            # one line: the published version's name

Every write goes through :func:`~repro.resilience.artefacts.atomic_write`
(temp + fsync + rename) and every version carries a SHA-256 checksum
manifest, so the store inherits the resilience layer's two guarantees —
and its ``fault_check`` crash points, which the chaos suite drives to
prove that a publish interrupted at *any* write, rename, or read leaves
the previously published version intact, loadable, and still pointed at
by ``CURRENT``. A new version is always written into a fresh directory
and ``CURRENT`` is renamed over only after the version verifies, so
there is no crash window in which a reader can observe a half-published
model.

Single-writer contract: one process publishes/rolls back/garbage-collects
at a time (the library serving deployment). Readers — any number of
service processes calling :meth:`ModelStore.load` — are always safe
because published versions are immutable.
"""

from __future__ import annotations

import re
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.app.persistence import BPR_KIND, load_bpr, save_bpr
from repro.core.bpr import BPR
from repro.core.interactions import InteractionMatrix
from repro.errors import PersistenceError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span
from repro.resilience.artefacts import atomic_write, verify_manifest

#: Name of the pointer file naming the published version.
CURRENT_NAME = "CURRENT"

#: The model artefact inside each version directory.
MODEL_FILENAME = "model.npz"

#: Version directories are ``v`` + zero-padded number (sorts lexically).
_VERSION_PATTERN = re.compile(r"^v(\d{6,})$")

#: Versions :meth:`ModelStore.gc` keeps by default (beyond ``CURRENT``).
DEFAULT_GC_KEEP = 2

#: Version status values reported by :meth:`ModelStore.status`.
STATUS_OK = "ok"


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published (or in-flight) version of the model."""

    number: int
    path: Path

    @property
    def name(self) -> str:
        """The version's directory name (``v000001``, ...)."""
        return self.path.name

    @property
    def model_path(self) -> Path:
        """The ``model.npz`` artefact inside the version directory."""
        return self.path / MODEL_FILENAME


def version_name(number: int) -> str:
    """The canonical directory name for version ``number``."""
    return f"v{number:06d}"


class ModelStore:
    """A directory of checksummed model versions with a ``CURRENT`` pointer.

    Args:
        root: the store directory (created on first publish).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            publishes, rollbacks, and gc sweeps are counted under
            ``lifecycle.*``.
        tracer: optional :class:`~repro.obs.trace.Tracer`; each lifecycle
            operation gets a span.
    """

    def __init__(
        self,
        root: str | Path,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics
        self.tracer = tracer

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------

    def versions(self) -> list[ModelVersion]:
        """Every version directory in the store, sorted by number.

        Includes broken versions (interrupted publishes); check
        :meth:`status` to distinguish them.
        """
        if not self.root.is_dir():
            return []
        found = []
        for entry in self.root.iterdir():
            match = _VERSION_PATTERN.match(entry.name)
            if match and entry.is_dir():
                found.append(ModelVersion(number=int(match.group(1)), path=entry))
        return sorted(found, key=lambda v: v.number)

    def current_name(self) -> str | None:
        """The raw contents of ``CURRENT``, or ``None`` when unpublished."""
        pointer = self.root / CURRENT_NAME
        if not pointer.exists():
            return None
        try:
            return pointer.read_text(encoding="utf-8").strip()
        except OSError as exc:
            raise PersistenceError(
                f"cannot read {pointer}: {exc}"
            ) from exc

    def current(self) -> ModelVersion | None:
        """The version ``CURRENT`` points at.

        Returns ``None`` when nothing was ever published; raises
        :class:`~repro.errors.PersistenceError` when ``CURRENT`` names a
        version directory that does not exist (a dangling pointer —
        something external mangled the store).
        """
        name = self.current_name()
        if name is None:
            return None
        version = self._version_named(name)
        if version is None:
            raise PersistenceError(
                f"{self.root / CURRENT_NAME} points at {name!r}, which does "
                "not exist in the store"
            )
        return version

    def resolve(self, spec: "ModelVersion | str | int | None") -> ModelVersion:
        """Resolve a version spec (name, number, instance, or ``None``).

        ``None`` resolves to the current version; a missing spec raises
        :class:`~repro.errors.PersistenceError`.
        """
        if spec is None:
            version = self.current()
            if version is None:
                raise PersistenceError(
                    f"model store {self.root} has no published version"
                )
            return version
        if isinstance(spec, ModelVersion):
            return spec
        name = version_name(spec) if isinstance(spec, int) else str(spec)
        version = self._version_named(name)
        if version is None:
            raise PersistenceError(
                f"model store {self.root} has no version {name!r}"
            )
        return version

    def _version_named(self, name: str) -> ModelVersion | None:
        match = _VERSION_PATTERN.match(name)
        if not match:
            return None
        path = self.root / name
        if not path.is_dir():
            return None
        return ModelVersion(number=int(match.group(1)), path=path)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def verify(self, spec: "ModelVersion | str | int | None" = None) -> dict:
        """Checksum-verify one version; returns its parsed manifest.

        Raises the precise :class:`~repro.errors.PersistenceError`
        subclass for a missing manifest, truncation, or corruption.
        """
        version = self.resolve(spec)
        return verify_manifest(version.model_path, kind=BPR_KIND)

    def status(self, version: "ModelVersion | str | int | None" = None) -> str:
        """``"ok"`` or the name of the error class the version fails with."""
        try:
            self.verify(version)
        except PersistenceError as exc:
            return type(exc).__name__
        return STATUS_OK

    def load(
        self, spec: "ModelVersion | str | int | None" = None
    ) -> tuple[BPR, InteractionMatrix]:
        """Load one version (default: current), checksum-verified."""
        version = self.resolve(spec)
        with start_span(
            self.tracer, "lifecycle.load", version=version.name
        ):
            return load_bpr(version.model_path)

    # ------------------------------------------------------------------
    # mutation: publish / rollback / gc
    # ------------------------------------------------------------------

    def publish(self, model: BPR, train: InteractionMatrix) -> ModelVersion:
        """Persist a fitted model as the next version and point ``CURRENT``
        at it.

        The sequence is crash-safe at every step (each step is either an
        :func:`~repro.resilience.artefacts.atomic_write` or a read, all
        carrying ``fault_check`` crash points):

        1. allocate the next version number and create its directory;
        2. save the model + checksum manifest into the fresh directory;
        3. re-verify the manifest (publish never trusts its own write);
        4. atomically rename ``CURRENT`` over to the new version.

        An interruption anywhere leaves the previous version published
        and loadable; the partial directory is invisible to readers (no
        manifest, or ``CURRENT`` still naming the predecessor) and is
        swept by :meth:`gc`.
        """
        existing = self.versions()
        number = existing[-1].number + 1 if existing else 1
        version = ModelVersion(number=number, path=self.root / version_name(number))
        with start_span(
            self.tracer, "lifecycle.publish", version=version.name
        ) as span:
            version.path.mkdir(parents=True, exist_ok=False)
            save_bpr(model, train, version.model_path)
            verify_manifest(version.model_path, kind=BPR_KIND)
            self._write_current(version.name)
            span.set_attrs(number=version.number)
        self._count("lifecycle.publishes")
        return version

    def rollback(
        self, to: "ModelVersion | str | int | None" = None
    ) -> ModelVersion:
        """Point ``CURRENT`` back at an earlier intact version.

        With ``to=None`` the newest intact version older than the current
        one is chosen. The target is checksum-verified before ``CURRENT``
        moves, so a rollback can never land on a broken version.
        """
        if to is None:
            current = self.current()
            candidates = [
                version
                for version in reversed(self.versions())
                if (current is None or version.number < current.number)
                and self.status(version) == STATUS_OK
            ]
            if not candidates:
                raise PersistenceError(
                    f"model store {self.root} has no intact earlier version "
                    "to roll back to"
                )
            target = candidates[0]
        else:
            target = self.resolve(to)
            self.verify(target)
        with start_span(
            self.tracer, "lifecycle.rollback", version=target.name
        ):
            self._write_current(target.name)
        self._count("lifecycle.rollbacks")
        return target

    def gc(self, keep: int = DEFAULT_GC_KEEP) -> list[ModelVersion]:
        """Delete old and broken versions; returns what was removed.

        Keeps the ``keep`` newest *intact* versions plus (always) the one
        ``CURRENT`` points at. Broken versions — interrupted publishes —
        are removed regardless of age, except the ``CURRENT`` target,
        which is never touched even if corrupt (that is an operator
        decision, surfaced by ``python -m repro health``).
        """
        if keep < 1:
            raise PersistenceError(f"gc keep must be >= 1, got {keep}")
        current_name = self.current_name()
        intact = [v for v in self.versions() if self.status(v) == STATUS_OK]
        keep_names = {v.name for v in intact[-keep:]}
        if current_name is not None:
            keep_names.add(current_name)
        removed = []
        for version in self.versions():
            if version.name in keep_names:
                continue
            shutil.rmtree(version.path)
            removed.append(version)
        if removed:
            self._count("lifecycle.gc_removed", len(removed))
        return removed

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def health_report(self) -> dict:
        """The store's full health picture (``python -m repro health``).

        ``status`` is ``"ok"`` only when ``CURRENT`` resolves to an
        intact version; broken *non-current* versions are reported per
        version but do not fail the store (they are :meth:`gc` fodder).
        """
        versions = [
            {
                "name": version.name,
                "number": version.number,
                "status": self.status(version),
            }
            for version in self.versions()
        ]
        current_name = None
        current_status = "unpublished"
        try:
            current_name = self.current_name()
            if current_name is not None:
                version = self._version_named(current_name)
                if version is None:
                    current_status = "dangling"
                else:
                    current_status = self.status(version)
        except PersistenceError as exc:
            current_status = type(exc).__name__
        return {
            "root": str(self.root),
            "versions": versions,
            "current": current_name,
            "current_status": current_status,
            "status": "ok" if current_status == STATUS_OK else "corrupt",
        }

    @staticmethod
    def is_store(path: str | Path) -> bool:
        """Whether ``path`` looks like a model store directory."""
        path = Path(path)
        if not path.is_dir():
            return False
        if (path / CURRENT_NAME).exists():
            return True
        return any(
            _VERSION_PATTERN.match(entry.name) and entry.is_dir()
            for entry in path.iterdir()
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _write_current(self, name: str) -> None:
        """Atomically repoint ``CURRENT`` (write temp, fsync, rename)."""
        with atomic_write(self.root / CURRENT_NAME, "w", encoding="utf-8") as handle:
            handle.write(name + "\n")

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

"""Container for the Anobii source (Items + Ratings tables).

Mirrors the Anobii social-network dump described in Section 3 of the paper:
a rich item catalogue (plot, keywords, crowd-voted genres) plus explicit 1-5
star ratings. Offers the paper's source-level filters: keep Italian items
that are books, and keep only positive feedback (rating >= 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.models import (
    ANOBII_ITEMS_SCHEMA,
    ANOBII_RATINGS_SCHEMA,
    parse_genre_votes,
)
from repro.errors import DatasetError
from repro.tables import Table, ops

#: Rating threshold below which feedback is treated as negative and dropped
#: (paper Section 3: "we remove rows with ratings lower than 3").
POSITIVE_RATING_THRESHOLD = 3

KEPT_LANGUAGE = "ita"


@dataclass(frozen=True)
class AnobiiDataset:
    """The Anobii source: an ``items`` catalogue and a ``ratings`` table."""

    items: Table
    ratings: Table

    def __post_init__(self) -> None:
        if self.items.schema != ANOBII_ITEMS_SCHEMA:
            raise DatasetError(
                f"Anobii items table has schema {self.items.schema!r}; "
                f"expected {ANOBII_ITEMS_SCHEMA!r}"
            )
        if self.ratings.schema != ANOBII_RATINGS_SCHEMA:
            raise DatasetError(
                f"Anobii ratings table has schema {self.ratings.schema!r}; "
                f"expected {ANOBII_RATINGS_SCHEMA!r}"
            )

    def validate(self) -> None:
        """Check referential integrity and rating bounds."""
        known_items = set(self.items["item_id"].tolist())
        referenced = set(self.ratings["item_id"].tolist())
        dangling = referenced - known_items
        if dangling:
            sample = sorted(dangling)[:5]
            raise DatasetError(
                f"{len(dangling)} ratings reference unknown items, e.g. {sample}"
            )
        ratings = self.ratings["rating"]
        if len(ratings) and (ratings.min() < 1 or ratings.max() > 5):
            raise DatasetError(
                f"ratings outside [1, 5]: min={ratings.min()} max={ratings.max()}"
            )
        item_ids = self.items["item_id"]
        if len(set(item_ids.tolist())) != len(item_ids):
            raise DatasetError("duplicate item_id values in the Anobii catalogue")

    # ------------------------------------------------------------------
    # paper Section 3 filters
    # ------------------------------------------------------------------

    def filter_italian_books(self) -> "AnobiiDataset":
        """Keep Italian-language items that are books, plus their ratings."""
        items = self.items.filter(
            lambda t: np.asarray(
                [
                    bool(is_book) and language == KEPT_LANGUAGE
                    for is_book, language in zip(t["is_book"], t["language"])
                ],
                dtype=bool,
            )
        )
        kept_ids = set(items["item_id"].tolist())
        ratings = self.ratings.filter(
            np.asarray([i in kept_ids for i in self.ratings["item_id"]], dtype=bool)
        )
        return AnobiiDataset(items=items, ratings=ratings)

    def positive_feedback(
        self, threshold: int = POSITIVE_RATING_THRESHOLD
    ) -> "AnobiiDataset":
        """Drop ratings below ``threshold`` (negative feedback)."""
        ratings = self.ratings.filter(self.ratings["rating"] >= threshold)
        return AnobiiDataset(items=self.items, ratings=ratings)

    # ------------------------------------------------------------------
    # characterisation helpers
    # ------------------------------------------------------------------

    @property
    def n_items(self) -> int:
        return self.items.num_rows

    @property
    def n_ratings(self) -> int:
        return self.ratings.num_rows

    @property
    def n_users(self) -> int:
        return len(set(self.ratings["user_id"].tolist()))

    def ratings_per_user(self) -> Table:
        """Table (user_id, n_ratings)."""
        return self.ratings.group_by("user_id").aggregate(
            {"n_ratings": ("rating_id", ops.count)}
        )

    def ratings_per_item(self) -> Table:
        """Table (item_id, n_ratings)."""
        return self.ratings.group_by("item_id").aggregate(
            {"n_ratings": ("rating_id", ops.count)}
        )

    def genre_votes_of(self, item_id: int) -> dict[str, int]:
        """Parse the crowd-voted genres of one item."""
        matches = self.items.filter(self.items["item_id"] == item_id)
        if matches.num_rows == 0:
            raise DatasetError(f"unknown item_id: {item_id}")
        return parse_genre_votes(str(matches["genre_votes"][0]))

"""Datasets: schemas, containers, and synthetic dumps.

The paper works on two proprietary data sources (the BCT loans database and
an Anobii dump). Neither is distributable, so this subpackage provides:

- :mod:`repro.datasets.models` — the record types and table schemas the
  paper describes (Books/Loans for BCT, Items/Ratings for Anobii);
- :mod:`repro.datasets.world` — a latent *world model* (users with genre and
  author preferences, a catalogue with power-law popularity) from which both
  sources are observed;
- :mod:`repro.datasets.synthetic` — generators that emit raw BCT and Anobii
  dumps with the same schemas, noise, and marginal statistics the paper
  reports;
- :mod:`repro.datasets.bct` / :mod:`repro.datasets.anobii` — typed dataset
  containers with integrity validation;
- :mod:`repro.datasets.merged` — the merged dataset (joined catalogue +
  unified Readings table) the recommenders are trained on;
- :mod:`repro.datasets.corpus` — paper-scale, out-of-core generation: a
  seed-sharded corpus written as columnar npz shards behind checksum
  manifests, row-identical for every shard count.
"""

from repro.datasets.models import (
    ANOBII_ITEMS_SCHEMA,
    ANOBII_RATINGS_SCHEMA,
    BCT_BOOKS_SCHEMA,
    BCT_LOANS_SCHEMA,
    MERGED_BOOKS_SCHEMA,
    READINGS_SCHEMA,
)
from repro.datasets.world import LatentWorld, WorldConfig
from repro.datasets.synthetic import generate_sources
from repro.datasets.bct import BCTDataset
from repro.datasets.anobii import AnobiiDataset
from repro.datasets.merged import MergedDataset
from repro.datasets.corpus import (
    CorpusConfig,
    ShardedCorpus,
    ShardedCorpusWriter,
)

__all__ = [
    "ANOBII_ITEMS_SCHEMA",
    "ANOBII_RATINGS_SCHEMA",
    "BCT_BOOKS_SCHEMA",
    "BCT_LOANS_SCHEMA",
    "MERGED_BOOKS_SCHEMA",
    "READINGS_SCHEMA",
    "LatentWorld",
    "WorldConfig",
    "generate_sources",
    "BCTDataset",
    "AnobiiDataset",
    "MergedDataset",
    "CorpusConfig",
    "ShardedCorpus",
    "ShardedCorpusWriter",
]

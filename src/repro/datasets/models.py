"""Record types and table schemas for the BCT and Anobii sources.

These mirror the tables the paper describes in Section 3:

- BCT *Books*: book id, author(s), title, material type, edition language.
- BCT *Loans*: anonymised user id, book id, loan date.
- Anobii *Items*: item id, author(s), title, language, plot, keywords, and
  crowd-voted genres (genre name -> number of votes, serialised as JSON).
- Anobii *Ratings*: anonymised user id, item id, 1-5 star rating, date.

The merged dataset adds a *Books* table combining attributes from both
sources, a *Readings* table (the union of loans and positive ratings), and a
*Genres* table holding the top-4 genre probabilities per book.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import date

from repro.tables import Schema

#: Material types appearing in the BCT Books table. Only ``monograph`` and
#: ``manuscript`` survive the paper's filter.
BCT_MATERIALS = ("monograph", "manuscript", "dvd", "cd", "periodical", "map")

#: Languages appearing in both catalogues. Only ``ita`` survives the filter.
LANGUAGES = ("ita", "eng", "fra", "deu", "spa")

BCT_BOOKS_SCHEMA = Schema(
    [
        ("book_id", "int"),
        ("author", "str"),
        ("title", "str"),
        ("material", "str"),
        ("language", "str"),
    ]
)

BCT_LOANS_SCHEMA = Schema(
    [
        ("loan_id", "int"),
        ("user_id", "str"),
        ("book_id", "int"),
        ("loan_date", "date"),
        ("return_date", "date"),
    ]
)

ANOBII_ITEMS_SCHEMA = Schema(
    [
        ("item_id", "int"),
        ("author", "str"),
        ("title", "str"),
        ("language", "str"),
        ("plot", "str"),
        ("keywords", "str"),
        ("genre_votes", "str"),  # JSON object: genre name -> vote count
        ("is_book", "bool"),
    ]
)

ANOBII_RATINGS_SCHEMA = Schema(
    [
        ("rating_id", "int"),
        ("user_id", "str"),
        ("item_id", "int"),
        ("rating", "int"),
        ("rating_date", "date"),
    ]
)

MERGED_BOOKS_SCHEMA = Schema(
    [
        ("book_id", "int"),
        ("author", "str"),
        ("title", "str"),
        ("plot", "str"),
        ("keywords", "str"),
    ]
)

READINGS_SCHEMA = Schema(
    [
        ("user_id", "str"),
        ("book_id", "int"),
        ("read_date", "date"),
        ("source", "str"),  # "bct" or "anobii"
    ]
)

BOOK_GENRES_SCHEMA = Schema(
    [
        ("book_id", "int"),
        ("genre", "str"),
        ("probability", "float"),
    ]
)


@dataclass(frozen=True)
class BookRecord:
    """One book of the BCT catalogue."""

    book_id: int
    author: str
    title: str
    material: str = "monograph"
    language: str = "ita"


@dataclass(frozen=True)
class LoanRecord:
    """One loan event from the BCT Loans table.

    ``return_date`` makes the loan *duration* available — the paper's
    Section 4 names it as the natural refinement of the "borrowed means
    appreciated" assumption (a book returned within days was probably
    abandoned).
    """

    loan_id: int
    user_id: str
    book_id: int
    loan_date: date
    return_date: date

    def __post_init__(self) -> None:
        if self.return_date < self.loan_date:
            raise ValueError(
                f"loan {self.loan_id}: returned before borrowed "
                f"({self.return_date} < {self.loan_date})"
            )

    @property
    def duration_days(self) -> int:
        return (self.return_date - self.loan_date).days


@dataclass(frozen=True)
class AnobiiItemRecord:
    """One item of the Anobii catalogue, with crowd-sourced metadata."""

    item_id: int
    author: str
    title: str
    language: str = "ita"
    plot: str = ""
    keywords: str = ""
    genre_votes: dict[str, int] = field(default_factory=dict)
    is_book: bool = True

    def genre_votes_json(self) -> str:
        """Serialise the genre votes for storage in a str column."""
        return json.dumps(self.genre_votes, sort_keys=True)


@dataclass(frozen=True)
class RatingRecord:
    """One rating event from the Anobii Ratings table."""

    rating_id: int
    user_id: str
    item_id: int
    rating: int
    rating_date: date

    def __post_init__(self) -> None:
        if not 1 <= self.rating <= 5:
            raise ValueError(f"rating must be in [1, 5], got {self.rating}")


def parse_genre_votes(serialized: str) -> dict[str, int]:
    """Parse a ``genre_votes`` JSON cell back into ``{genre: votes}``."""
    if not serialized:
        return {}
    votes = json.loads(serialized)
    return {str(genre): int(count) for genre, count in votes.items()}


def match_key(title: str, author: str) -> str:
    """Natural key used to align a BCT book with an Anobii item.

    The two catalogues have independent identifiers, so — as in any real
    data-integration scenario — the join runs on a normalised
    (title, author) key: lower-cased, whitespace-collapsed,
    punctuation-stripped.
    """
    normalize = lambda text: " ".join(  # noqa: E731 - tiny local helper
        "".join(ch for ch in text.lower() if ch.isalnum() or ch.isspace()).split()
    )
    return f"{normalize(title)}|{normalize(author)}"

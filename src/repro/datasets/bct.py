"""Container for the BCT source (Books + Loans tables).

Mirrors the *Biblioteche Civiche di Torino* dump described in Section 3 of
the paper: a catalogue table and nine years of loan events. The container
validates referential integrity and offers the paper's source-level filter
(Italian monographs and manuscripts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.models import BCT_BOOKS_SCHEMA, BCT_LOANS_SCHEMA
from repro.errors import DatasetError
from repro.tables import Table, ops

#: Material types the paper keeps ("monographies and manuscripts").
KEPT_MATERIALS = frozenset({"monograph", "manuscript"})

#: Edition language the paper keeps.
KEPT_LANGUAGE = "ita"


@dataclass(frozen=True)
class BCTDataset:
    """The BCT source: a ``books`` catalogue and a ``loans`` event table."""

    books: Table
    loans: Table

    def __post_init__(self) -> None:
        if self.books.schema != BCT_BOOKS_SCHEMA:
            raise DatasetError(
                f"BCT books table has schema {self.books.schema!r}; "
                f"expected {BCT_BOOKS_SCHEMA!r}"
            )
        if self.loans.schema != BCT_LOANS_SCHEMA:
            raise DatasetError(
                f"BCT loans table has schema {self.loans.schema!r}; "
                f"expected {BCT_LOANS_SCHEMA!r}"
            )

    def validate(self) -> None:
        """Check referential integrity; raise :class:`DatasetError` on failure.

        Validation is separate from construction because a raw dump may be
        legitimately dirty — the pipeline decides what to do with it — but
        merged datasets must always pass.
        """
        known_books = set(self.books["book_id"].tolist())
        referenced = set(self.loans["book_id"].tolist())
        dangling = referenced - known_books
        if dangling:
            sample = sorted(dangling)[:5]
            raise DatasetError(
                f"{len(dangling)} loans reference unknown books, e.g. {sample}"
            )
        book_ids = self.books["book_id"]
        if len(set(book_ids.tolist())) != len(book_ids):
            raise DatasetError("duplicate book_id values in the BCT catalogue")
        if self.loans.num_rows:
            negative = self.loans["return_date"] < self.loans["loan_date"]
            if negative.any():
                raise DatasetError(
                    f"{int(negative.sum())} loans returned before they were "
                    "borrowed"
                )

    # ------------------------------------------------------------------
    # paper Section 3 filters
    # ------------------------------------------------------------------

    def filter_italian_monographs(self) -> "BCTDataset":
        """Keep Italian monographs/manuscripts and the loans touching them."""
        books = self.books.filter(
            lambda t: np.asarray(
                [
                    material in KEPT_MATERIALS and language == KEPT_LANGUAGE
                    for material, language in zip(t["material"], t["language"])
                ],
                dtype=bool,
            )
        )
        kept_ids = set(books["book_id"].tolist())
        loans = self.loans.filter(
            np.asarray([b in kept_ids for b in self.loans["book_id"]], dtype=bool)
        )
        return BCTDataset(books=books, loans=loans)

    # ------------------------------------------------------------------
    # characterisation helpers
    # ------------------------------------------------------------------

    @property
    def n_books(self) -> int:
        return self.books.num_rows

    @property
    def n_loans(self) -> int:
        return self.loans.num_rows

    @property
    def n_users(self) -> int:
        return len(set(self.loans["user_id"].tolist()))

    def loans_per_user(self) -> Table:
        """Table (user_id, n_loans) — the activity distribution."""
        return self.loans.group_by("user_id").aggregate(
            {"n_loans": ("loan_id", ops.count)}
        )

    def loans_per_book(self) -> Table:
        """Table (book_id, n_loans) — the popularity distribution."""
        return self.loans.group_by("book_id").aggregate(
            {"n_loans": ("loan_id", ops.count)}
        )

    def loan_durations(self) -> np.ndarray:
        """Days each loan lasted (return date minus loan date).

        The paper's Section 4 points at this signal as the way to refine
        the "borrowed means appreciated" assumption; see
        ``MergeConfig.min_loan_days`` and the ``ablation_duration``
        experiment.
        """
        deltas = self.loans["return_date"] - self.loans["loan_date"]
        return deltas.astype("timedelta64[D]").astype(np.int64)

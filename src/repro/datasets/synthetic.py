"""Generate raw BCT and Anobii dumps from a :class:`LatentWorld`.

The emitted tables use exactly the schemas of the paper's sources, including
their noise: the BCT Books table contains DVDs and foreign-language
editions, the Anobii Items table contains non-book items and negative
ratings — everything the Section-3 pipeline is supposed to filter out.

The two sources use *independent identifier spaces* (``book_id`` vs
``item_id``); alignment happens downstream on a normalised (title, author)
key, as in the real data-integration task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.anobii import AnobiiDataset
from repro.datasets.bct import BCTDataset
from repro.datasets.models import (
    ANOBII_ITEMS_SCHEMA,
    ANOBII_RATINGS_SCHEMA,
    BCT_BOOKS_SCHEMA,
    BCT_LOANS_SCHEMA,
)
from repro.datasets.world import LatentWorld, WorldConfig
from repro.rng import derive_rng
from repro.tables import Table

#: Offset separating the BCT and Anobii identifier spaces from the latent
#: book index, so accidentally joining on raw ids cannot succeed.
BCT_ID_BASE = 100_000
ANOBII_ID_BASE = 900_000

#: Number of decoy non-book Anobii items per 100 books.
NON_BOOK_ITEMS_PER_100 = 6


@dataclass(frozen=True)
class SyntheticSources:
    """A matched pair of raw dumps plus the world that generated them."""

    bct: BCTDataset
    anobii: AnobiiDataset
    world: LatentWorld


def generate_sources(config: WorldConfig | None = None) -> SyntheticSources:
    """Build a :class:`LatentWorld` and observe it through both sources."""
    world = LatentWorld(config)
    bct = _generate_bct(world)
    anobii = _generate_anobii(world)
    return SyntheticSources(bct=bct, anobii=anobii, world=world)


#: Loan-duration model: engaged readers keep a book for weeks, abandoned
#: books go back within days. The paper's Section 4 flags loan duration as
#: the feature that could refine the implicit-positive assumption; the
#: ``ablation_duration`` experiment exercises exactly that.
ENGAGED_DURATION_LOG_MEAN = 3.2  # exp(3.2) ~ 24 days
ENGAGED_DURATION_LOG_SIGMA = 0.45
MAX_LOAN_DAYS = 90
ABANDON_MAX_DAYS = 6
ENGAGEMENT_THRESHOLD = 0.35


def _loan_duration(
    world: LatentWorld,
    user,
    book: int,
    followed_authors: set[int],
    rng: np.random.Generator,
) -> int:
    """Days the user kept the book, driven by true preference alignment.

    A book engages the reader when it matches their genre *and* community
    taste (home or drift-target community — both are genuinely theirs), or
    when it is by an author they follow (two or more books read): loyal
    reads are enjoyed regardless of the book's community.
    """
    if int(world.book_author[book]) in followed_authors:
        engagement = 1.0
    else:
        genre_pull = (
            user.genre_probs[world.book_genre[book]] / user.genre_probs.max()
        )
        community = world.book_community[book]
        lifetime_affinity = np.maximum(
            user.community_affinity, user.drift_affinity
        )
        community_pull = lifetime_affinity[community] / lifetime_affinity.max()
        engagement = genre_pull * community_pull
    if engagement < ENGAGEMENT_THRESHOLD:
        return int(rng.integers(1, ABANDON_MAX_DAYS + 1))
    days = rng.lognormal(ENGAGED_DURATION_LOG_MEAN, ENGAGED_DURATION_LOG_SIGMA)
    return int(np.clip(days, ABANDON_MAX_DAYS + 1, MAX_LOAN_DAYS))


def _generate_bct(world: LatentWorld) -> BCTDataset:
    in_bct = np.flatnonzero(world.book_in_bct)
    books = Table.from_columns(
        {
            "book_id": [BCT_ID_BASE + int(b) for b in in_bct],
            "author": [world.author_names[world.book_author[b]] for b in in_bct],
            "title": [world.book_titles[b] for b in in_bct],
            "material": [str(world.book_material[b]) for b in in_bct],
            "language": [str(world.book_language[b]) for b in in_bct],
        },
        schema=BCT_BOOKS_SCHEMA,
    )

    duration_rng = derive_rng(world.config.seed, "synthetic", "bct-durations")
    first_year = world.config.bct_years[0]
    epoch = np.datetime64(f"{first_year}-01-01", "D")
    user_ids: list[str] = []
    book_ids: list[int] = []
    dates: list[np.datetime64] = []
    returns: list[np.datetime64] = []
    for user in world.users:
        if user.source != "bct":
            continue
        author_reads: dict[int, int] = {}
        for book, _ in user.readings:
            author = int(world.book_author[book])
            author_reads[author] = author_reads.get(author, 0) + 1
        followed = {a for a, count in author_reads.items() if count >= 2}
        for book, day in user.readings:
            user_ids.append(user.user_id)
            book_ids.append(BCT_ID_BASE + book)
            borrowed = epoch + np.timedelta64(day, "D")
            dates.append(borrowed)
            duration = _loan_duration(
                world, user, book, followed, duration_rng
            )
            returns.append(borrowed + np.timedelta64(duration, "D"))
    loans = Table.from_columns(
        {
            "loan_id": list(range(len(user_ids))),
            "user_id": user_ids,
            "book_id": book_ids,
            "loan_date": np.asarray(dates, dtype="datetime64[D]")
            if dates
            else np.asarray([], dtype="datetime64[D]"),
            "return_date": np.asarray(returns, dtype="datetime64[D]")
            if returns
            else np.asarray([], dtype="datetime64[D]"),
        },
        schema=BCT_LOANS_SCHEMA,
    )
    return BCTDataset(books=books, loans=loans)


def _generate_anobii(world: LatentWorld) -> AnobiiDataset:
    rng = derive_rng(world.config.seed, "synthetic", "anobii")
    in_anobii = np.flatnonzero(world.book_in_anobii)

    columns: dict[str, list] = {
        "item_id": [],
        "author": [],
        "title": [],
        "language": [],
        "plot": [],
        "keywords": [],
        "genre_votes": [],
        "is_book": [],
    }
    for b in in_anobii:
        b = int(b)
        columns["item_id"].append(ANOBII_ID_BASE + b)
        columns["author"].append(world.author_names[world.book_author[b]])
        columns["title"].append(world.book_titles[b])
        columns["language"].append(str(world.book_language[b]))
        columns["plot"].append(world.book_plots[b])
        columns["keywords"].append(world.book_keywords[b])
        votes = world.raw_genre_votes(b, rng)
        columns["genre_votes"].append(_votes_json(votes))
        columns["is_book"].append(True)

    # Decoy non-book items (board games, e-readers, ...) that the is_book
    # filter must drop.
    n_decoys = len(in_anobii) * NON_BOOK_ITEMS_PER_100 // 100
    for i in range(n_decoys):
        columns["item_id"].append(ANOBII_ID_BASE + world.n_books + i)
        columns["author"].append("")
        columns["title"].append(f"Oggetto da collezione {i}")
        columns["language"].append("ita")
        columns["plot"].append("")
        columns["keywords"].append("")
        columns["genre_votes"].append("{}")
        columns["is_book"].append(False)

    items = Table.from_columns(columns, schema=ANOBII_ITEMS_SCHEMA)

    first_year = world.config.anobii_years[0]
    epoch = np.datetime64(f"{first_year}-01-01", "D")
    user_ids: list[str] = []
    item_ids: list[int] = []
    ratings: list[int] = []
    dates: list[np.datetime64] = []
    for user in world.users:
        if user.source != "anobii":
            continue
        for book, day in user.readings:
            user_ids.append(user.user_id)
            item_ids.append(ANOBII_ID_BASE + book)
            ratings.append(_positive_rating(rng))
            dates.append(epoch + np.timedelta64(day, "D"))
        for book, day in user.dislikes:
            user_ids.append(user.user_id)
            item_ids.append(ANOBII_ID_BASE + book)
            ratings.append(int(rng.integers(1, 3)))  # 1 or 2 stars
            dates.append(epoch + np.timedelta64(day, "D"))
    ratings_table = Table.from_columns(
        {
            "rating_id": list(range(len(user_ids))),
            "user_id": user_ids,
            "item_id": item_ids,
            "rating": ratings,
            "rating_date": np.asarray(dates, dtype="datetime64[D]")
            if dates
            else np.asarray([], dtype="datetime64[D]"),
        },
        schema=ANOBII_RATINGS_SCHEMA,
    )
    return AnobiiDataset(items=items, ratings=ratings_table)


def _positive_rating(rng: np.random.Generator) -> int:
    """Star value for a book the user actually liked (>= 3 by construction)."""
    return int(rng.choice([3, 4, 5], p=[0.20, 0.45, 0.35]))


def _votes_json(votes: dict[str, int]) -> str:
    import json

    return json.dumps(votes, sort_keys=True)

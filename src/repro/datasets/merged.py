"""The merged dataset: BCT ⋈ Anobii, as built by the Section-3 pipeline.

A :class:`MergedDataset` is the training substrate of every recommender in
the paper. It has three tables:

- ``books`` — one row per book present in *both* sources, carrying the union
  of the useful attributes (author and title from BCT; plot and keywords
  from Anobii);
- ``readings`` — the unified implicit-feedback table: BCT loans plus Anobii
  positive ratings, each tagged with its ``source``;
- ``genres`` — the cleaned genre model: up to four (book, genre,
  probability) rows per book, probabilities summing to one.

Construction logic lives in :mod:`repro.pipeline.merge`; this module is the
validated container plus its read API.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.datasets.models import (
    BOOK_GENRES_SCHEMA,
    MERGED_BOOKS_SCHEMA,
    READINGS_SCHEMA,
)
from repro.errors import DatasetError
from repro.tables import Table, ops

VALID_SOURCES = frozenset({"bct", "anobii"})


@dataclass(frozen=True)
class MergedDataset:
    """The merged BCT + Anobii dataset (see module docstring)."""

    books: Table
    readings: Table
    genres: Table

    def __post_init__(self) -> None:
        for table, schema, name in (
            (self.books, MERGED_BOOKS_SCHEMA, "books"),
            (self.readings, READINGS_SCHEMA, "readings"),
            (self.genres, BOOK_GENRES_SCHEMA, "genres"),
        ):
            if table.schema != schema:
                raise DatasetError(
                    f"merged {name} table has schema {table.schema!r}; "
                    f"expected {schema!r}"
                )

    def validate(self) -> None:
        """Full integrity check; merged datasets must always pass this."""
        known = set(self.books["book_id"].tolist())
        read_books = set(self.readings["book_id"].tolist())
        dangling = read_books - known
        if dangling:
            raise DatasetError(
                f"{len(dangling)} readings reference unknown books, "
                f"e.g. {sorted(dangling)[:5]}"
            )
        sources = set(self.readings["source"].tolist())
        if not sources <= VALID_SOURCES:
            raise DatasetError(f"unknown reading sources: {sources - VALID_SOURCES}")
        genre_books = set(self.genres["book_id"].tolist())
        if not genre_books <= known:
            raise DatasetError("genre rows reference unknown books")
        # Per-book genre probabilities must sum to ~1 (paper Section 3).
        sums: dict[int, float] = {}
        for book_id, prob in zip(self.genres["book_id"], self.genres["probability"]):
            sums[int(book_id)] = sums.get(int(book_id), 0.0) + float(prob)
        bad = {b: s for b, s in sums.items() if abs(s - 1.0) > 1e-6}
        if bad:
            book, total = next(iter(bad.items()))
            raise DatasetError(
                f"{len(bad)} books have genre probabilities not summing to 1, "
                f"e.g. book {book} sums to {total:.4f}"
            )

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------

    @property
    def n_books(self) -> int:
        return self.books.num_rows

    @property
    def n_readings(self) -> int:
        return self.readings.num_rows

    @cached_property
    def user_ids(self) -> tuple[str, ...]:
        """All user ids, sorted (stable across runs)."""
        return tuple(sorted(set(self.readings["user_id"].tolist())))

    @cached_property
    def bct_user_ids(self) -> tuple[str, ...]:
        """Users coming from the BCT source — the recommendation targets."""
        mask = self.readings["source"] == "bct"
        return tuple(sorted(set(self.readings["user_id"][mask].tolist())))

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    # ------------------------------------------------------------------
    # characterisation
    # ------------------------------------------------------------------

    def readings_per_user(self) -> Table:
        """Table (user_id, n_readings) — Fig. 1's per-user distribution."""
        return self.readings.group_by("user_id").aggregate(
            {"n_readings": ("book_id", ops.count)}
        )

    def readings_per_book(self) -> Table:
        """Table (book_id, n_readings) — Fig. 1's per-book distribution."""
        return self.readings.group_by("book_id").aggregate(
            {"n_readings": ("user_id", ops.count)}
        )

    # ------------------------------------------------------------------
    # metadata access for the content-based recommender
    # ------------------------------------------------------------------

    @cached_property
    def genre_probabilities(self) -> dict[int, dict[str, float]]:
        """``{book_id: {genre: probability}}`` from the genres table."""
        table: dict[int, dict[str, float]] = {}
        for book_id, genre, prob in zip(
            self.genres["book_id"], self.genres["genre"], self.genres["probability"]
        ):
            table.setdefault(int(book_id), {})[str(genre)] = float(prob)
        return table

    def book_metadata(self, book_id: int) -> dict[str, object]:
        """All metadata fields of one book, including its genre model."""
        matches = self.books.filter(self.books["book_id"] == book_id)
        if matches.num_rows == 0:
            raise DatasetError(f"unknown book_id: {book_id}")
        row = matches.row(0)
        row["genres"] = self.genre_probabilities.get(book_id, {})
        return row

    def restrict_to_sources(self, sources: frozenset[str] | set[str]) -> "MergedDataset":
        """Return a dataset keeping only readings from the given sources.

        This is how the paper's *BPR (BCT only)* configuration is obtained:
        ``merged.restrict_to_sources({"bct"})`` keeps the catalogue and genre
        model intact but trains on library loans alone.
        """
        unknown = set(sources) - VALID_SOURCES
        if unknown:
            raise DatasetError(f"unknown sources: {sorted(unknown)}")
        mask = np.asarray(
            [source in sources for source in self.readings["source"]], dtype=bool
        )
        return MergedDataset(
            books=self.books, readings=self.readings.filter(mask), genres=self.genres
        )

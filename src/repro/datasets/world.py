"""The latent world model behind the synthetic BCT and Anobii dumps.

The paper's data is proprietary, so we replace it with a *generative world*
whose observable marginals match what the paper publishes about its data:

- book popularity is heavy-tailed (median 4 loans per book, a few books read
  thousands of times — Fig. 1 of the paper);
- user activity is heavy-tailed (75 % of users below ~24 readings, a tail up
  to ~480 readings — Section 3 and Fig. 1);
- genre shares are skewed (Comics ~44 %, Thriller ~14 %, Fantasy ~12 % of
  readings — Fig. 2);
- 99 % of users concentrate their readings on two dominant genres
  (Section 3, last paragraph);
- readers are author-loyal: having read an author raises the probability of
  borrowing another of their books (this is the signal behind the paper's
  Fig. 5 finding that author metadata dominates the content-based summary).

Both data sources observe the *same* latent catalogue and the same behaviour
model, which is exactly the property the paper exploits when merging them:
Anobii contributes additional users (for CF) and richer metadata (for CB).

Ground truth (true genres, popularity, preferences) stays accessible on the
:class:`LatentWorld` so tests can assert that the pipeline and the
recommenders recover it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.models import LANGUAGES
from repro.errors import ConfigurationError
from repro.rng import DEFAULT_SEED, derive_rng

#: Coarse (post-aggregation) genres with their target share of readings,
#: matching Fig. 2 of the paper.
COARSE_GENRES: tuple[tuple[str, float], ...] = (
    ("Comics", 0.44),
    ("Thriller", 0.14),
    ("Fantasy", 0.12),
    ("Novels", 0.08),
    ("Children", 0.06),
    ("History", 0.04),
    ("Science", 0.03),
    ("Biography", 0.03),
    ("Poetry", 0.02),
    ("Art", 0.02),
    ("Travel", 0.01),
    ("Cooking", 0.01),
)

#: Raw crowd-voted Anobii genres, grouped by the coarse genre they belong to.
#: Together with the ubiquitous genres below this yields the paper's "41
#: possible genres".
RAW_SUBGENRES: dict[str, tuple[str, ...]] = {
    "Comics": ("Comics", "Graphic Novels", "Manga"),
    "Thriller": ("Thriller", "Crime", "Mystery", "Noir"),
    "Fantasy": ("Fantasy", "Epic Fantasy", "Urban Fantasy", "Fairy Tales"),
    "Novels": ("Contemporary", "Romance", "Historical Fiction", "Short Stories"),
    "Children": ("Children", "Young Adult", "Picture Books"),
    "History": ("History", "Military History", "Ancient History"),
    "Science": ("Science", "Popular Science", "Nature", "Mathematics"),
    "Biography": ("Biography", "Memoir", "Letters"),
    "Poetry": ("Poetry", "Classic Poetry"),
    "Art": ("Art", "Photography", "Architecture"),
    "Travel": ("Travel", "Travel Guides"),
    "Cooking": ("Cooking", "Food And Wine"),
}

#: Genres attached to "almost all books"; the paper's pipeline drops them.
UBIQUITOUS_GENRES = ("Fiction And Literature", "Textbooks", "References", "Self Help")

#: Thematic vocabulary per coarse genre, used for plots and keywords so a
#: text embedding of those fields carries genre signal (as SBERT embeddings
#: of real plots do).
GENRE_WORDS: dict[str, tuple[str, ...]] = {
    "Comics": ("vignetta", "tavola", "eroe", "fumetto", "striscia", "albo",
               "disegno", "nuvola", "matita", "china", "serie", "balloon"),
    "Thriller": ("delitto", "indagine", "commissario", "omicidio", "sospetto",
                 "colpevole", "notte", "pistola", "movente", "alibi", "caso",
                 "detective"),
    "Fantasy": ("drago", "regno", "magia", "spada", "profezia", "elfo",
                "incantesimo", "torre", "viaggio", "creatura", "corona",
                "leggenda"),
    "Novels": ("amore", "famiglia", "memoria", "destino", "silenzio",
               "ritorno", "citta", "inverno", "promessa", "segreto", "vita",
               "assenza"),
    "Children": ("bambino", "scuola", "gioco", "amico", "avventura",
                 "sorpresa", "festa", "animale", "sogno", "zaino", "merenda",
                 "cucciolo"),
    "History": ("impero", "guerra", "rivoluzione", "battaglia", "regime",
                "trattato", "dinastia", "esercito", "confine", "archivio",
                "secolo", "re"),
    "Science": ("esperimento", "teoria", "universo", "cellula", "energia",
                "particella", "evoluzione", "clima", "numero", "laboratorio",
                "gene", "stella"),
    "Biography": ("infanzia", "carriera", "lettera", "diario", "testimone",
                  "ritratto", "memoriale", "intervista", "eredita", "vita",
                  "epistolario", "confessione"),
    "Poetry": ("verso", "rima", "strofa", "canto", "lirica", "metrica",
               "sonetto", "immagine", "voce", "respiro", "parola", "eco"),
    "Art": ("colore", "tela", "museo", "mostra", "scultura", "affresco",
            "prospettiva", "luce", "galleria", "restauro", "ritratto",
            "bozzetto"),
    "Travel": ("itinerario", "mappa", "frontiera", "deserto", "porto",
               "valigia", "strada", "isola", "treno", "orizzonte", "tappa",
               "bussola"),
    "Cooking": ("ricetta", "forno", "ingrediente", "spezia", "impasto",
                "mercato", "vino", "sapore", "tavola", "stagione", "brodo",
                "dolce"),
}

#: Generic vocabulary used for titles (and as plot filler). Titles carry no
#: genre signal on purpose: the paper finds title-only CB ≈ random.
GENERIC_WORDS = (
    "il", "la", "di", "grande", "piccolo", "ultimo", "primo", "nuovo",
    "antico", "giorno", "anno", "mondo", "casa", "tempo", "storia", "libro",
    "ombra", "luce", "mare", "cielo", "terra", "vento", "fiume", "montagna",
    "strada", "porta", "finestra", "giardino", "stanza", "specchio", "nome",
    "voce", "mano", "occhio", "cuore", "passo", "filo", "gioco", "sogno",
    "lettera", "numero", "isola", "ponte", "torre", "bosco", "neve",
    "pioggia", "alba", "tramonto", "stella",
)

FIRST_NAMES = (
    "Alessandro", "Beatrice", "Carlo", "Dafne", "Edoardo", "Francesca",
    "Giulio", "Helena", "Irene", "Jacopo", "Lucia", "Marco", "Nadia",
    "Orlando", "Paola", "Quintino", "Rosa", "Stefano", "Teresa", "Umberto",
    "Valentina", "Walter", "Ximena", "Ylenia", "Zeno", "Agata", "Bruno",
    "Chiara", "Dario", "Elena", "Fabio", "Greta", "Hugo", "Ida", "Leonardo",
    "Marta", "Nicola", "Olga", "Pietro", "Rita",
)

SURNAMES = (
    "Rossi", "Bianchi", "Ferrari", "Esposito", "Romano", "Colombo", "Ricci",
    "Marino", "Greco", "Bruno", "Gallo", "Conti", "DeLuca", "Mancini",
    "Costa", "Giordano", "Rizzo", "Lombardi", "Moretti", "Barbieri",
    "Fontana", "Santoro", "Mariani", "Rinaldi", "Caruso", "Ferrara",
    "Galli", "Martini", "Leone", "Longo", "Gentile", "Martinelli",
    "Vitale", "Lombardo", "Serra", "Coppola", "DeSantis", "DAngelo",
    "Marchetti", "Parisi", "Villa", "Conte", "Ferraro", "Ferri", "Fabbri",
    "Bianco", "Marini", "Grasso", "Valentini", "Messina", "Sala", "DeAngelis",
    "Gatti", "Pellegrini", "Palumbo", "Sanna", "Farina", "Rizzi", "Monti",
    "Cattaneo", "Morelli", "Amato", "Silvestri", "Mazza", "Testa",
    "Grassi", "Pellegrino", "Carbone", "Giuliani", "Benedetti", "Barone",
    "Rossetti", "Caputo", "Montanari", "Guerra", "Palmieri", "Bernardi",
    "Martino", "Fiore", "DeRosa", "Ferretti", "Bellini", "Basile",
    "Riva", "Donati", "Piras", "Vitali", "Battaglia", "Sartori", "Neri",
    "Costantini", "Milani", "Pagano", "Ruggiero", "Sorrentino", "DAmico",
    "Orlando", "Damico", "Negri",
)


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of the generative world.

    The defaults correspond to the ``default`` experiment scale (see
    ``repro.experiments.config``); tests use smaller values.
    """

    n_books: int = 2000
    n_authors: int = 600

    #: Zipf exponent of books-per-author (how prolific top authors are).
    author_prolificness: float = 0.60
    n_bct_users: int = 800
    n_anobii_users: int = 5200
    seed: int = DEFAULT_SEED

    #: log-normal user activity: exp(mu) is the median readings per user.
    activity_log_mean: float = 2.9  # median ~ 18 readings
    activity_log_sigma: float = 0.85
    min_activity: int = 2
    max_activity: int = 480

    #: Zipf exponent of within-genre book popularity.
    popularity_exponent: float = 0.95

    #: Readers start with bestsellers and drift to niche titles: the first
    #: ``early_fraction`` of a user's readings sample popularity sharpened
    #: by ``early_exponent_scale``, the rest flattened by
    #: ``late_exponent_scale``. This matches the observed weakness of the
    #: global-popularity baseline under a temporal split (paper Table 1:
    #: Most Read Items underperforms Random Items).
    early_fraction: float = 0.55
    early_exponent_scale: float = 1.4
    late_exponent_scale: float = 0.0

    #: Experienced readers have exhausted the popular head of their genres,
    #: so beyond ``deep_exploration_threshold`` distinct books their
    #: non-loyal picks skew towards the deep tail
    #: (``deep_exponent_scale < 0`` inverts the popularity law). This is
    #: what keeps collaborative filtering nearly flat for long-history
    #: users in the paper's Fig. 4: their held-out books are obscure titles
    #: with weak interaction support.
    deep_exploration_threshold: int = 10
    deep_exponent_scale: float = -1.2

    #: Author loyalty ramps up with reading experience: the probability that
    #: a reading re-picks an already-read author is
    #: ``author_loyalty * min(1, books_read / loyalty_ramp_books)``.
    #: Light readers explore; devoted readers follow authors. This is the
    #: signal behind the paper's Fig. 4 (content-based recommendations
    #: overtake BPR for users with long histories) and Fig. 5 (the author
    #: field dominates the metadata summary).
    author_loyalty: float = 0.65
    loyalty_ramp_books: int = 40

    #: Latent taste communities: within every genre, authors (and therefore
    #: books) belong to one of ``n_communities`` reader communities, and a
    #: user strongly prefers one of them. The community is *not* observable
    #: in any metadata field, so collaborative filtering can learn it while
    #: content-based similarity cannot — the structural reason BPR
    #: outperforms Closest Items in the paper's Table 1.
    n_communities: int = 6
    primary_community_affinity: float = 0.95

    #: Taste drift: across a long reading life, a reader's community
    #: affinity migrates toward a second community —
    #: ``d = drift_max * min(1, books_read / drift_books)`` interpolates the
    #: affinity vector. Heavy readers' recent (held-out) readings therefore
    #: reflect a taste their older history under-represents, which caps how
    #: much collaborative filtering gains from long histories (the flat BPR
    #: curve of the paper's Fig. 4). Content-based similarity is unaffected:
    #: communities are invisible to metadata either way. Drift starts after
    #: ``drift_onset`` books and saturates over the following
    #: ``drift_books``, so it only separates the histories of heavy readers.
    community_drift_max: float = 0.75
    community_drift_onset_books: int = 15
    community_drift_books: int = 40

    #: weights of a user's two dominant genres; the remainder spreads over
    #: all genres proportionally to global shares (99 % of users end up with
    #: two genres dominating, as the paper reports).
    primary_genre_weight: float = 0.63
    secondary_genre_weight: float = 0.33

    #: catalogue overlap between the two sources.
    share_in_both: float = 0.76
    share_bct_only: float = 0.12  # remainder is Anobii-only

    #: fraction of a user's Anobii events that are negative (rating < 3).
    negative_rating_share: float = 0.18

    #: Re-borrowing: library users borrow some books repeatedly (comics and
    #: children's books especially), so the BCT Loans table counts events,
    #: not distinct readers. This is why the paper's Most Read Items
    #: baseline is so weak: the top of the loan-count chart is dominated by
    #: heavily re-borrowed books that sit in few users' held-out readings.
    #: Anobii has no repeats (a book is rated once).
    repeat_genres: tuple[str, ...] = ("Comics", "Children")
    repeat_prob_high: float = 0.65
    repeat_prob_low: float = 0.10
    max_repeat_loans: int = 8

    #: observation periods (inclusive year ranges) per the paper.
    bct_years: tuple[int, int] = (2012, 2020)
    anobii_years: tuple[int, int] = (2014, 2021)

    def __post_init__(self) -> None:
        if self.n_books < len(COARSE_GENRES):
            raise ConfigurationError(
                f"n_books={self.n_books} is smaller than the number of genres"
            )
        if self.n_authors < 1 or self.n_authors > len(FIRST_NAMES) * len(SURNAMES):
            raise ConfigurationError(
                f"n_authors must be in [1, {len(FIRST_NAMES) * len(SURNAMES)}]"
            )
        if not 0 < self.share_in_both <= 1 or self.share_in_both + self.share_bct_only > 1:
            raise ConfigurationError("catalogue shares must partition [0, 1]")
        if self.min_activity < 1 or self.max_activity < self.min_activity:
            raise ConfigurationError("invalid activity bounds")


@dataclass
class UserProfile:
    """Latent preferences of one reader (ground truth, not observable)."""

    user_id: str
    source: str  # "bct" or "anobii"
    genre_probs: np.ndarray  # categorical over coarse genres
    community_affinity: np.ndarray  # categorical over latent communities
    drift_affinity: np.ndarray  # affinity the user drifts toward over time
    activity: int
    author_loyalty: float
    readings: list[tuple[int, int]] = field(default_factory=list)
    """(book index, day offset within the source period), time-ordered."""
    dislikes: list[tuple[int, int]] = field(default_factory=list)
    """negative events (Anobii users only), same structure."""


class LatentWorld:
    """The fully-specified generative world; see the module docstring."""

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        self.genre_names = tuple(name for name, _ in COARSE_GENRES)
        self.genre_shares = np.asarray([share for _, share in COARSE_GENRES])
        self.genre_shares = self.genre_shares / self.genre_shares.sum()
        self._build_authors()
        self._build_books()
        self._build_users()
        self._simulate_readings()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_authors(self) -> None:
        cfg = self.config
        rng = derive_rng(cfg.seed, "world", "authors")
        pairs = rng.choice(
            len(FIRST_NAMES) * len(SURNAMES), size=cfg.n_authors, replace=False
        )
        self.author_names = [
            f"{FIRST_NAMES[p % len(FIRST_NAMES)]} {SURNAMES[p // len(FIRST_NAMES)]}"
            for p in pairs
        ]
        # Authors write in one primary genre; genre sizes follow readership.
        self.author_genre = rng.choice(
            len(self.genre_names), size=cfg.n_authors, p=self.genre_shares
        )

    def _build_books(self) -> None:
        cfg = self.config
        rng = derive_rng(cfg.seed, "world", "books")
        n = cfg.n_books

        # Assign each book an author; prolific authors follow a Zipf law.
        author_weights = (
            1.0 / np.arange(1, cfg.n_authors + 1) ** cfg.author_prolificness
        )
        author_weights /= author_weights.sum()
        self.book_author = rng.choice(cfg.n_authors, size=n, p=author_weights)

        # A book's community is independent of its author: authors write
        # across styles, and loyal readers follow them regardless. This
        # makes author loyalty a signal the author metadata field carries
        # but the community structure (and hence CF) does not — the
        # mechanism behind the content-based model's advantage for
        # long-history users (paper Fig. 4).
        self.book_community = rng.integers(cfg.n_communities, size=n)

        # A book's primary genre is its author's genre; ~12 % carry a
        # secondary genre so genre mixtures (top-4 votes) are non-trivial.
        self.book_genre = self.author_genre[self.book_author].copy()
        self.book_secondary = np.full(n, -1, dtype=np.int64)
        has_secondary = rng.random(n) < 0.12
        self.book_secondary[has_secondary] = rng.choice(
            len(self.genre_names), size=int(has_secondary.sum()), p=self.genre_shares
        )
        same = self.book_secondary == self.book_genre
        self.book_secondary[same] = -1

        # Within-genre Zipf popularity, shuffled so book ids are not sorted
        # by popularity.
        self.book_popularity = np.empty(n)
        for g in range(len(self.genre_names)):
            members = np.flatnonzero(self.book_genre == g)
            ranks = rng.permutation(len(members)) + 1
            self.book_popularity[members] = 1.0 / ranks**cfg.popularity_exponent

        # Catalogue membership and observable noise fields.
        membership = rng.random(n)
        self.book_in_bct = membership < cfg.share_in_both + cfg.share_bct_only
        self.book_in_anobii = (membership < cfg.share_in_both) | (
            membership >= cfg.share_in_both + cfg.share_bct_only
        )
        self.book_language = np.where(
            rng.random(n) < 0.85, "ita", rng.choice(LANGUAGES[1:], size=n)
        ).astype(object)
        materials = rng.choice(
            ["monograph", "manuscript", "dvd", "cd", "periodical"],
            size=n,
            p=[0.82, 0.04, 0.07, 0.04, 0.03],
        )
        self.book_material = materials.astype(object)

        self.book_titles = [self._make_title(rng) for _ in range(n)]
        self.book_plots = [
            self._make_text(rng, book, length=(20, 34), genre_share=0.55)
            for book in range(n)
        ]
        self.book_keywords = [
            self._make_text(rng, book, length=(4, 7), genre_share=0.8)
            for book in range(n)
        ]

    def _make_title(self, rng: np.random.Generator) -> str:
        words = rng.choice(GENERIC_WORDS, size=rng.integers(2, 6))
        return " ".join(words).capitalize()

    def _make_text(
        self,
        rng: np.random.Generator,
        book: int,
        length: tuple[int, int],
        genre_share: float,
    ) -> str:
        """Build a genre-flavoured text (plot or keyword list) for ``book``."""
        n_words = int(rng.integers(length[0], length[1] + 1))
        pools = [GENRE_WORDS[self.genre_names[self.book_genre[book]]]]
        if self.book_secondary[book] >= 0:
            pools.append(GENRE_WORDS[self.genre_names[self.book_secondary[book]]])
        words = []
        for _ in range(n_words):
            if rng.random() < genre_share:
                pool = pools[int(rng.integers(len(pools)))]
            else:
                pool = GENERIC_WORDS
            words.append(pool[int(rng.integers(len(pool)))])
        return " ".join(words)

    def _build_users(self) -> None:
        cfg = self.config
        rng = derive_rng(cfg.seed, "world", "users")
        self.users: list[UserProfile] = []
        for source, count in (("bct", cfg.n_bct_users), ("anobii", cfg.n_anobii_users)):
            for i in range(count):
                activity = int(
                    np.clip(
                        rng.lognormal(cfg.activity_log_mean, cfg.activity_log_sigma),
                        cfg.min_activity,
                        cfg.max_activity,
                    )
                )
                primary, secondary = rng.choice(
                    len(self.genre_names), size=2, replace=False, p=self.genre_shares
                )
                probs = (
                    (1.0 - cfg.primary_genre_weight - cfg.secondary_genre_weight)
                    * self.genre_shares.copy()
                )
                probs[primary] += cfg.primary_genre_weight
                probs[secondary] += cfg.secondary_genre_weight
                probs /= probs.sum()
                loyalty = float(
                    np.clip(rng.normal(cfg.author_loyalty, 0.08), 0.05, 0.75)
                )
                home, target = rng.choice(
                    cfg.n_communities, size=min(2, cfg.n_communities), replace=False
                ) if cfg.n_communities > 1 else (0, 0)
                affinity = self._affinity_vector(int(home))
                drift_affinity = self._affinity_vector(int(target))
                self.users.append(
                    UserProfile(
                        user_id=f"{source}_u{i:06d}",
                        source=source,
                        genre_probs=probs,
                        community_affinity=affinity,
                        drift_affinity=drift_affinity,
                        activity=activity,
                        author_loyalty=loyalty,
                    )
                )

    def _affinity_vector(self, primary: int) -> np.ndarray:
        """Community affinity concentrated on ``primary``."""
        cfg = self.config
        affinity = np.full(
            cfg.n_communities,
            (1.0 - cfg.primary_community_affinity)
            / max(cfg.n_communities - 1, 1),
        )
        affinity[primary] = cfg.primary_community_affinity
        return affinity

    def _simulate_readings(self) -> None:
        cfg = self.config
        rng = derive_rng(cfg.seed, "world", "readings")
        catalogues = {
            "bct": self._genre_catalogue(self.book_in_bct),
            "anobii": self._genre_catalogue(self.book_in_anobii),
        }
        in_source = {"bct": self.book_in_bct, "anobii": self.book_in_anobii}
        author_books: dict[int, list[int]] = {}
        for book, author in enumerate(self.book_author):
            author_books.setdefault(int(author), []).append(book)

        for user in self.users:
            books_by_genre, cum_early, cum_late, cum_deep = catalogues[user.source]
            read: set[int] = set()
            read_authors: list[int] = []
            events: list[int] = []
            early_cutoff = cfg.early_fraction * user.activity
            for step in range(user.activity):
                if step < early_cutoff:
                    cum_by_genre = cum_early
                elif len(read) > cfg.deep_exploration_threshold:
                    cum_by_genre = cum_deep
                else:
                    cum_by_genre = cum_late
                book = self._pick_book(
                    rng, user, books_by_genre, cum_by_genre,
                    read, read_authors, author_books, in_source[user.source],
                )
                if book is None:
                    continue
                read.add(book)
                # Appending on every reading makes the uniform draw in
                # _pick_book preferential: authors read three times are
                # three times as likely to be followed again (favourite
                # authors), concentrating loyalty where the content-based
                # model can see it.
                read_authors.append(int(self.book_author[book]))
                events.append(book)
            days = self._sample_days(rng, user.source, len(events))
            user.readings = list(zip(events, days))
            if user.source == "bct":
                user.readings.extend(self._repeat_loans(rng, user.readings))
                user.readings.sort(key=lambda pair: pair[1])
            if user.source == "anobii":
                user.dislikes = self._simulate_dislikes(
                    rng, user, books_by_genre, cum_late, read
                )

    def _pick_book(
        self,
        rng: np.random.Generator,
        user: UserProfile,
        books_by_genre: list[np.ndarray],
        cum_by_genre: list[np.ndarray],
        read: set[int],
        read_authors: list[int],
        author_books: dict[int, list[int]],
        in_source: np.ndarray,
    ) -> int | None:
        # Author-loyal pick: another unread book of an author already read.
        # Loyalty ramps with experience; see WorldConfig.author_loyalty.
        effective_loyalty = user.author_loyalty * min(
            1.0, len(read) / self.config.loyalty_ramp_books
        )
        if read_authors and rng.random() < effective_loyalty:
            author = read_authors[int(rng.integers(len(read_authors)))]
            candidates = [
                b for b in author_books[author] if b not in read and in_source[b]
            ]
            if candidates:
                return candidates[int(rng.integers(len(candidates)))]
        # Genre-driven pick, popularity-weighted within the genre, thinned
        # by the user's community affinity, rejecting already-read books.
        genre = int(rng.choice(len(self.genre_names), p=user.genre_probs))
        books = books_by_genre[genre]
        if len(books) == 0:
            return None
        cum = cum_by_genre[genre]
        progress = (
            len(read) - self.config.community_drift_onset_books
        ) / self.config.community_drift_books
        drift = self.config.community_drift_max * min(1.0, max(0.0, progress))
        affinity = (
            (1.0 - drift) * user.community_affinity + drift * user.drift_affinity
        )
        max_affinity = affinity.max()
        for _ in range(16):
            position = int(np.searchsorted(cum, rng.random() * cum[-1], side="right"))
            book = int(books[min(position, len(books) - 1)])
            if book in read:
                continue
            acceptance = affinity[self.book_community[book]] / max_affinity
            if rng.random() < acceptance:
                return book
        return None

    def _repeat_loans(
        self, rng: np.random.Generator, readings: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        """Extra loan events for re-borrowed books (BCT users only)."""
        cfg = self.config
        first, last = cfg.bct_years
        horizon = (last - first + 1) * 365 - 1
        repeat_genres = {
            g for g, name in enumerate(self.genre_names)
            if name in cfg.repeat_genres
        }
        repeats: list[tuple[int, int]] = []
        for book, day in readings:
            in_repeat_genre = int(self.book_genre[book]) in repeat_genres
            probability = (
                cfg.repeat_prob_high if in_repeat_genre else cfg.repeat_prob_low
            )
            if rng.random() >= probability:
                continue
            count = int(rng.integers(1, cfg.max_repeat_loans + 1))
            gap = day
            for _ in range(count):
                gap += int(rng.integers(14, 120))
                if gap > horizon:
                    break
                repeats.append((book, gap))
        return repeats

    def _simulate_dislikes(
        self,
        rng: np.random.Generator,
        user: UserProfile,
        books_by_genre: list[np.ndarray],
        cum_by_genre: list[np.ndarray],
        read: set[int],
    ) -> list[tuple[int, int]]:
        cfg = self.config
        n_negative = int(rng.binomial(user.activity, cfg.negative_rating_share))
        if n_negative == 0:
            return []
        # Disliked books come from the user's *least* preferred genres.
        inverted = 1.0 / (user.genre_probs + 1e-3)
        inverted /= inverted.sum()
        events: list[int] = []
        for _ in range(n_negative):
            genre = int(rng.choice(len(self.genre_names), p=inverted))
            books = books_by_genre[genre]
            if len(books) == 0:
                continue
            cum = cum_by_genre[genre]
            position = int(np.searchsorted(cum, rng.random() * cum[-1], side="right"))
            book = int(books[min(position, len(books) - 1)])
            if book not in read:
                events.append(book)
        days = self._sample_days(rng, user.source, len(events))
        return list(zip(events, days))

    def _genre_catalogue(
        self, in_source: np.ndarray
    ) -> tuple[
        list[np.ndarray], list[np.ndarray], list[np.ndarray], list[np.ndarray]
    ]:
        """Per-genre book ids and early/late/deep cumulative popularity tables.

        The early table sharpens the popularity law (bestseller phase) and
        the late table flattens it (exploratory phase); see ``WorldConfig``.
        """
        cfg = self.config
        books_by_genre: list[np.ndarray] = []
        cum_early: list[np.ndarray] = []
        cum_late: list[np.ndarray] = []
        cum_deep: list[np.ndarray] = []
        for g in range(len(self.genre_names)):
            members = np.flatnonzero((self.book_genre == g) & in_source)
            books_by_genre.append(members)
            if len(members):
                popularity = self.book_popularity[members]
                cum_early.append(np.cumsum(popularity**cfg.early_exponent_scale))
                cum_late.append(np.cumsum(popularity**cfg.late_exponent_scale))
                cum_deep.append(np.cumsum(popularity**cfg.deep_exponent_scale))
            else:
                cum_early.append(np.asarray([]))
                cum_late.append(np.asarray([]))
                cum_deep.append(np.asarray([]))
        return books_by_genre, cum_early, cum_late, cum_deep

    def _sample_days(
        self, rng: np.random.Generator, source: str, count: int
    ) -> list[int]:
        first, last = (
            self.config.bct_years if source == "bct" else self.config.anobii_years
        )
        n_days = (last - first + 1) * 365
        return sorted(int(d) for d in rng.integers(0, n_days, size=count))

    # ------------------------------------------------------------------
    # ground-truth accessors used by tests and diagnostics
    # ------------------------------------------------------------------

    @property
    def n_books(self) -> int:
        return self.config.n_books

    @property
    def n_users(self) -> int:
        return len(self.users)

    def genre_of(self, book: int) -> str:
        """True primary genre name of a latent book."""
        return self.genre_names[self.book_genre[book]]

    def total_readings(self) -> int:
        """Total positive reading events across all users."""
        return sum(len(user.readings) for user in self.users)

    def raw_genre_votes(self, book: int, rng: np.random.Generator) -> dict[str, int]:
        """Sample crowd-sourced genre votes for ``book``.

        Votes concentrate on raw subgenres of the book's true genre(s), with
        ubiquitous genres voted on most books and occasional spurious votes —
        the noise the pipeline's genre-cleaning step must remove.
        """
        base = 4 + self.book_popularity[book] * 60
        votes: dict[str, int] = {}
        primary = self.genre_names[self.book_genre[book]]
        for sub in RAW_SUBGENRES[primary]:
            count = int(rng.poisson(base))
            if count:
                votes[sub] = count
        if self.book_secondary[book] >= 0:
            secondary = self.genre_names[self.book_secondary[book]]
            for sub in RAW_SUBGENRES[secondary]:
                count = int(rng.poisson(base * 0.45))
                if count:
                    votes[sub] = votes.get(sub, 0) + count
        for ubiquitous in UBIQUITOUS_GENRES:
            if rng.random() < 0.8:
                votes[ubiquitous] = int(rng.poisson(base * 0.8)) + 1
        if rng.random() < 0.10:  # spurious off-genre vote
            other = self.genre_names[int(rng.integers(len(self.genre_names)))]
            sub = RAW_SUBGENRES[other][int(rng.integers(len(RAW_SUBGENRES[other])))]
            votes[sub] = votes.get(sub, 0) + 1
        return votes

"""Paper-scale out-of-core corpus: seed-sharded generation + npz shards.

The real BCT/Anobii corpora are 5.5 M loans / 52 M ratings — far beyond
what :func:`repro.datasets.synthetic.generate_sources` (which materialises
every row as Python objects) can emit. This module scales the synthetic
world to millions of events without ever holding the corpus in memory:

- **Chunked, seed-sharded generation.** Events are produced in fixed-size
  chunks whose seeds derive in the parent via the parallel layer's
  :func:`~repro.parallel.task_seeds` — one seed per chunk, a pure function
  of the chunk *index*. Shards are contiguous chunk groups
  (:func:`~repro.parallel.chunk_slices`), so the concatenation of all
  shards is byte-identical for any shard count: the scale-invariance
  contract (``docs/determinism.md``), pinned by
  ``tests/datasets/test_synthetic_properties.py``.
- **Columnar npz shards behind the crash-safe machinery.** Every artefact
  (catalogue + event shards) is written with
  :func:`~repro.tables.io.write_npz_columns` (atomic temp+fsync+rename)
  and fingerprinted by a SHA-256 manifest; a top-level corpus manifest
  (shard count, row counts, schema version) is written *last*, so a crash
  at any point leaves prior shards verifiable and the corpus visibly
  incomplete (``tests/resilience/test_corpus_chaos.py``).
- **Streaming consumers.** :class:`ShardedCorpus` iterates shards as raw
  column arrays; :func:`repro.pipeline.streaming.merge_sharded_corpus`
  runs the Section-3 pipeline over them without materialising the tables.

Event shards store only numeric columns (user *indices* into the id
tables, external book/item ids, day offsets) so they load without pickle;
the typed :class:`~repro.tables.Table` views are reconstructed on demand.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.datasets.anobii import AnobiiDataset
from repro.datasets.bct import BCTDataset
from repro.datasets.models import (
    ANOBII_ITEMS_SCHEMA,
    ANOBII_RATINGS_SCHEMA,
    BCT_BOOKS_SCHEMA,
    BCT_LOANS_SCHEMA,
)
from repro.datasets.synthetic import (
    ABANDON_MAX_DAYS,
    ANOBII_ID_BASE,
    BCT_ID_BASE,
    ENGAGED_DURATION_LOG_MEAN,
    ENGAGED_DURATION_LOG_SIGMA,
    MAX_LOAN_DAYS,
    _generate_anobii,
    _generate_bct,
)
from repro.datasets.world import LatentWorld, WorldConfig
from repro.errors import DatasetError, ManifestMissingError, PersistenceError
from repro.parallel import chunk_slices, task_seeds
from repro.resilience.artefacts import (
    MANIFEST_NAME,
    verify_manifest,
    write_manifest,
)
from repro.rng import derive_rng, make_rng
from repro.tables import Table, concat_tables
from repro.tables.io import read_npz_columns, write_npz_columns

#: Stamped into the corpus manifest; bump on incompatible shard layout.
CORPUS_SCHEMA_VERSION = 1

#: Manifest ``kind`` tags (a shard manifest cannot vouch for a corpus).
CORPUS_KIND = "sharded-corpus"
CATALOGUE_KIND = "corpus-catalogue"
SHARD_KIND = "corpus-shard"

#: Share of loans drawn from the engaged-reading duration distribution.
CORPUS_ENGAGED_SHARE = 0.72

#: Positive star distribution, matching the in-memory generator.
_POSITIVE_STARS = np.asarray([3, 4, 5], dtype=np.int64)
_POSITIVE_STAR_P = np.asarray([0.20, 0.45, 0.35])

_LOAN_COLUMNS = ("loan_id", "user", "book_id", "day", "duration")
_RATING_COLUMNS = ("rating_id", "user", "item_id", "day", "rating")


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of a sharded corpus; every field feeds the seed derivation.

    The catalogue comes from the same :class:`LatentWorld` the in-memory
    generator uses (same genres, popularity, match overlap); only the
    event streams are generated out-of-core. ``rows_per_chunk`` fixes the
    generation unit — it, not ``n_shards``, determines what each RNG
    stream produces, which is why the corpus is row-identical across
    shard counts.
    """

    n_books: int = 2000
    n_authors: int = 600
    n_bct_users: int = 2000
    n_anobii_users: int = 8000
    n_loans: int = 100_000
    n_ratings: int = 100_000
    n_shards: int = 8
    rows_per_chunk: int = 65_536
    seed: int = 20230331
    negative_rating_share: float = 0.18
    user_activity_sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.n_loans < 0 or self.n_ratings < 0:
            raise DatasetError("event counts must be >= 0")
        if self.n_loans and self.n_bct_users < 1:
            raise DatasetError("n_bct_users must be >= 1 to generate loans")
        if self.n_ratings and self.n_anobii_users < 1:
            raise DatasetError("n_anobii_users must be >= 1 to generate ratings")
        if self.n_shards < 1:
            raise DatasetError("n_shards must be >= 1")
        if self.rows_per_chunk < 1:
            raise DatasetError("rows_per_chunk must be >= 1")
        if not 0.0 <= self.negative_rating_share <= 1.0:
            raise DatasetError("negative_rating_share must be in [0, 1]")

    def digest(self) -> str:
        """SHA-256 over the config fields — stamps every shard manifest."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def chunk_bounds(n_rows: int, rows_per_chunk: int) -> list[tuple[int, int]]:
    """Global ``[start, stop)`` row ranges of the fixed-size generation chunks."""
    n_chunks = math.ceil(n_rows / rows_per_chunk) if n_rows else 0
    return [
        (i * rows_per_chunk, min((i + 1) * rows_per_chunk, n_rows))
        for i in range(n_chunks)
    ]


def shard_plan(
    n_rows: int, rows_per_chunk: int, n_shards: int
) -> list[list[tuple[int, int]]]:
    """Group the chunks of ``n_rows`` into at most ``n_shards`` shards.

    Chunk boundaries depend only on ``rows_per_chunk``; shards are
    contiguous chunk runs (:func:`chunk_slices`), so changing ``n_shards``
    regroups — never regenerates — the same chunks.
    """
    bounds = chunk_bounds(n_rows, rows_per_chunk)
    if not bounds:
        return []
    return [bounds[s] for s in chunk_slices(len(bounds), n_shards)]


@dataclass
class CorpusModel:
    """The in-memory part of a corpus: catalogues + sampling distributions.

    Cheap to build at any scale — its size is O(books + users), never
    O(events) — and a pure function of the config.
    """

    config: CorpusConfig
    world: LatentWorld
    books: Table
    items: Table
    bct_latent: np.ndarray
    bct_book_cum: np.ndarray
    anobii_latent: np.ndarray
    anobii_book_cum: np.ndarray
    bct_user_cum: np.ndarray
    anobii_user_cum: np.ndarray
    bct_epoch: np.datetime64 = field(default=np.datetime64("2012-01-01"))
    anobii_epoch: np.datetime64 = field(default=np.datetime64("2014-01-01"))
    bct_horizon: int = 0
    anobii_horizon: int = 0


def build_corpus_model(config: CorpusConfig) -> CorpusModel:
    """Build the catalogues and sampling distributions for ``config``.

    The latent world is instantiated with zero users — the catalogue side
    (titles, authors, genres, popularity, BCT/Anobii membership) does not
    depend on them — and the corpus draws its own user population with
    lognormal activity weights, so catalogue cost stays independent of
    how many million events the corpus emits.
    """
    world = LatentWorld(
        WorldConfig(
            n_books=config.n_books,
            n_authors=config.n_authors,
            n_bct_users=0,
            n_anobii_users=0,
            seed=config.seed,
        )
    )
    books = _generate_bct(world).books
    items = _generate_anobii(world).items

    popularity = world.book_popularity * world.genre_shares[world.book_genre]
    bct_latent = np.flatnonzero(world.book_in_bct)
    anobii_latent = np.flatnonzero(world.book_in_anobii)

    rng = derive_rng(config.seed, "corpus", "user-activity")
    bct_user_w = rng.lognormal(0.0, config.user_activity_sigma, config.n_bct_users)
    anobii_user_w = rng.lognormal(
        0.0, config.user_activity_sigma, config.n_anobii_users
    )

    bct_years = world.config.bct_years
    anobii_years = world.config.anobii_years
    return CorpusModel(
        config=config,
        world=world,
        books=books,
        items=items,
        bct_latent=bct_latent,
        bct_book_cum=np.cumsum(popularity[bct_latent]),
        anobii_latent=anobii_latent,
        anobii_book_cum=np.cumsum(popularity[anobii_latent]),
        bct_user_cum=np.cumsum(bct_user_w),
        anobii_user_cum=np.cumsum(anobii_user_w),
        bct_epoch=np.datetime64(f"{bct_years[0]}-01-01"),
        anobii_epoch=np.datetime64(f"{anobii_years[0]}-01-01"),
        bct_horizon=(bct_years[1] - bct_years[0] + 1) * 365,
        anobii_horizon=(anobii_years[1] - anobii_years[0] + 1) * 365,
    )


def _weighted_draw(
    rng: np.random.Generator, cum: np.ndarray, n: int
) -> np.ndarray:
    """Draw ``n`` indices proportional to the weights behind ``cum``."""
    draws = rng.random(n) * cum[-1]
    idx = np.searchsorted(cum, draws, side="right")
    return np.minimum(idx, len(cum) - 1)


def loan_chunk(
    model: CorpusModel, start: int, stop: int, chunk_seed: int
) -> dict[str, np.ndarray]:
    """Generate loans ``[start, stop)`` — a pure function of the arguments.

    Columns: ``loan_id`` (globally unique, strictly increasing), ``user``
    (index into the BCT user ids), ``book_id`` (external id), ``day``
    (offset from the BCT epoch), ``duration`` (days until return; drawn
    from the engaged/abandoned mixture of the in-memory generator).
    """
    rng = make_rng(chunk_seed)
    n = stop - start
    users = _weighted_draw(rng, model.bct_user_cum, n).astype(np.int32)
    books = model.bct_latent[_weighted_draw(rng, model.bct_book_cum, n)]
    days = rng.integers(0, model.bct_horizon, size=n).astype(np.int32)
    engaged = rng.random(n) < CORPUS_ENGAGED_SHARE
    long_days = np.clip(
        np.rint(
            rng.lognormal(ENGAGED_DURATION_LOG_MEAN, ENGAGED_DURATION_LOG_SIGMA, n)
        ),
        ABANDON_MAX_DAYS + 1,
        MAX_LOAN_DAYS,
    )
    short_days = rng.integers(1, ABANDON_MAX_DAYS + 1, size=n)
    return {
        "loan_id": start + np.arange(n, dtype=np.int64),
        "user": users,
        "book_id": (BCT_ID_BASE + books).astype(np.int64),
        "day": days,
        "duration": np.where(engaged, long_days, short_days).astype(np.int16),
    }


def rating_chunk(
    model: CorpusModel, start: int, stop: int, chunk_seed: int
) -> dict[str, np.ndarray]:
    """Generate ratings ``[start, stop)`` — a pure function of the arguments.

    Columns: ``rating_id``, ``user`` (index into the Anobii user ids),
    ``item_id`` (external id), ``day`` (offset from the Anobii epoch),
    ``rating`` (1-5 stars with the in-memory generator's mixture).
    """
    rng = make_rng(chunk_seed)
    n = stop - start
    users = _weighted_draw(rng, model.anobii_user_cum, n).astype(np.int32)
    books = model.anobii_latent[_weighted_draw(rng, model.anobii_book_cum, n)]
    days = rng.integers(0, model.anobii_horizon, size=n).astype(np.int32)
    negative = rng.random(n) < model.config.negative_rating_share
    positive_stars = rng.choice(_POSITIVE_STARS, size=n, p=_POSITIVE_STAR_P)
    negative_stars = rng.integers(1, 3, size=n)
    return {
        "rating_id": start + np.arange(n, dtype=np.int64),
        "user": users,
        "item_id": (ANOBII_ID_BASE + books).astype(np.int64),
        "day": days,
        "rating": np.where(negative, negative_stars, positive_stars).astype(np.int8),
    }


def _shard_arrays(
    model: CorpusModel,
    chunks: list[tuple[int, int]],
    seeds: list[int],
    chunk_fn,
    column_names: tuple[str, ...],
) -> dict[str, np.ndarray]:
    parts = [
        chunk_fn(model, start, stop, seed) for (start, stop), seed in zip(chunks, seeds)
    ]
    return {
        name: np.concatenate([part[name] for part in parts])
        for name in column_names
    }


def generate_loan_shards(
    model: CorpusModel, n_shards: int | None = None
) -> Iterator[dict[str, np.ndarray]]:
    """Yield the loan shards of ``model`` as raw column arrays.

    Pure generation — nothing touches disk; the writer and the property
    tests share this path.
    """
    config = model.config
    shards = shard_plan(
        config.n_loans, config.rows_per_chunk, n_shards or config.n_shards
    )
    n_chunks = len(chunk_bounds(config.n_loans, config.rows_per_chunk))
    seeds = task_seeds(config.seed, "corpus.loans", n_chunks)
    offset = 0
    for chunks in shards:
        chunk_seeds = seeds[offset : offset + len(chunks)]
        offset += len(chunks)
        yield _shard_arrays(model, chunks, chunk_seeds, loan_chunk, _LOAN_COLUMNS)


def generate_rating_shards(
    model: CorpusModel, n_shards: int | None = None
) -> Iterator[dict[str, np.ndarray]]:
    """Yield the rating shards of ``model`` as raw column arrays."""
    config = model.config
    shards = shard_plan(
        config.n_ratings, config.rows_per_chunk, n_shards or config.n_shards
    )
    n_chunks = len(chunk_bounds(config.n_ratings, config.rows_per_chunk))
    seeds = task_seeds(config.seed, "corpus.ratings", n_chunks)
    offset = 0
    for chunks in shards:
        chunk_seeds = seeds[offset : offset + len(chunks)]
        offset += len(chunks)
        yield _shard_arrays(model, chunks, chunk_seeds, rating_chunk, _RATING_COLUMNS)


def _table_to_columns(table: Table) -> dict[str, np.ndarray]:
    """Pickle-free columns of a catalogue table (str -> fixed-width unicode)."""
    columns: dict[str, np.ndarray] = {}
    for name in table.column_names:
        array = table[name]
        if array.dtype == object:
            array = np.asarray([str(value) for value in array.tolist()])
        columns[name] = array
    return columns


def _columns_to_table(columns: dict[str, np.ndarray], schema) -> Table:
    """Rebuild a typed table from npz columns (unicode -> Python str)."""
    converted = {
        name: array.tolist() if array.dtype.kind == "U" else array
        for name, array in columns.items()
    }
    return Table.from_columns(converted, schema=schema)


class ShardedCorpusWriter:
    """Write a sharded corpus to a directory, crash-safely.

    Layout (flat, so every artefact's manifest resolves against the
    corpus root)::

        corpus/
          books.npz     + books.npz.manifest.json     (BCT catalogue)
          items.npz     + items.npz.manifest.json     (Anobii catalogue)
          loans-00000.npz   + .manifest.json          (event shards ...)
          ratings-00000.npz + .manifest.json
          MANIFEST.json                               (corpus manifest, last)

    Every file goes through ``atomic_write`` and gets its own SHA-256
    manifest *immediately*, so a crash at any injected fault site leaves
    all previously written shards verifiable; the corpus-level
    ``MANIFEST.json`` is written last and is the marker that the corpus is
    complete. ``write(resume=True)`` re-verifies existing shards (config
    digest + checksums) and regenerates only what is missing or corrupt.
    """

    def __init__(self, root: str | Path, config: CorpusConfig) -> None:
        self.root = Path(root)
        self.config = config

    def write(self, resume: bool = False) -> "ShardedCorpus":
        """Generate and persist every artefact; returns the opened corpus."""
        config = self.config
        model = build_corpus_model(config)
        self.root.mkdir(parents=True, exist_ok=True)
        digest = config.digest()

        files: list[Path] = []
        files.append(
            self._write_artefact(
                "books.npz", _table_to_columns(model.books),
                CATALOGUE_KIND, digest, resume,
            )
        )
        files.append(
            self._write_artefact(
                "items.npz", _table_to_columns(model.items),
                CATALOGUE_KIND, digest, resume,
            )
        )

        loan_rows: list[int] = []
        for index, shard in enumerate(generate_loan_shards(model)):
            loan_rows.append(len(shard["loan_id"]))
            files.append(
                self._write_artefact(
                    f"loans-{index:05d}.npz", shard, SHARD_KIND, digest, resume
                )
            )
        rating_rows: list[int] = []
        for index, shard in enumerate(generate_rating_shards(model)):
            rating_rows.append(len(shard["rating_id"]))
            files.append(
                self._write_artefact(
                    f"ratings-{index:05d}.npz", shard, SHARD_KIND, digest, resume
                )
            )

        write_manifest(
            self.root,
            files,
            kind=CORPUS_KIND,
            extra={
                "corpus": {
                    "schema_version": CORPUS_SCHEMA_VERSION,
                    "config_sha256": digest,
                    "seed": config.seed,
                    "n_loans": config.n_loans,
                    "n_ratings": config.n_ratings,
                    "n_bct_users": config.n_bct_users,
                    "n_anobii_users": config.n_anobii_users,
                    "loan_shards": len(loan_rows),
                    "rating_shards": len(rating_rows),
                    "loan_shard_rows": loan_rows,
                    "rating_shard_rows": rating_rows,
                    "rows_per_chunk": config.rows_per_chunk,
                    "bct_epoch": str(model.bct_epoch),
                    "anobii_epoch": str(model.anobii_epoch),
                }
            },
        )
        return ShardedCorpus(self.root)

    def _write_artefact(
        self,
        name: str,
        columns: dict[str, np.ndarray],
        kind: str,
        digest: str,
        resume: bool,
    ) -> Path:
        path = self.root / name
        if resume and self._intact(path, kind, digest):
            return path
        write_npz_columns(path, columns)
        write_manifest(
            path,
            [path],
            kind=kind,
            extra={"corpus": {"config_sha256": digest}},
        )
        return path

    @staticmethod
    def _intact(path: Path, kind: str, digest: str) -> bool:
        """True when an existing artefact verifies and matches the config."""
        if not path.exists():
            return False
        try:
            manifest = verify_manifest(path, kind=kind)
        except PersistenceError:
            return False
        return manifest.get("corpus", {}).get("config_sha256") == digest


class ShardedCorpus:
    """Read-side handle on a corpus directory written by the writer.

    Exposes the catalogues as typed tables and the event shards either as
    raw column arrays (:meth:`iter_loan_shards` — the streaming pipeline's
    input) or as typed per-shard tables; :meth:`materialise` rebuilds the
    full in-memory :class:`BCTDataset`/:class:`AnobiiDataset` pair, which
    the equivalence tests compare against the streaming path.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        manifest_path = self.root / MANIFEST_NAME
        if not manifest_path.exists():
            raise ManifestMissingError(
                f"{self.root} has no corpus manifest ({MANIFEST_NAME}); "
                "incomplete or not a sharded corpus"
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        self.meta: dict = manifest.get("corpus", {})
        self._bct_user_ids: np.ndarray | None = None
        self._anobii_user_ids: np.ndarray | None = None

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    @property
    def n_loans(self) -> int:
        return int(self.meta.get("n_loans", 0))

    @property
    def n_ratings(self) -> int:
        return int(self.meta.get("n_ratings", 0))

    @property
    def loan_shard_paths(self) -> list[Path]:
        count = int(self.meta.get("loan_shards", 0))
        return [self.root / f"loans-{i:05d}.npz" for i in range(count)]

    @property
    def rating_shard_paths(self) -> list[Path]:
        count = int(self.meta.get("rating_shards", 0))
        return [self.root / f"ratings-{i:05d}.npz" for i in range(count)]

    @property
    def bct_epoch(self) -> np.datetime64:
        return np.datetime64(self.meta["bct_epoch"])

    @property
    def anobii_epoch(self) -> np.datetime64:
        return np.datetime64(self.meta["anobii_epoch"])

    def largest_shard_bytes(self) -> int:
        """Size of the biggest event shard on disk — the RSS budget unit."""
        paths = self.loan_shard_paths + self.rating_shard_paths
        return max((p.stat().st_size for p in paths), default=0)

    def verify(self) -> dict:
        """Re-hash every artefact against its manifest; returns the corpus one."""
        manifest = verify_manifest(self.root, kind=CORPUS_KIND)
        for path in (self.root / "books.npz", self.root / "items.npz"):
            verify_manifest(path, kind=CATALOGUE_KIND)
        for path in self.loan_shard_paths + self.rating_shard_paths:
            verify_manifest(path, kind=SHARD_KIND)
        return manifest

    # ------------------------------------------------------------------
    # user id spaces
    # ------------------------------------------------------------------

    @property
    def bct_user_ids(self) -> np.ndarray:
        """External BCT user ids, indexed by the shards' ``user`` column."""
        if self._bct_user_ids is None:
            count = int(self.meta.get("n_bct_users", 0))
            self._bct_user_ids = np.asarray(
                [f"bct_u{i:06d}" for i in range(count)], dtype=object
            )
        return self._bct_user_ids

    @property
    def anobii_user_ids(self) -> np.ndarray:
        """External Anobii user ids, indexed by the shards' ``user`` column."""
        if self._anobii_user_ids is None:
            count = int(self.meta.get("n_anobii_users", 0))
            self._anobii_user_ids = np.asarray(
                [f"anobii_u{i:06d}" for i in range(count)], dtype=object
            )
        return self._anobii_user_ids

    # ------------------------------------------------------------------
    # shard access
    # ------------------------------------------------------------------

    def bct_books(self) -> Table:
        """The BCT catalogue table."""
        return _columns_to_table(
            read_npz_columns(self.root / "books.npz"), BCT_BOOKS_SCHEMA
        )

    def anobii_items(self) -> Table:
        """The Anobii catalogue table."""
        return _columns_to_table(
            read_npz_columns(self.root / "items.npz"), ANOBII_ITEMS_SCHEMA
        )

    def iter_loan_shards(
        self, names: tuple[str, ...] | None = None
    ) -> Iterator[dict[str, np.ndarray]]:
        """Yield each loan shard's raw column arrays, in shard order.

        ``names`` restricts the read to those columns — unselected ones
        are never decompressed, which is how the streaming merge's emit
        pass keeps its working set below the shard size.
        """
        for path in self.loan_shard_paths:
            yield read_npz_columns(path, names)

    def iter_rating_shards(
        self, names: tuple[str, ...] | None = None
    ) -> Iterator[dict[str, np.ndarray]]:
        """Yield each rating shard's raw column arrays, in shard order."""
        for path in self.rating_shard_paths:
            yield read_npz_columns(path, names)

    def loans_table(self, shard: dict[str, np.ndarray]) -> Table:
        """Typed :data:`BCT_LOANS_SCHEMA` view of one loan shard."""
        loan_date = self.bct_epoch + shard["day"].astype("timedelta64[D]")
        return Table.from_columns(
            {
                "loan_id": shard["loan_id"],
                "user_id": self.bct_user_ids[shard["user"]],
                "book_id": shard["book_id"],
                "loan_date": loan_date,
                "return_date": loan_date
                + shard["duration"].astype("timedelta64[D]"),
            },
            schema=BCT_LOANS_SCHEMA,
        )

    def ratings_table(self, shard: dict[str, np.ndarray]) -> Table:
        """Typed :data:`ANOBII_RATINGS_SCHEMA` view of one rating shard."""
        return Table.from_columns(
            {
                "rating_id": shard["rating_id"],
                "user_id": self.anobii_user_ids[shard["user"]],
                "item_id": shard["item_id"],
                "rating": shard["rating"].astype(np.int64),
                "rating_date": self.anobii_epoch
                + shard["day"].astype("timedelta64[D]"),
            },
            schema=ANOBII_RATINGS_SCHEMA,
        )

    def materialise(self) -> tuple[BCTDataset, AnobiiDataset]:
        """Load the whole corpus into memory as typed source datasets.

        The in-memory reference the streaming equivalence tests compare
        against — only call this at test/bench scale.
        """
        loan_tables = [self.loans_table(s) for s in self.iter_loan_shards()]
        rating_tables = [self.ratings_table(s) for s in self.iter_rating_shards()]
        loans = (
            concat_tables(loan_tables)
            if loan_tables
            else Table.empty(BCT_LOANS_SCHEMA)
        )
        ratings = (
            concat_tables(rating_tables)
            if rating_tables
            else Table.empty(ANOBII_RATINGS_SCHEMA)
        )
        return (
            BCTDataset(books=self.bct_books(), loans=loans),
            AnobiiDataset(items=self.anobii_items(), ratings=ratings),
        )

"""Measure the vectorised scoring fast paths against their references.

Four layers are benchmarked on a synthetic library-scale dataset, mirroring
the serving pipeline end to end:

- **masking** — the CSR-scatter seen-item mask vs the per-user loop;
- **evaluation** — rank-only (counting) evaluation vs the full stable
  argsort reference;
- **similarity** — the blockwise / float32 cosine kernels and the
  truncated top-N sparse representation's memory footprint vs the dense
  float64 matrix;
- **serving** — LRU-cached vs uncached request latency, plus the batched
  ``recommend_many`` path.

Scoring cost is held constant across compared paths by running a
:class:`PrecomputedScores` model, so each measurement isolates the layer
it names. Results are written to ``BENCH_fastpath.json`` so the perf
trajectory stays visible across PRs.
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.app.service import RecommendationRequest, RecommendationService
from repro.core.base import Recommender
from repro.datasets.merged import MergedDataset
from repro.datasets.synthetic import generate_sources
from repro.datasets.world import WorldConfig
from repro.eval.evaluator import evaluate_model
from repro.eval.split import split_readings
from repro.perf.timer import Timer, best_of, throughput
from repro.pipeline.merge import MergeConfig, build_merged_dataset
from repro.resilience.artefacts import atomic_write
from repro.rng import make_rng
from repro.text.embedder import HashedTfidfEmbedder
from repro.text.similarity import (
    cosine_similarity_matrix,
    truncated_similarity_matrix,
)
from repro.text.summary import MetadataSummaryBuilder

DEFAULT_OUTPUT = "BENCH_fastpath.json"


class PrecomputedScores(Recommender):
    """A recommender whose scores are a fixed matrix.

    Scoring is one fancy-index copy, so any measurement over this model
    times the surrounding machinery (masking, ranking, top-k, serving)
    rather than a particular algorithm's linear algebra.
    """

    exclude_seen = True

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._scores: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "Precomputed Scores"

    def _fit(self, train, dataset) -> None:
        rng = make_rng(self.seed)
        self._scores = rng.normal(size=(train.n_users, train.n_items))

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        assert self._scores is not None
        return self._scores[np.asarray(user_indices, dtype=np.int64)]


@dataclass(frozen=True)
class FastpathBenchConfig:
    """Shape and repetition knobs for the fast-path bench.

    The defaults build a catalogue of a few thousand candidate books
    (melting to ~1 700 after the merge activity floors) — small enough to
    run in well under a minute, large enough that the vectorised paths'
    asymptotics dominate the measurement.
    """

    n_books: int = 6000
    n_authors: int = 1200
    n_bct_users: int = 400
    n_anobii_users: int = 2000
    min_user_readings: int = 10
    min_book_readings: int = 3
    seed: int = 7
    repeats: int = 5
    top_n_neighbors: int = 50
    block_size: int = 512
    serve_users: int = 50
    serve_requests: int = 300
    k: int = 20


def run_fastpath_bench(
    config: FastpathBenchConfig | None = None,
    output_path: str | Path | None = DEFAULT_OUTPUT,
) -> dict[str, Any]:
    """Run every fast-path measurement and (optionally) write the JSON."""
    config = config or FastpathBenchConfig()
    report: dict[str, Any] = {
        "bench": "fastpath",
        "config": asdict(config),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    with Timer("dataset build") as build_timer:
        world = WorldConfig(
            n_books=config.n_books,
            n_authors=config.n_authors,
            n_bct_users=config.n_bct_users,
            n_anobii_users=config.n_anobii_users,
            seed=config.seed,
        )
        sources = generate_sources(world)
        merged, _ = build_merged_dataset(
            sources.bct,
            sources.anobii,
            MergeConfig(
                min_user_readings=config.min_user_readings,
                min_book_readings=config.min_book_readings,
            ),
        )
        split = split_readings(merged)
    report["dataset"] = {
        "build_seconds": build_timer.seconds,
        "n_users": split.train.n_users,
        "n_items": split.train.n_items,
        "n_test_users": len(split.test_items),
        "n_interactions": split.train.n_interactions,
    }

    model = PrecomputedScores(seed=config.seed).fit(split.train, merged)
    eval_users = np.asarray(sorted(split.test_items), dtype=np.int64)

    report["masking"] = _bench_masking(model, eval_users, config)
    report["evaluation"] = _bench_evaluation(model, split, config)
    report["similarity"] = _bench_similarity(merged, split.train, config)
    report["serving"] = _bench_serving(model, split.train, merged, config)

    if output_path is not None:
        path = Path(output_path)
        with atomic_write(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2) + "\n")
        report["output_path"] = str(path)
    return report


def _bench_masking(
    model: Recommender, eval_users: np.ndarray, config: FastpathBenchConfig
) -> dict[str, Any]:
    """CSR-scatter masking vs the per-user loop, plus batch top-k."""
    reference = best_of(
        lambda: model.masked_scores_reference(eval_users), config.repeats
    )
    fast = best_of(lambda: model.masked_scores(eval_users), config.repeats)
    batch_topk = best_of(
        lambda: model.recommend_batch(eval_users, config.k), config.repeats
    )
    per_row_topk = best_of(
        lambda: model.recommend_batch_reference(eval_users, config.k),
        config.repeats,
    )
    return {
        "n_users": int(len(eval_users)),
        "reference_seconds": reference,
        "fast_seconds": fast,
        "speedup": reference / fast if fast else float("inf"),
        "users_per_second": throughput(len(eval_users), fast),
        "batch_topk_seconds": batch_topk,
        "per_row_topk_seconds": per_row_topk,
        "batch_topk_speedup": (
            per_row_topk / batch_topk if batch_topk else float("inf")
        ),
    }


def _bench_evaluation(
    model: Recommender, split, config: FastpathBenchConfig
) -> dict[str, Any]:
    """Rank-only chunked evaluation vs the full-argsort baseline."""
    count = best_of(
        lambda: evaluate_model(model, split, ks=(config.k,), rank_method="count"),
        config.repeats,
    )
    argsort = best_of(
        lambda: evaluate_model(model, split, ks=(config.k,), rank_method="argsort"),
        config.repeats,
    )
    n_users = len(split.test_items)
    return {
        "n_users": n_users,
        "argsort_seconds": argsort,
        "count_seconds": count,
        "speedup": argsort / count if count else float("inf"),
        "users_per_second": throughput(n_users, count),
    }


def _bench_similarity(
    merged: MergedDataset, train, config: FastpathBenchConfig
) -> dict[str, Any]:
    """Blockwise / float32 / truncated similarity builds on real embeddings."""
    builder = MetadataSummaryBuilder(("author", "genres"))
    summaries_by_book = builder.build_all(merged)
    summaries = [
        summaries_by_book[int(train.items.id_of(i))]
        for i in range(train.n_items)
    ]
    embedder = HashedTfidfEmbedder()
    embedder.fit(summaries)
    embeddings = embedder.encode(summaries)

    dense_seconds = best_of(
        lambda: cosine_similarity_matrix(embeddings), config.repeats
    )
    blockwise_seconds = best_of(
        lambda: cosine_similarity_matrix(
            embeddings, block_size=config.block_size
        ),
        config.repeats,
    )
    float32_seconds = best_of(
        lambda: cosine_similarity_matrix(
            embeddings, block_size=config.block_size, dtype=np.float32
        ),
        config.repeats,
    )
    truncated_seconds = best_of(
        lambda: truncated_similarity_matrix(
            embeddings, config.top_n_neighbors, block_size=config.block_size
        ),
        config.repeats,
    )
    dense = cosine_similarity_matrix(embeddings)
    truncated = truncated_similarity_matrix(embeddings, config.top_n_neighbors)
    sparse_nbytes = int(
        truncated.data.nbytes
        + truncated.indices.nbytes
        + truncated.indptr.nbytes
    )
    return {
        "n_items": int(embeddings.shape[0]),
        "embed_dim": int(embeddings.shape[1]),
        "dense_build_seconds": dense_seconds,
        "blockwise_build_seconds": blockwise_seconds,
        "blockwise_float32_build_seconds": float32_seconds,
        "truncated_build_seconds": truncated_seconds,
        "dense_nbytes": int(dense.nbytes),
        "truncated_sparse_nbytes": sparse_nbytes,
        "memory_ratio": (
            dense.nbytes / sparse_nbytes if sparse_nbytes else float("inf")
        ),
        "top_n_neighbors": config.top_n_neighbors,
    }


def _bench_serving(
    model: Recommender, train, merged: MergedDataset, config: FastpathBenchConfig
) -> dict[str, Any]:
    """Cached vs uncached request latency and the batch endpoint."""
    known = [
        str(train.users.id_of(int(index)))
        for index in range(min(config.serve_users, train.n_users))
    ]
    requests = [
        RecommendationRequest(user_id=known[i % len(known)], k=config.k)
        for i in range(config.serve_requests)
    ]

    uncached_service = RecommendationService(model, train, merged, cache_size=0)
    with Timer("uncached") as uncached_timer:
        for request in requests:
            uncached_service.recommend(request)
    uncached = uncached_timer.seconds / len(requests)

    cached_service = RecommendationService(model, train, merged)
    for request in requests:  # warm the cache
        cached_service.recommend(request)
    with Timer("cached") as cached_timer:
        for request in requests:
            cached_service.recommend(request)
    cached = cached_timer.seconds / len(requests)

    batch_service = RecommendationService(model, train, merged, cache_size=0)
    with Timer("batch") as batch_timer:
        batch_service.recommend_many(requests)
    batched = batch_timer.seconds / len(requests)

    return {
        "n_requests": len(requests),
        "distinct_users": len(known),
        "uncached_seconds_per_request": uncached,
        "cached_seconds_per_request": cached,
        "cache_speedup": uncached / cached if cached else float("inf"),
        "batch_seconds_per_request": batched,
        "batch_speedup": uncached / batched if batched else float("inf"),
        "cache_hits": cached_service.stats.cache_hits,
        "cache_misses": cached_service.stats.cache_misses,
        "cache_hit_rate": cached_service.stats.cache_hit_rate,
        "requests_per_second_cached": throughput(
            len(requests), cached_timer.seconds
        ),
    }

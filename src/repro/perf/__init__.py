"""Performance measurement harness.

:mod:`repro.perf.timer` provides the :class:`~repro.perf.timer.Timer`
context manager and throughput helpers used by the benches;
:mod:`repro.perf.fastpath` measures every fast path introduced by the
vectorised-scoring work (masking, rank-only evaluation, blockwise /
truncated similarity, cached serving) against its reference
implementation and writes the ``BENCH_fastpath.json`` trajectory file;
:mod:`repro.perf.trainbench` measures the BPR training tiers
(reference / fast / hogwild) against each other and writes the
``BENCH_train.json`` trajectory file;
:mod:`repro.perf.rss` attributes peak resident-set-size to individual
phases; :mod:`repro.perf.scalebench` measures the out-of-core data path
(sharded generation + streaming merge) and writes ``BENCH_scale.json``;
:mod:`repro.perf.servebench` measures the serving retrieval tiers
(recall@k-vs-latency frontier, exact-tier equivalence, Zipf replay) and
writes ``BENCH_serve.json``.
"""

from repro.perf.timer import Timer, TimingResult, best_of, throughput
from repro.perf.fastpath import FastpathBenchConfig, run_fastpath_bench
from repro.perf.trainbench import TrainBenchConfig, run_train_bench
from repro.perf.rss import PhaseRss, measure_phase_rss, reset_peak_rss
from repro.perf.scalebench import ScaleBenchConfig, run_scale_bench
from repro.perf.servebench import (
    ServeBenchConfig,
    render_serve_report,
    run_serve_bench,
)

__all__ = [
    "Timer",
    "TimingResult",
    "best_of",
    "throughput",
    "FastpathBenchConfig",
    "run_fastpath_bench",
    "TrainBenchConfig",
    "run_train_bench",
    "PhaseRss",
    "measure_phase_rss",
    "reset_peak_rss",
    "ScaleBenchConfig",
    "run_scale_bench",
    "ServeBenchConfig",
    "render_serve_report",
    "run_serve_bench",
]

"""Peak resident-set-size measurement for the scale benches.

Two complementary sources:

- :func:`peak_rss_bytes` — ``resource.getrusage(RUSAGE_SELF).ru_maxrss``,
  available everywhere but *monotone*: it reports the high-water mark
  since process start and cannot be reset.
- ``/proc/self/status`` ``VmHWM`` — the same high-water mark, but on
  Linux it can be reset per phase by writing ``5`` to
  ``/proc/self/clear_refs`` (:func:`reset_peak_rss`), which is what lets
  ``BENCH_scale.json`` attribute a peak to *one* pipeline phase instead
  of whichever earlier phase was hungriest.

:func:`measure_phase_rss` wraps a callable with the reset-run-read cycle
and records which source produced the number (``vmhwm`` when the reset
works, ``getrusage`` otherwise), so consumers — the CI smoke assertion,
the RSS regression test — can tell a real per-phase peak from the
monotone fallback.
"""

from __future__ import annotations

import resource
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, TypeVar

_STATUS = Path("/proc/self/status")
_CLEAR_REFS = Path("/proc/self/clear_refs")

T = TypeVar("T")


def _status_field_bytes(field: str) -> int | None:
    """A ``kB`` field from ``/proc/self/status``, in bytes (None off-Linux)."""
    try:
        text = _STATUS.read_text(encoding="ascii")
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith(field + ":"):
            parts = line.split()
            if len(parts) >= 2 and parts[1].isdigit():
                return int(parts[1]) * 1024
    return None


def current_rss_bytes() -> int:
    """The process's current resident set size in bytes (``VmRSS``).

    Falls back to the getrusage high-water mark where ``/proc`` is
    unavailable — an over-estimate, but never an under-estimate.
    """
    value = _status_field_bytes("VmRSS")
    return value if value is not None else peak_rss_bytes()


def peak_rss_bytes() -> int:
    """High-water-mark RSS in bytes since process start (monotone).

    ``ru_maxrss`` is kilobytes on Linux; this is the
    ``resource.getrusage`` number the bench records as its portable
    baseline.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def vm_hwm_bytes() -> int | None:
    """The ``VmHWM`` high-water mark in bytes, or None off-Linux."""
    return _status_field_bytes("VmHWM")


def reset_peak_rss() -> bool:
    """Reset ``VmHWM`` to the current RSS; True when the reset worked.

    Only the ``/proc`` high-water mark resets — ``ru_maxrss`` stays
    monotone — so callers must check the return value before trusting a
    per-phase reading.
    """
    try:
        # /proc/self/clear_refs is a kernel control interface, not an
        # artefact: atomic rename onto procfs is impossible by design.
        # repro: allow[resource-lifetime] — kernel interface write
        with _CLEAR_REFS.open("w") as handle:
            handle.write("5")
    except OSError:
        return False
    return vm_hwm_bytes() is not None


@dataclass(frozen=True)
class PhaseRss:
    """Peak RSS attribution for one measured phase."""

    peak_bytes: int
    """High-water mark observed after the phase ran."""
    delta_bytes: int
    """Peak minus the RSS at phase start — the phase's own appetite."""
    source: str
    """``"vmhwm"`` (per-phase, reset worked) or ``"getrusage"`` (monotone)."""
    reset_supported: bool


def measure_phase_rss(fn: Callable[[], T]) -> tuple[T, PhaseRss]:
    """Run ``fn`` and attribute its peak RSS.

    When the high-water mark can be reset the numbers isolate this phase;
    otherwise they fall back to the monotone process-wide peak (still an
    upper bound, flagged via ``source``/``reset_supported``).
    """
    reset = reset_peak_rss()
    before = current_rss_bytes()
    result = fn()
    if reset:
        peak = vm_hwm_bytes()
        assert peak is not None  # reset_peak_rss() verified readability
        return result, PhaseRss(
            peak_bytes=peak,
            delta_bytes=max(peak - before, 0),
            source="vmhwm",
            reset_supported=True,
        )
    peak = peak_rss_bytes()
    return result, PhaseRss(
        peak_bytes=peak,
        delta_bytes=max(peak - before, 0),
        source="getrusage",
        reset_supported=False,
    )

"""Scale bench: out-of-core corpus generation + streaming merge.

``python -m repro bench-scale`` drives the paper-scale data path end to
end — generate a sharded corpus (millions of rows, never materialised),
stream the Section-3 merge over its shards, and write the resulting
throughput/peak-RSS trajectory to ``BENCH_scale.json`` so later PRs can
claim real scaling wins against recorded numbers:

- **generate** — rows/sec through :class:`ShardedCorpusWriter` and the
  phase's peak RSS (which stays O(catalogue + one shard), not O(corpus));
- **merge_streaming** — rows/sec through
  :func:`~repro.pipeline.streaming.merge_sharded_corpus` in out-of-core
  mode (report + merged shards on disk, no in-memory readings table);
- **merge_materialised** — the in-memory reference path on the same
  corpus, measured when ``compare_materialised`` is on (the ``--quick``
  smoke mode) so CI can assert the streaming path's RSS stays below it.

Peak RSS comes from :mod:`repro.perf.rss`: per-phase ``VmHWM`` resets
where the kernel allows them, with the monotone ``getrusage`` high-water
mark as the recorded fallback (the report's ``rss`` section says which
source produced the numbers).
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.datasets.corpus import CorpusConfig, ShardedCorpus, ShardedCorpusWriter
from repro.perf.rss import PhaseRss, measure_phase_rss
from repro.perf.timer import Timer
from repro.pipeline.merge import MergeConfig, build_merged_dataset
from repro.pipeline.streaming import merge_sharded_corpus
from repro.resilience.artefacts import atomic_write

DEFAULT_OUTPUT = "BENCH_scale.json"

#: The default corpus: >= 1 M events, the acceptance floor for this bench.
DEFAULT_CORPUS = CorpusConfig(
    n_books=2000,
    n_authors=600,
    n_bct_users=4000,
    n_anobii_users=16000,
    n_loans=600_000,
    n_ratings=450_000,
    n_shards=8,
)

#: The --quick smoke corpus: same shape, ~40 k rows, runs in seconds.
QUICK_CORPUS = CorpusConfig(
    n_books=400,
    n_authors=150,
    n_bct_users=300,
    n_anobii_users=1200,
    n_loans=24_000,
    n_ratings=18_000,
    n_shards=4,
    rows_per_chunk=4096,
)


@dataclass(frozen=True)
class ScaleBenchConfig:
    """Corpus shape + merge floors for the scale bench."""

    corpus: CorpusConfig = field(default_factory=lambda: DEFAULT_CORPUS)
    merge: MergeConfig = field(default_factory=MergeConfig)
    compare_materialised: bool = False
    """Also run the in-memory reference merge on the same corpus — only
    sensible at smoke scale, where the corpus fits in memory."""

    @classmethod
    def quick(cls) -> "ScaleBenchConfig":
        """The ``--quick`` smoke configuration (CI's bench-scale job)."""
        return cls(corpus=QUICK_CORPUS, compare_materialised=True)


def _phase_section(rows: int, seconds: float, rss: PhaseRss) -> dict[str, Any]:
    return {
        "rows": rows,
        "seconds": seconds,
        "rows_per_second": rows / seconds if seconds > 0 else 0.0,
        "peak_rss_bytes": rss.peak_bytes,
        "rss_delta_bytes": rss.delta_bytes,
    }


def run_scale_bench(
    config: ScaleBenchConfig | None = None,
    output_path: str | Path | None = DEFAULT_OUTPUT,
    workdir: str | Path | None = None,
) -> dict[str, Any]:
    """Run the scale bench and (optionally) write ``BENCH_scale.json``.

    ``workdir`` hosts the corpus and merged-output directories (a
    temporary directory, cleaned afterwards, when omitted). The streaming
    merge is measured *before* the materialised reference so that even
    under the monotone-RSS fallback the recorded streaming peak can never
    be inflated by the materialised run.
    """
    config = config or ScaleBenchConfig()
    total_rows = config.corpus.n_loans + config.corpus.n_ratings

    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
            return run_scale_bench(config, output_path, workdir=tmp)

    workdir = Path(workdir)
    corpus_dir = workdir / "corpus"

    with Timer() as generate_timer:
        corpus, generate_rss = measure_phase_rss(
            lambda: ShardedCorpusWriter(corpus_dir, config.corpus).write()
        )

    with Timer() as stream_timer:
        streaming, stream_rss = measure_phase_rss(
            lambda: merge_sharded_corpus(
                corpus,
                config.merge,
                materialise=False,
                output_dir=workdir / "merged",
            )
        )

    materialised_section = None
    if config.compare_materialised:
        def _materialised():
            bct, anobii = corpus.materialise()
            return build_merged_dataset(bct, anobii, config.merge)

        with Timer() as mat_timer:
            (_, mat_report), mat_rss = measure_phase_rss(_materialised)
        materialised_section = _phase_section(
            total_rows, mat_timer.seconds, mat_rss
        )
        materialised_section["readings_out"] = mat_report.readings_after_filter

    streaming_section = _phase_section(total_rows, stream_timer.seconds, stream_rss)
    streaming_section["readings_out"] = streaming.report.readings_after_filter

    report: dict[str, Any] = {
        "bench": "scale",
        "config": {
            "corpus": asdict(config.corpus),
            "merge": asdict(config.merge),
            "compare_materialised": config.compare_materialised,
        },
        "corpus": {
            "loan_shards": int(corpus.meta["loan_shards"]),
            "rating_shards": int(corpus.meta["rating_shards"]),
            "largest_shard_bytes": corpus.largest_shard_bytes(),
        },
        "generate": _phase_section(total_rows, generate_timer.seconds, generate_rss),
        "merge_streaming": streaming_section,
        "merge_materialised": materialised_section,
        "rss": {
            "source": stream_rss.source,
            "reset_supported": stream_rss.reset_supported,
        },
    }
    if output_path is not None:
        output_path = Path(output_path)
        with atomic_write(output_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2) + "\n")
        report["output_path"] = str(output_path)
    return report


def render_scale_report(report: dict[str, Any]) -> str:
    """Human-readable summary of a scale-bench report for the CLI."""
    lines = ["scale bench (out-of-core corpus + streaming merge)"]
    corpus = report["corpus"]
    lines.append(
        f"  corpus: {report['generate']['rows']} rows in "
        f"{corpus['loan_shards']}+{corpus['rating_shards']} shards "
        f"(largest {corpus['largest_shard_bytes'] / 1e6:.1f} MB)"
    )
    for name in ("generate", "merge_streaming", "merge_materialised"):
        section = report.get(name)
        if not section:
            continue
        lines.append(
            f"  {name}: {section['rows_per_second']:,.0f} rows/s "
            f"({section['seconds']:.2f} s, peak RSS "
            f"{section['peak_rss_bytes'] / 1e6:.0f} MB)"
        )
    rss = report["rss"]
    lines.append(
        f"  rss source: {rss['source']}"
        + ("" if rss["reset_supported"] else " (monotone fallback)")
    )
    if "output_path" in report:
        lines.append(f"  report: {report['output_path']}")
    return "\n".join(lines)

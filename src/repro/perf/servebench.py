"""Measure the serving retrieval tiers: recall@k versus latency.

The serving analogue of ``BENCH_train.json``: one synthetic catalogue,
one fitted BPR model, and the :class:`~repro.app.service.RecommendationService`
driven through each retrieval configuration (see ``docs/serving.md`` for
the operator's view of the knobs):

- **equivalence** — the bit-compatibility contract of
  ``docs/determinism.md``: IVF with ``probe_cells >= n_cells`` and the
  mmap shard store must both reproduce the exact scorer's lists
  identically, checked list-for-list on sampled users.
- **frontier** — recall@k and seconds/request at a sweep of probe
  widths, each versus the exact tier's latency, so the recall-vs-speed
  trade is a measured curve rather than folklore. The default width's
  point is called out separately (the ``bench-serve`` CI smoke job
  asserts its recall@10 stays >= 0.95).
- **zipf replay** — a seeded Zipf-popularity request stream served in
  batches through the default IVF tier with the shard store and cache
  on: p50/p95/p99 per-request latency, cache hit rate, coalesced group
  counts, and shard residency, i.e. the numbers a capacity plan needs.
- **synthetic scale** — the same index over a large seeded random
  catalogue (where the full GEMM actually dominates a request), probed
  at the default width against exact top-k: the honest demonstration
  that the IVF trade pays off once ``n_items`` is big enough. The bench
  corpus above is deliberately small; its ``speedup_vs_exact`` column
  mostly shows the probing overhead.

Latency numbers are wall-clock and environment-dependent; recall and
the equivalence booleans are deterministic for a given config.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.app.service import (
    RETRIEVAL_IVF,
    RecommendationRequest,
    RecommendationService,
)
from repro.core.bpr import BPR, BPRConfig
from repro.datasets.synthetic import generate_sources
from repro.datasets.world import WorldConfig
from repro.eval.split import split_readings
from repro.perf.timer import Timer
from repro.pipeline.merge import MergeConfig, build_merged_dataset
from repro.resilience.artefacts import atomic_write
from repro.retrieval.ivf import IVFIndex, default_probe_cells, recall_at_k
from repro.retrieval.shards import UserShardStore, write_user_shards
from repro.rng import derive_rng

DEFAULT_OUTPUT = "BENCH_serve.json"


@dataclass(frozen=True)
class ServeBenchConfig:
    """Shape and sweep knobs for the serving bench.

    The default catalogue is sized so the IVF index gets a meaningful
    cell count (~26 cells) while the whole sweep stays under a minute on
    a 2-vCPU host; :meth:`quick` shrinks it for CI smoke runs while
    keeping enough cells that the default probe width is a real subset.
    """

    n_books: int = 1200
    n_authors: int = 300
    n_bct_users: int = 400
    n_anobii_users: int = 1600
    min_user_readings: int = 10
    min_book_readings: int = 5
    seed: int = 20260808
    epochs: int = 6
    k: int = 10
    """List length requested during latency loops and the replay."""
    recall_k: int = 10
    """k for the recall@k measurements."""
    sample_users: int = 128
    """Users sampled for equivalence, recall, and latency loops."""
    probe_widths: "tuple[int, ...] | None" = None
    """Probe widths to sweep (default: derived from the cell count)."""
    n_shards: int = 8
    max_resident: int = 2
    repeats: int = 3
    """Best-of repeats for each latency loop."""
    replay_requests: int = 600
    replay_batch: int = 32
    zipf_exponent: float = 1.1
    cache_size: int = 512
    synthetic_items: int = 50_000
    """Catalogue size for the synthetic large-scale index sweep."""
    synthetic_dim: int = 32
    synthetic_queries: int = 64

    @classmethod
    def quick(cls) -> "ServeBenchConfig":
        """A CI-sized config: smaller world, fewer requests, same gates."""
        return cls(
            n_books=600,
            n_authors=200,
            n_bct_users=200,
            n_anobii_users=800,
            epochs=5,
            sample_users=64,
            repeats=2,
            replay_requests=200,
            synthetic_items=20_000,
            synthetic_queries=32,
        )


def run_serve_bench(
    config: ServeBenchConfig | None = None,
    output_path: "str | Path | None" = DEFAULT_OUTPUT,
) -> dict[str, Any]:
    """Run the serving bench and (optionally) write ``BENCH_serve.json``.

    Returns the report dict; see the module docstring for its sections.
    """
    config = config or ServeBenchConfig()
    report: dict[str, Any] = {
        "bench": "serve",
        "config": asdict(config),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }

    with Timer("dataset build") as build_timer:
        world = WorldConfig(
            n_books=config.n_books,
            n_authors=config.n_authors,
            n_bct_users=config.n_bct_users,
            n_anobii_users=config.n_anobii_users,
            seed=config.seed,
        )
        sources = generate_sources(world)
        merged, _ = build_merged_dataset(
            sources.bct,
            sources.anobii,
            MergeConfig(
                min_user_readings=config.min_user_readings,
                min_book_readings=config.min_book_readings,
            ),
        )
        split = split_readings(merged)
        model = BPR(
            BPRConfig(epochs=config.epochs, seed=config.seed)
        ).fit(split.train, merged)
    train = split.train
    report["dataset"] = {
        "books": merged.books.num_rows,
        "n_users": int(train.n_users),
        "n_items": int(train.n_items),
        "build_seconds": build_timer.seconds,
    }

    rng = derive_rng(config.seed, "perf", "servebench", "users")
    sample = np.sort(
        rng.choice(
            train.n_users,
            size=min(config.sample_users, train.n_users),
            replace=False,
        )
    )
    user_ids = [str(train.users.id_of(int(index))) for index in sample]

    def make_service(
        cache_size: int = 0, **kwargs: Any
    ) -> RecommendationService:
        return RecommendationService(
            model, train, merged, seed=config.seed, cache_size=cache_size,
            **kwargs,
        )

    exact = make_service()
    exact_lists = _serve_lists(exact, user_ids, config.k)

    with tempfile.TemporaryDirectory(prefix="servebench-shards-") as tmp:
        store_root = write_user_shards(
            Path(tmp) / "user-shards",
            model.user_factors,
            n_shards=config.n_shards,
        )

        # -- equivalence: probe-all IVF and the shard store vs exact ----
        probe_all = make_service(
            retrieval=RETRIEVAL_IVF, probe_cells=train.n_items
        )
        sharded = make_service(
            user_shards=UserShardStore(
                store_root, max_resident=config.max_resident
            )
        )
        report["equivalence"] = {
            "users_checked": len(user_ids),
            "ivf_probe_all_bit_identical": (
                _serve_lists(probe_all, user_ids, config.k) == exact_lists
            ),
            "shard_store_bit_identical": (
                _serve_lists(sharded, user_ids, config.k) == exact_lists
            ),
        }

        # -- frontier: recall@k vs seconds/request across probe widths --
        exact_spr = _seconds_per_request(
            exact, user_ids, config.k, config.repeats
        )
        report["exact"] = {"seconds_per_request": exact_spr}
        n_cells = probe_all.health()["retrieval"]["cells"]
        default_probe = default_probe_cells(n_cells)
        widths = config.probe_widths or _derived_widths(n_cells)
        frontier = []
        for width in widths:
            service = make_service(
                retrieval=RETRIEVAL_IVF, probe_cells=width
            )
            recall = service.measure_retrieval_recall(
                k=config.recall_k, sample_users=config.sample_users
            )
            spr = _seconds_per_request(
                service, user_ids, config.k, config.repeats
            )
            point = {
                "probe_cells": int(width),
                "recall_at_k": recall,
                "seconds_per_request": spr,
                "speedup_vs_exact": exact_spr / spr if spr > 0 else None,
                "mean_candidates": _mean_candidates(service),
            }
            frontier.append(point)
            if width == default_probe:
                report["default"] = dict(point, n_cells=int(n_cells))
        report["frontier"] = frontier

        # -- zipf replay: batched, cached, shard-backed serving ---------
        replay = make_service(
            cache_size=config.cache_size,
            retrieval=RETRIEVAL_IVF,
            user_shards=UserShardStore(
                store_root, max_resident=config.max_resident
            ),
        )
        report["zipf_replay"] = _zipf_replay(replay, train, config)

    report["synthetic_scale"] = _synthetic_scale(config)

    if output_path is not None:
        path = Path(output_path)
        with atomic_write(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2) + "\n")
        report["output_path"] = str(path)
    return report


def render_serve_report(report: dict) -> str:
    """A human-readable summary of a serving bench report."""
    dataset = report["dataset"]
    equivalence = report["equivalence"]
    lines = [
        "serve bench "
        f"({dataset['n_users']} users x {dataset['n_items']} items, "
        f"k={report['config']['k']})",
        "  exact tier  "
        f"{report['exact']['seconds_per_request'] * 1e3:8.3f} ms/request, "
        "probe-all "
        + (
            "bit-identical"
            if equivalence["ivf_probe_all_bit_identical"]
            else "MISMATCH"
        )
        + ", shard store "
        + (
            "bit-identical"
            if equivalence["shard_store_bit_identical"]
            else "MISMATCH"
        ),
    ]
    for point in report["frontier"]:
        marker = (
            "  <- default"
            if point["probe_cells"] == report["default"]["probe_cells"]
            else ""
        )
        lines.append(
            f"  probe {point['probe_cells']:3d}  "
            f"recall@{report['config']['recall_k']} "
            f"{point['recall_at_k']:.4f}  "
            f"{point['seconds_per_request'] * 1e3:8.3f} ms/request "
            f"({point['speedup_vs_exact']:.2f}x vs exact){marker}"
        )
    synthetic = report["synthetic_scale"]
    lines.append(
        f"  synthetic {synthetic['n_items']} items "
        f"({synthetic['n_cells']} cells, exact "
        f"{synthetic['exact_seconds_per_query'] * 1e3:.3f} ms/query):"
    )
    for point in synthetic["frontier"]:
        marker = (
            "  <- default"
            if point["probe_cells"] == synthetic["probe_cells"]
            else ""
        )
        lines.append(
            f"    probe {point['probe_cells']:3d}  "
            f"recall@{report['config']['recall_k']} "
            f"{point['recall_at_k']:.4f}  "
            f"{point['seconds_per_query'] * 1e3:8.3f} ms/query "
            f"({point['speedup_vs_exact']:.2f}x vs exact){marker}"
        )
    replay = report["zipf_replay"]
    lines.append(
        f"  zipf replay {replay['requests']} requests: "
        f"p50 {replay['latency']['p50'] * 1e3:.3f} ms, "
        f"p95 {replay['latency']['p95'] * 1e3:.3f} ms, "
        f"p99 {replay['latency']['p99'] * 1e3:.3f} ms, "
        f"cache hit rate {replay['cache_hit_rate']:.2f}, "
        f"{replay['shards']['resident']}/{replay['shards']['n_shards']} "
        "shards resident"
    )
    if "output_path" in report:
        lines.append(f"  written to {report['output_path']}")
    return "\n".join(lines)


def _derived_widths(n_cells: int) -> tuple[int, ...]:
    """The default probe sweep: octave steps plus the default and all."""
    candidates = {
        1,
        max(1, n_cells // 8),
        max(1, n_cells // 4),
        max(1, n_cells // 3),
        default_probe_cells(n_cells),
        n_cells,
    }
    return tuple(sorted(candidates))


def _serve_lists(
    service: RecommendationService, user_ids: list[str], k: int
) -> list[list[int]]:
    """Each user's served book-id list (the bit-identity comparand)."""
    return [
        [
            book.book_id
            for book in service.recommend(
                RecommendationRequest(user_id=user_id, k=k)
            )
        ]
        for user_id in user_ids
    ]


def _seconds_per_request(
    service: RecommendationService,
    user_ids: list[str],
    k: int,
    repeats: int,
) -> float:
    """Best-of-``repeats`` mean seconds per single (uncached) request."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        with Timer("request loop") as timer:
            for user_id in user_ids:
                service.recommend_response(
                    RecommendationRequest(user_id=user_id, k=k)
                )
        best = min(best, timer.seconds)
    return best / len(user_ids)


def _mean_candidates(service: RecommendationService) -> "float | None":
    """Mean IVF candidates per scored request, from the service counters."""
    counters = service.metrics_snapshot()["counters"]
    candidates = counters.get("service.retrieval.candidates", {}).get(
        "value", 0.0
    )
    scored = (
        counters.get("service.retrieval.requests", {})
        .get("labels", {})
        .get(f"tier={RETRIEVAL_IVF}", 0.0)
    )
    return candidates / scored if scored else None


def _synthetic_scale(config: ServeBenchConfig) -> dict[str, Any]:
    """Exact vs default-probe IVF over a large seeded random catalogue."""
    rng = derive_rng(config.seed, "perf", "servebench", "synthetic")
    vectors = rng.normal(size=(config.synthetic_items, config.synthetic_dim))
    with Timer("synthetic build") as build_timer:
        index = IVFIndex.build(vectors, seed=config.seed)
    probe = default_probe_cells(index.n_cells)
    queries = rng.normal(size=(config.synthetic_queries, config.synthetic_dim))

    def per_query(run: "Any") -> float:
        best = float("inf")
        for _ in range(max(config.repeats, 1)):
            with Timer("query loop") as timer:
                for query in queries:
                    run(query)
            best = min(best, timer.seconds)
        return best / len(queries)

    exact_spq = per_query(lambda q: index.exact_top_k(q, config.recall_k))
    frontier = []
    for width in sorted({max(1, probe // 4), max(1, probe // 2), probe}):
        spq = per_query(
            lambda q, w=width: index.search(q, config.recall_k, probe_cells=w)
        )
        frontier.append({
            "probe_cells": int(width),
            "recall_at_k": recall_at_k(
                index, queries, config.recall_k, probe_cells=width
            ),
            "seconds_per_query": spq,
            "speedup_vs_exact": exact_spq / spq if spq > 0 else None,
        })
    default = frontier[-1]
    return {
        "n_items": config.synthetic_items,
        "dim": config.synthetic_dim,
        "queries": config.synthetic_queries,
        "n_cells": int(index.n_cells),
        "probe_cells": int(probe),
        "build_seconds": build_timer.seconds,
        "recall_at_k": default["recall_at_k"],
        "exact_seconds_per_query": exact_spq,
        "ivf_seconds_per_query": default["seconds_per_query"],
        "speedup_vs_exact": default["speedup_vs_exact"],
        "frontier": frontier,
    }


def _zipf_replay(
    service: RecommendationService, train, config: ServeBenchConfig
) -> dict[str, Any]:
    """Serve a seeded Zipf-popularity stream in coalesced batches."""
    rng = derive_rng(config.seed, "perf", "servebench", "zipf")
    n_users = train.n_users
    ranks = rng.permutation(n_users)
    weights = 1.0 / np.arange(1, n_users + 1) ** config.zipf_exponent
    probabilities = np.empty(n_users)
    probabilities[ranks] = weights / weights.sum()
    draws = rng.choice(n_users, size=config.replay_requests, p=probabilities)
    user_ids = [str(train.users.id_of(int(index))) for index in draws]
    with Timer("zipf replay") as timer:
        for start in range(0, len(user_ids), config.replay_batch):
            batch = user_ids[start:start + config.replay_batch]
            service.recommend_many(
                [
                    RecommendationRequest(user_id=user_id, k=config.k)
                    for user_id in batch
                ]
            )
    stats = service.stats
    counters = service.metrics_snapshot()["counters"]
    groups = sum(
        counters.get("service.retrieval.groups", {})
        .get("labels", {})
        .values()
    )
    return {
        "requests": config.replay_requests,
        "batch": config.replay_batch,
        "exponent": config.zipf_exponent,
        "seconds": timer.seconds,
        "throughput_rps": (
            config.replay_requests / timer.seconds if timer.seconds else None
        ),
        "latency": {
            "mean_seconds": stats.mean_seconds,
            "p50": stats.percentile(0.50),
            "p95": stats.percentile(0.95),
            "p99": stats.percentile(0.99),
        },
        "cache_hit_rate": stats.cache_hit_rate,
        "coalesced_groups": groups,
        "distinct_users": int(len(np.unique(draws))),
        "shards": service.user_shards.stats(),
    }

"""Wall-clock timing primitives for the perf benches.

Everything here is deliberately dependency-free: a context manager around
``time.perf_counter``, a best-of-N repeat helper (the standard defence
against scheduler noise), and throughput arithmetic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Usage::

        with Timer("masking") as timer:
            model.masked_scores(users)
        print(timer.seconds, timer.throughput(len(users)))

    ``seconds`` reads the running elapsed time until the block exits, then
    freezes at the block's duration.

    ``histogram`` optionally points at a
    :class:`repro.obs.metrics.Histogram`; each completed block observes
    its duration there, so bench timings flow into the same registry the
    serving path uses.
    """

    def __init__(self, name: str = "", histogram=None) -> None:
        self.name = name
        self.histogram = histogram
        self._started: float | None = None
        self._seconds: float | None = None

    def __enter__(self) -> "Timer":
        self._seconds = None
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started is not None
        self._seconds = time.perf_counter() - self._started
        if self.histogram is not None:
            self.histogram.observe(self._seconds)

    @property
    def seconds(self) -> float:
        if self._seconds is not None:
            return self._seconds
        if self._started is None:
            raise ConfigurationError(
                f"Timer {self.name!r} has not been started"
            )
        return time.perf_counter() - self._started

    def throughput(self, n_ops: int) -> float:
        """Operations per second over the timed block."""
        return throughput(n_ops, self.seconds)

    def result(self, n_ops: int | None = None) -> "TimingResult":
        return TimingResult(name=self.name, seconds=self.seconds, n_ops=n_ops)


@dataclass(frozen=True)
class TimingResult:
    """One named measurement, optionally with an operation count."""

    name: str
    seconds: float
    n_ops: int | None = None

    @property
    def ops_per_second(self) -> float | None:
        if self.n_ops is None:
            return None
        return throughput(self.n_ops, self.seconds)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.n_ops is not None:
            out["n_ops"] = self.n_ops
            out["ops_per_second"] = self.ops_per_second
        return out


def throughput(n_ops: int, seconds: float) -> float:
    """``n_ops / seconds``, tolerating a clock-resolution zero."""
    if seconds <= 0.0:
        return float("inf") if n_ops else 0.0
    return n_ops / seconds


def best_of(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best (minimum) wall-clock seconds over ``repeats`` calls of ``fn``.

    The minimum is the standard estimator for kernel cost: noise from the
    scheduler and caches only ever adds time.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best

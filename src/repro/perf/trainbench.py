"""Measure the BPR training tiers against the float64 reference.

Three tiers are benchmarked on one synthetic catalogue (see
``docs/determinism.md`` for the contract each tier honours):

- **reference** — the float64 per-trial WARP loop with ``np.add.at``
  scatter updates; bit-identical to the pre-fast-path trainer.
- **fast** — the float32 kernel: pre-drawn candidate matrices, one
  einsum per batch, ``np.bincount`` segment-sum updates.
- **hogwild** — the fast kernel sharded across worker processes with
  lock-free updates into shared-memory factors (skipped, with a reason
  recorded in the report, on platforms without ``fork``).

Each tier records per-epoch throughput (``samples_per_second`` — the
same pairs-per-epoch-second definition :class:`~repro.core.bpr.EpochStats`
exposes) plus its converged validation URR/NRR, so the speedup *and* the
KPI cost of leaving the reference tier stay visible across PRs in
``BENCH_train.json``, next to the other ``BENCH_*.json`` trajectories.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.bpr import BPR, BPRConfig
from repro.core.bpr_kernel import fork_sharing_available
from repro.datasets.synthetic import generate_sources
from repro.datasets.world import WorldConfig
from repro.eval.evaluator import evaluate_model
from repro.eval.split import split_readings
from repro.perf.timer import Timer
from repro.pipeline.merge import MergeConfig, build_merged_dataset
from repro.resilience.artefacts import atomic_write

DEFAULT_OUTPUT = "BENCH_train.json"


@dataclass(frozen=True)
class TrainBenchConfig:
    """Shape and tier knobs for the training bench.

    The defaults build the same mid-size catalogue as the parallel
    bench: large enough that per-batch numpy work dominates Python
    dispatch (where the fast kernel's advantage lives), small enough
    that all tiers finish in well under a minute on a 2-vCPU host.
    """

    n_books: int = 2500
    n_authors: int = 600
    n_bct_users: int = 250
    n_anobii_users: int = 1200
    min_user_readings: int = 10
    min_book_readings: int = 3
    seed: int = 7
    sampler: str = "warp"
    n_factors: int = 20
    learning_rate: float = 0.2
    epochs: int = 8
    k: int = 20
    workers: int = 2
    """Worker processes for the HogWild tier."""
    repeats: int = 3
    """Fit repeats per tier; the recorded throughput is the best epoch
    across all repeats (the best-of defence against scheduler noise)."""


def run_train_bench(
    config: TrainBenchConfig | None = None,
    output_path: str | Path | None = DEFAULT_OUTPUT,
) -> dict[str, Any]:
    """Benchmark every training tier and (optionally) write JSON.

    Each tier's section reports per-epoch seconds and samples/sec for
    the last fit, the best whole-fit samples/sec across repeats, its
    validation URR/NRR at ``config.k``, and its throughput speedup over
    the reference tier. A throughput win that moves the KPIs outside the
    documented tolerance is not a win — the KPI deltas are recorded so
    the reader can check.
    """
    config = config or TrainBenchConfig()
    report: dict[str, Any] = {
        "bench": "train",
        "config": asdict(config),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }

    with Timer("dataset build") as build_timer:
        world = WorldConfig(
            n_books=config.n_books,
            n_authors=config.n_authors,
            n_bct_users=config.n_bct_users,
            n_anobii_users=config.n_anobii_users,
            seed=config.seed,
        )
        sources = generate_sources(world)
        merged, _ = build_merged_dataset(
            sources.bct,
            sources.anobii,
            MergeConfig(
                min_user_readings=config.min_user_readings,
                min_book_readings=config.min_book_readings,
            ),
        )
        split = split_readings(merged)
    report["dataset"] = {
        "books": merged.books.num_rows,
        "readings": merged.readings.num_rows,
        "train_pairs": int(split.train.n_interactions),
        "build_seconds": build_timer.seconds,
    }

    tiers: dict[str, Any] = {}
    tiers["reference"] = _bench_tier(config, split, kernel="reference")
    tiers["fast"] = _bench_tier(config, split, kernel="fast")
    if fork_sharing_available():
        tiers["hogwild"] = _bench_tier(
            config, split, kernel="fast", workers=config.workers
        )
    else:
        tiers["hogwild"] = {
            "skipped": "no fork start method on this platform"
        }
    reference_best = tiers["reference"]["best_samples_per_second"]
    for name, tier in tiers.items():
        if "skipped" in tier:
            continue
        tier["speedup_vs_reference"] = (
            tier["best_samples_per_second"] / reference_best
        )
        tier["val_urr_delta_vs_reference"] = (
            tier["val_urr"] - tiers["reference"]["val_urr"]
        )
    report["tiers"] = tiers

    if output_path is not None:
        path = Path(output_path)
        with atomic_write(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2) + "\n")
        report["output_path"] = str(path)
    return report


def _bench_tier(
    config: TrainBenchConfig,
    split,
    kernel: str,
    workers: int = 1,
) -> dict[str, Any]:
    """Fit one tier ``config.repeats`` times; report throughput and KPIs."""
    bpr_config = BPRConfig(
        n_factors=config.n_factors,
        learning_rate=config.learning_rate,
        epochs=config.epochs,
        seed=config.seed,
        sampler=config.sampler,
        kernel=kernel,
        workers=workers,
    )
    best_samples_per_second = 0.0
    model = None
    for _ in range(max(config.repeats, 1)):
        model = BPR(bpr_config).fit(split.train)
        # Whole-fit throughput: WARP trials grow as the model converges
        # (late epochs draw many more negatives per pair), so a single
        # cheap early epoch is not representative — the per-epoch
        # trajectory is recorded alongside for that detail.
        fit_seconds = sum(s.seconds for s in model.history)
        pairs_processed = split.train.n_interactions * len(model.history)
        if fit_seconds > 0:
            best_samples_per_second = max(
                best_samples_per_second, pairs_processed / fit_seconds
            )
    result = evaluate_model(
        model, split, ks=(config.k,), holdout="val"
    )
    kpi = result.report(config.k)
    last = model.history[-1]
    return {
        "kernel": kernel,
        "workers": workers,
        "epochs": config.epochs,
        "epoch_seconds": [s.seconds for s in model.history],
        "samples_per_second": [s.samples_per_second for s in model.history],
        "best_samples_per_second": best_samples_per_second,
        "updated_fraction": last.updated_fraction,
        "mean_violation_trials": last.mean_violation_trials,
        "val_urr": kpi.urr,
        "val_nrr": kpi.nrr,
    }

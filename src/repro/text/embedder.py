"""Sentence embedders: the interface and the SBERT substitute.

The paper encodes each book's metadata summary with a pre-trained SBERT
model (Reimers & Gurevych 2019) and compares books by cosine similarity.
:class:`HashedTfidfEmbedder` plays that role here: a deterministic
fit-on-catalogue encoder whose cosine geometry reflects shared vocabulary
(author names, genre labels, plot themes). See the subpackage docstring for
why this substitution preserves the paper's content-based findings.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import NotFittedError
from repro.text.hashing import hashed_counts
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import TokenizerConfig, tokenize


@runtime_checkable
class SentenceEmbedder(Protocol):
    """Anything that maps strings to fixed-dimension unit vectors.

    ``fit`` learns corpus statistics (a no-op for pre-trained models);
    ``encode`` maps a batch of strings to an ``(n, dim)`` float matrix with
    L2-normalised rows, so dot products are cosine similarities.
    """

    dim: int

    def fit(self, corpus: Sequence[str]) -> "SentenceEmbedder":
        """Learn whatever statistics the embedder needs from the corpus."""
        ...

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Embed ``texts`` into an ``(len(texts), dim)`` matrix."""
        ...


class HashedTfidfEmbedder:
    """The default embedder: hashed word+char-n-gram TF-IDF (SBERT stand-in).

    Deterministic, dependency-free, and fast: encoding the paper-scale
    catalogue (2 332 summaries) takes well under a second.

    Args:
        dim: width of the hashed feature space. 512 keeps collision noise
            below ~2 % cosine error for catalogue-sized vocabularies.
        tokenizer: feature extraction configuration.
        sublinear_tf: dampen repeated tokens (recommended; long plots stop
            dominating the author tokens).
    """

    def __init__(
        self,
        dim: int = 512,
        tokenizer: TokenizerConfig | None = None,
        sublinear_tf: bool = True,
    ) -> None:
        self.dim = dim
        self.tokenizer = tokenizer or TokenizerConfig()
        self._tfidf = TfidfModel(dim=dim, sublinear_tf=sublinear_tf)

    @property
    def is_fitted(self) -> bool:
        return self._tfidf.is_fitted

    def fit(self, corpus: Sequence[str]) -> "HashedTfidfEmbedder":
        """Learn bucket document frequencies from the catalogue summaries."""
        documents = [self._hash(text) for text in corpus]
        self._tfidf.fit(documents)
        return self

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Embed ``texts``; raises :class:`NotFittedError` before ``fit``."""
        if not self._tfidf.is_fitted:
            raise NotFittedError(type(self).__name__)
        return self._tfidf.transform_many([self._hash(text) for text in texts])

    def _hash(self, text: str) -> dict[int, float]:
        return hashed_counts(tokenize(text, self.tokenizer), self.dim)


class HashedCountEmbedder(HashedTfidfEmbedder):
    """Ablation variant: hashed counts without IDF weighting.

    Used by the design-choice ablation benches to quantify what the IDF
    weighting contributes to the Closest Items recommender.
    """

    def __init__(self, dim: int = 512, tokenizer: TokenizerConfig | None = None) -> None:
        super().__init__(dim=dim, tokenizer=tokenizer, sublinear_tf=False)

    def fit(self, corpus: Sequence[str]) -> "HashedCountEmbedder":
        documents = [self._hash(text) for text in corpus]
        # Flat IDF: fit on an empty corpus so every bucket gets weight 1.
        self._tfidf.fit([])
        self._tfidf._idf = np.ones(self.dim)
        self._tfidf._n_documents = len(documents)
        return self

"""Sentence embedders: the interface and the SBERT substitute.

The paper encodes each book's metadata summary with a pre-trained SBERT
model (Reimers & Gurevych 2019) and compares books by cosine similarity.
:class:`HashedTfidfEmbedder` plays that role here: a deterministic
fit-on-catalogue encoder whose cosine geometry reflects shared vocabulary
(author names, genre labels, plot themes). See the subpackage docstring for
why this substitution preserves the paper's content-based findings.
"""

from __future__ import annotations

import functools
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import NotFittedError
from repro.parallel.pool import WorkerPool, chunk_slices
from repro.text.hashing import hashed_counts
from repro.text.tfidf import TfidfModel
from repro.text.tokenize import TokenizerConfig, tokenize


def _hash_text(text: str, dim: int, tokenizer: TokenizerConfig) -> dict[int, float]:
    """Hash one text into bucket counts (module-level so workers can pickle it)."""
    return hashed_counts(tokenize(text, tokenizer), dim)


def _df_chunk(
    texts: list[str], dim: int, tokenizer: TokenizerConfig
) -> np.ndarray:
    """One chunk's bucket document-frequency histogram (runs in a worker).

    Returning a fixed ``(dim,)`` array per chunk instead of one sparse
    dict per text keeps the process-backend transfer tiny; the parent
    sums the integer-valued histograms exactly.
    """
    df = np.zeros(dim, dtype=np.float64)
    for text in texts:
        for bucket, value in _hash_text(text, dim, tokenizer).items():
            if value != 0.0:
                df[bucket] += 1.0
    return df


def _encode_chunk(
    texts: list[str],
    dim: int,
    tokenizer: TokenizerConfig,
    idf: np.ndarray,
    sublinear_tf: bool,
) -> np.ndarray:
    """Hash and TF-IDF-weight one chunk into dense rows (runs in a worker).

    The chunk ships back as one ``(len(texts), dim)`` float matrix — a
    single binary buffer — rather than per-text sparse dicts. Weighting
    goes through :class:`TfidfModel` itself so the arithmetic matches
    the serial path operation for operation.
    """
    model = TfidfModel(dim=dim, sublinear_tf=sublinear_tf)
    model._idf = np.asarray(idf, dtype=np.float64)
    documents = [_hash_text(text, dim, tokenizer) for text in texts]
    return model.transform_many(documents)


@runtime_checkable
class SentenceEmbedder(Protocol):
    """Anything that maps strings to fixed-dimension unit vectors.

    ``fit`` learns corpus statistics (a no-op for pre-trained models);
    ``encode`` maps a batch of strings to an ``(n, dim)`` float matrix with
    L2-normalised rows, so dot products are cosine similarities.
    """

    dim: int

    def fit(self, corpus: Sequence[str]) -> "SentenceEmbedder":
        """Learn whatever statistics the embedder needs from the corpus."""
        ...

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Embed ``texts`` into an ``(len(texts), dim)`` matrix."""
        ...


class HashedTfidfEmbedder:
    """The default embedder: hashed word+char-n-gram TF-IDF (SBERT stand-in).

    Deterministic, dependency-free, and fast: encoding the paper-scale
    catalogue (2 332 summaries) takes well under a second.

    Args:
        dim: width of the hashed feature space. 512 keeps collision noise
            below ~2 % cosine error for catalogue-sized vocabularies.
        tokenizer: feature extraction configuration.
        sublinear_tf: dampen repeated tokens (recommended; long plots stop
            dominating the author tokens).
        n_jobs: workers for the tokenise-and-hash stage of ``fit`` and
            ``encode`` (``1`` = in-process, ``-1`` = all CPUs). Hashing
            is a pure per-text function and chunks reassemble in order,
            so embeddings are bit-identical for every worker count.
        backend: execution backend for ``n_jobs > 1`` (``"process"``
            suits this pure-Python stage; see
            :class:`~repro.parallel.WorkerPool`).
    """

    def __init__(
        self,
        dim: int = 512,
        tokenizer: TokenizerConfig | None = None,
        sublinear_tf: bool = True,
        n_jobs: int = 1,
        backend: str = "auto",
    ) -> None:
        self.dim = dim
        self.tokenizer = tokenizer or TokenizerConfig()
        self._tfidf = TfidfModel(dim=dim, sublinear_tf=sublinear_tf)
        self._pool = WorkerPool(n_jobs=n_jobs, backend=backend)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has learned corpus statistics yet."""
        return self._tfidf.is_fitted

    @property
    def n_jobs(self) -> int:
        """The resolved worker count of the hashing pool."""
        return self._pool.n_jobs

    def fit(self, corpus: Sequence[str]) -> "HashedTfidfEmbedder":
        """Learn bucket document frequencies from the catalogue summaries.

        With ``n_jobs > 1`` each worker hashes a contiguous chunk of the
        corpus and returns its document-frequency histogram; the parent
        sums the (integer-valued, hence exactly-summable) histograms, so
        the fitted IDF is bit-identical to the serial fit.
        """
        texts = [str(text) for text in corpus]
        if self._pool.backend == "serial":
            self._tfidf.fit([self._hash(text) for text in texts])
            return self
        chunks = self._chunks(texts)
        fn = functools.partial(
            _df_chunk, dim=self.dim, tokenizer=self.tokenizer
        )
        histograms = self._pool.map(fn, chunks, chunk_size=1)
        df = np.sum(histograms, axis=0) if histograms else np.zeros(self.dim)
        self._tfidf.fit_from_counts(df, len(texts))
        return self

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Embed ``texts``; raises :class:`NotFittedError` before ``fit``.

        With ``n_jobs > 1`` workers hash and weight contiguous chunks
        into dense row blocks which the parent stacks in chunk order —
        bit-identical to the serial encode on every backend.
        """
        if not self._tfidf.is_fitted:
            raise NotFittedError(type(self).__name__)
        work = [str(text) for text in texts]
        if self._pool.backend == "serial":
            return self._tfidf.transform_many(
                [self._hash(text) for text in work]
            )
        chunks = self._chunks(work)
        fn = functools.partial(
            _encode_chunk,
            dim=self.dim,
            tokenizer=self.tokenizer,
            idf=self._tfidf._idf,
            sublinear_tf=self._tfidf.sublinear_tf,
        )
        blocks = self._pool.map(fn, chunks, chunk_size=1)
        if not blocks:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(blocks)

    def _hash(self, text: str) -> dict[int, float]:
        return _hash_text(text, self.dim, self.tokenizer)

    def _chunks(self, texts: list[str]) -> list[list[str]]:
        """Contiguous text chunks, one map item per worker task."""
        slices = chunk_slices(len(texts), 2 * self._pool.n_jobs)
        return [texts[piece] for piece in slices]


class HashedCountEmbedder(HashedTfidfEmbedder):
    """Ablation variant: hashed counts without IDF weighting.

    Used by the design-choice ablation benches to quantify what the IDF
    weighting contributes to the Closest Items recommender.
    """

    def __init__(
        self,
        dim: int = 512,
        tokenizer: TokenizerConfig | None = None,
        n_jobs: int = 1,
        backend: str = "auto",
    ) -> None:
        super().__init__(
            dim=dim, tokenizer=tokenizer, sublinear_tf=False,
            n_jobs=n_jobs, backend=backend,
        )

    def fit(self, corpus: Sequence[str]) -> "HashedCountEmbedder":
        """Record the corpus size; IDF stays flat so counts pass through."""
        # Flat IDF: fit on an empty corpus so every bucket gets weight 1.
        self._tfidf.fit([])
        self._tfidf._idf = np.ones(self.dim)
        self._tfidf._n_documents = len(corpus)
        return self

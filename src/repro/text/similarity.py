"""Cosine-similarity kernels over embedding matrices.

Two serving-scale controls were added for large catalogues:

- ``block_size`` computes the similarity matrix in row blocks, so the
  intermediate work stays cache-sized and progress is interruptible; the
  output is still the full matrix unless truncated.
- :func:`truncated_similarity_matrix` keeps only each row's top-``n``
  neighbours in a CSR matrix, dropping memory from O(B²) dense float64 to
  O(B·n) — the Lib-SibGMU-scale representation used by
  :class:`~repro.core.closest_items.ClosestItems` in sparse mode.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import ConfigurationError


def cosine_similarity_matrix(
    left: np.ndarray,
    right: np.ndarray | None = None,
    *,
    block_size: int | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Pairwise cosine similarity between the rows of two matrices.

    Rows do not need to be pre-normalised; zero rows yield zero similarity
    rather than NaN. Returns an ``(n_left, n_right)`` matrix.

    ``block_size`` bounds how many left rows are multiplied at once (the
    default multiplies everything in one GEMM call); ``dtype`` selects the
    accumulation precision — ``np.float32`` halves memory and roughly
    doubles throughput at ~1e-7 similarity error.
    """
    if block_size is not None and block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ConfigurationError(
            f"dtype must be float32 or float64, got {dtype}"
        )
    left = np.asarray(left, dtype=dtype)
    right = left if right is None else np.asarray(right, dtype=dtype)
    if left.ndim != 2 or right.ndim != 2 or left.shape[1] != right.shape[1]:
        raise ConfigurationError(
            f"incompatible shapes for cosine similarity: "
            f"{left.shape} vs {right.shape}"
        )
    left_normed = _normalize_rows(left)
    right_normed = left_normed if right is left else _normalize_rows(right)
    if block_size is None or block_size >= left_normed.shape[0]:
        # Rounding at extreme magnitudes can push a product epsilon past
        # the mathematical bounds; clip so downstream code can rely on
        # [-1, 1].
        return np.clip(left_normed @ right_normed.T, -1.0, 1.0)
    out = np.empty((left_normed.shape[0], right_normed.shape[0]), dtype=dtype)
    right_t = right_normed.T
    for start in range(0, left_normed.shape[0], block_size):
        stop = start + block_size
        np.clip(
            left_normed[start:stop] @ right_t, -1.0, 1.0,
            out=out[start:stop],
        )
    return out


def truncated_similarity_matrix(
    embeddings: np.ndarray,
    top_n: int,
    *,
    block_size: int | None = None,
    dtype: np.dtype | type = np.float64,
    zero_diagonal: bool = True,
) -> sparse.csr_matrix:
    """Item-item cosine similarity keeping only the top-``n`` per row.

    Builds the similarity blockwise (never materialising more than
    ``block_size × n_items`` dense values at once) and stores each row's
    ``n`` largest entries in a CSR matrix, so peak memory is O(B·n)
    instead of the O(B²) dense matrix. ``zero_diagonal`` excludes
    self-similarity before selection, matching
    :class:`~repro.core.closest_items.ClosestItems`' Eq. (1) convention.
    """
    if top_n < 1:
        raise ConfigurationError(f"top_n must be >= 1, got {top_n}")
    if block_size is not None and block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    embeddings = np.asarray(embeddings)
    if embeddings.ndim != 2:
        raise ConfigurationError(
            f"embeddings must be 2-D, got shape {embeddings.shape}"
        )
    n_items = embeddings.shape[0]
    normed = _normalize_rows(np.asarray(embeddings, dtype=np.dtype(dtype)))
    keep = min(top_n, max(n_items - 1, 1))
    block = block_size or max(1, min(n_items, 4096))
    data_blocks: list[np.ndarray] = []
    col_blocks: list[np.ndarray] = []
    indptr = np.zeros(n_items + 1, dtype=np.int64)
    right_t = normed.T
    for start in range(0, n_items, block):
        stop = min(start + block, n_items)
        rows = np.clip(normed[start:stop] @ right_t, -1.0, 1.0)
        if zero_diagonal:
            rows[np.arange(stop - start), np.arange(start, stop)] = 0.0
        kth = min(keep, rows.shape[1])
        top_cols = np.argpartition(-rows, kth=kth - 1, axis=1)[:, :kth]
        top_vals = np.take_along_axis(rows, top_cols, axis=1)
        # CSR wants column-sorted rows; order within the kept set is
        # irrelevant to the scores, so sort by column index.
        order = np.argsort(top_cols, axis=1)
        top_cols = np.take_along_axis(top_cols, order, axis=1)
        top_vals = np.take_along_axis(top_vals, order, axis=1)
        nonzero = top_vals != 0.0
        indptr[start + 1:stop + 1] = np.count_nonzero(nonzero, axis=1)
        data_blocks.append(top_vals[nonzero])
        col_blocks.append(top_cols[nonzero])
    np.cumsum(indptr, out=indptr)
    data = (
        np.concatenate(data_blocks)
        if data_blocks else np.empty(0, dtype=np.dtype(dtype))
    )
    cols = (
        np.concatenate(col_blocks)
        if col_blocks else np.empty(0, dtype=np.int64)
    )
    return sparse.csr_matrix(
        (data, cols, indptr), shape=(n_items, n_items)
    )


def average_similarity_to_history(
    similarity: np.ndarray, history: np.ndarray
) -> np.ndarray:
    """Mean similarity of every catalogue item to a set of history items.

    Implements Equation (1) of the paper: given the full item-item
    similarity matrix and the indices of the books a user has read, return
    ``s_b`` for every book ``b`` (including read ones — the caller masks
    them out).
    """
    history = np.asarray(history, dtype=np.int64)
    if history.size == 0:
        return np.zeros(similarity.shape[0], dtype=np.float64)
    return similarity[:, history].mean(axis=1)


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    return (matrix / safe).astype(matrix.dtype, copy=False)

"""Cosine-similarity kernels over embedding matrices."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def cosine_similarity_matrix(
    left: np.ndarray, right: np.ndarray | None = None
) -> np.ndarray:
    """Pairwise cosine similarity between the rows of two matrices.

    Rows do not need to be pre-normalised; zero rows yield zero similarity
    rather than NaN. Returns an ``(n_left, n_right)`` matrix.
    """
    left = np.asarray(left, dtype=np.float64)
    right = left if right is None else np.asarray(right, dtype=np.float64)
    if left.ndim != 2 or right.ndim != 2 or left.shape[1] != right.shape[1]:
        raise ConfigurationError(
            f"incompatible shapes for cosine similarity: "
            f"{left.shape} vs {right.shape}"
        )
    left_normed = _normalize_rows(left)
    right_normed = left_normed if right is left else _normalize_rows(right)
    # Rounding at extreme magnitudes can push a product epsilon past the
    # mathematical bounds; clip so downstream code can rely on [-1, 1].
    return np.clip(left_normed @ right_normed.T, -1.0, 1.0)


def average_similarity_to_history(
    similarity: np.ndarray, history: np.ndarray
) -> np.ndarray:
    """Mean similarity of every catalogue item to a set of history items.

    Implements Equation (1) of the paper: given the full item-item
    similarity matrix and the indices of the books a user has read, return
    ``s_b`` for every book ``b`` (including read ones — the caller masks
    them out).
    """
    history = np.asarray(history, dtype=np.int64)
    if history.size == 0:
        return np.zeros(similarity.shape[0], dtype=np.float64)
    return similarity[:, history].mean(axis=1)


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    return matrix / safe

"""Signed feature hashing (the "hashing trick").

Features are mapped to a fixed-dimension vector with a deterministic hash;
a second hash chooses the sign, which keeps the expected inner product of
unrelated features at zero and makes hash collisions unbiased noise rather
than systematic similarity.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import ConfigurationError

_SIGN_SALT = b"sign:"


def hash_feature(feature: str, dim: int) -> tuple[int, float]:
    """Return the (bucket index, sign) of a feature in a ``dim``-wide space."""
    if dim <= 0:
        raise ConfigurationError(f"hash dimension must be positive, got {dim}")
    payload = feature.encode("utf-8")
    bucket = zlib.crc32(payload) % dim
    sign = 1.0 if zlib.crc32(_SIGN_SALT + payload) & 1 else -1.0
    return bucket, sign


def hashed_vector(features: list[str], dim: int) -> np.ndarray:
    """Accumulate signed feature counts into a dense ``dim`` vector."""
    vector = np.zeros(dim, dtype=np.float64)
    for feature in features:
        bucket, sign = hash_feature(feature, dim)
        vector[bucket] += sign
    return vector


def hashed_counts(features: list[str], dim: int) -> dict[int, float]:
    """Sparse variant of :func:`hashed_vector` (bucket -> signed count)."""
    counts: dict[int, float] = {}
    for feature in features:
        bucket, sign = hash_feature(feature, dim)
        counts[bucket] = counts.get(bucket, 0.0) + sign
    return counts

"""Text normalisation and tokenisation for the embedding substrate."""

from __future__ import annotations

import unicodedata
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TokenizerConfig:
    """What features :func:`tokenize` extracts from a normalised string.

    Word tokens capture exact shared vocabulary (author names, genre
    labels); character n-grams capture partial matches (inflected forms,
    multi-word names split differently across sources).
    """

    use_words: bool = True
    char_ngram_min: int = 3
    char_ngram_max: int = 4
    use_char_ngrams: bool = True

    def __post_init__(self) -> None:
        if self.use_char_ngrams and not (
            1 <= self.char_ngram_min <= self.char_ngram_max
        ):
            raise ConfigurationError(
                f"invalid char n-gram range "
                f"[{self.char_ngram_min}, {self.char_ngram_max}]"
            )
        if not self.use_words and not self.use_char_ngrams:
            raise ConfigurationError(
                "tokenizer must extract at least one feature family"
            )


def normalize_text(text: str) -> str:
    """Lower-case, strip accents, and collapse non-alphanumerics to spaces."""
    decomposed = unicodedata.normalize("NFKD", text.lower())
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    cleaned = "".join(ch if ch.isalnum() else " " for ch in stripped)
    return " ".join(cleaned.split())


def word_tokens(normalized: str) -> list[str]:
    """Whitespace word tokens of an already-normalised string."""
    return normalized.split()


def char_ngrams(token: str, n_min: int, n_max: int) -> list[str]:
    """Character n-grams of a token, with ``#`` boundary markers.

    Boundary markers make prefixes/suffixes distinct features, which is what
    lets hashed n-grams approximate subword similarity.
    """
    padded = f"#{token}#"
    grams = []
    for n in range(n_min, n_max + 1):
        if len(padded) < n:
            continue
        grams.extend(padded[i:i + n] for i in range(len(padded) - n + 1))
    return grams


def tokenize(text: str, config: TokenizerConfig | None = None) -> list[str]:
    """Extract the configured feature tokens from raw text.

    Word features are prefixed ``w=`` and n-grams ``c=`` so the two families
    never collide in the hashing space by carrying identical strings.
    """
    config = config or TokenizerConfig()
    features: list[str] = []
    for token in word_tokens(normalize_text(text)):
        if config.use_words:
            features.append(f"w={token}")
        if config.use_char_ngrams:
            features.extend(
                f"c={gram}"
                for gram in char_ngrams(token, config.char_ngram_min, config.char_ngram_max)
            )
    return features

"""TF-IDF weighting over the hashed feature space.

Equivalent to a hashing vectorizer followed by a TF-IDF transformer: the
document-frequency statistics are learned per hash bucket on a fitted
corpus, then any document (including unseen ones) can be transformed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class TfidfModel:
    """Bucket-level TF-IDF with smoothed IDF and sublinear TF.

    IDF uses the smoothed form ``ln((1 + N) / (1 + df)) + 1`` so unseen
    buckets still receive a finite weight. Sublinear TF keeps long plots
    from drowning short high-signal fields like the author name.
    """

    def __init__(self, dim: int, sublinear_tf: bool = True) -> None:
        self.dim = dim
        self.sublinear_tf = sublinear_tf
        self._idf: np.ndarray | None = None
        self._n_documents = 0

    @property
    def is_fitted(self) -> bool:
        return self._idf is not None

    def fit(self, documents: list[dict[int, float]]) -> "TfidfModel":
        """Learn bucket document frequencies from sparse hashed documents."""
        df = np.zeros(self.dim, dtype=np.float64)
        for counts in documents:
            for bucket, value in counts.items():
                if value != 0.0:
                    df[bucket] += 1.0
        return self.fit_from_counts(df, len(documents))

    def fit_from_counts(
        self, document_frequencies: np.ndarray, n_documents: int
    ) -> "TfidfModel":
        """Fit from precomputed per-bucket document frequencies.

        The distributed embedding path computes per-chunk frequency
        histograms in workers and sums them in the parent; because the
        frequencies are integer-valued, the summed array is bit-equal
        to the one :meth:`fit` accumulates document by document.
        """
        df = np.asarray(document_frequencies, dtype=np.float64)
        if df.shape != (self.dim,):
            raise ConfigurationError(
                f"document_frequencies must have shape ({self.dim},), "
                f"got {df.shape}"
            )
        self._idf = np.log((1.0 + n_documents) / (1.0 + df)) + 1.0
        self._n_documents = n_documents
        return self

    def transform(self, counts: dict[int, float]) -> np.ndarray:
        """Weight one sparse hashed document into a dense L2-normalised vector."""
        if self._idf is None:
            raise NotFittedError(type(self).__name__)
        vector = np.zeros(self.dim, dtype=np.float64)
        for bucket, value in counts.items():
            if value == 0.0:
                continue
            magnitude = abs(value)
            if self.sublinear_tf:
                magnitude = 1.0 + math.log(magnitude)
            vector[bucket] = math.copysign(magnitude, value) * self._idf[bucket]
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def transform_many(self, documents: list[dict[int, float]]) -> np.ndarray:
        """Transform a batch into an ``(n, dim)`` matrix of unit rows."""
        matrix = np.zeros((len(documents), self.dim), dtype=np.float64)
        for i, counts in enumerate(documents):
            matrix[i] = self.transform(counts)
        return matrix

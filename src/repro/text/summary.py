"""Building the *metadata summary* strings for the Closest Items recommender.

The paper (Section 4, "Closest Items") concatenates a configurable subset of
a book's metadata — title, author(s), plot, genres, keywords — into one
string, embeds it, and compares books in that embedding space. Section 6.2
then ablates every combination; Fig. 5 shows author+genres is best, and
title-only is no better than random.

The genre field is rendered with repetition proportional to each genre's
probability so that a 90 %-Comics book and a 40 %-Comics book embed
differently, mirroring the vote-weighted genre model of Section 3.
"""

from __future__ import annotations

from itertools import combinations

from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError

#: The five metadata fields, in the paper's order.
METADATA_FIELDS = ("title", "author", "plot", "genres", "keywords")

#: How many repetitions a probability-1 genre receives in the summary.
GENRE_REPEATS = 4


def field_combinations(min_size: int = 1) -> list[tuple[str, ...]]:
    """All non-empty combinations of metadata fields, smallest first.

    This is the search space of the paper's Section 6.2 ablation (2^5 - 1 =
    31 combinations).
    """
    if not 1 <= min_size <= len(METADATA_FIELDS):
        raise ConfigurationError(
            f"min_size must be in [1, {len(METADATA_FIELDS)}], got {min_size}"
        )
    result: list[tuple[str, ...]] = []
    for size in range(min_size, len(METADATA_FIELDS) + 1):
        result.extend(combinations(METADATA_FIELDS, size))
    return result


class MetadataSummaryBuilder:
    """Builds metadata-summary strings for every book of a merged dataset.

    Args:
        fields: which metadata fields to concatenate. The paper's best
            combination, ``("author", "genres")``, is the default.
    """

    def __init__(self, fields: tuple[str, ...] = ("author", "genres")) -> None:
        unknown = set(fields) - set(METADATA_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"unknown metadata fields {sorted(unknown)}; "
                f"expected a subset of {METADATA_FIELDS}"
            )
        if not fields:
            raise ConfigurationError("at least one metadata field is required")
        self.fields = tuple(fields)

    def build_all(self, dataset: MergedDataset) -> dict[int, str]:
        """Return ``{book_id: summary string}`` for the whole catalogue."""
        genre_probs = dataset.genre_probabilities
        summaries: dict[int, str] = {}
        books = dataset.books
        for book_id, author, title, plot, keywords in zip(
            books["book_id"], books["author"], books["title"],
            books["plot"], books["keywords"],
        ):
            book_id = int(book_id)
            summaries[book_id] = self.build_one(
                title=str(title),
                author=str(author),
                plot=str(plot),
                keywords=str(keywords),
                genres=genre_probs.get(book_id, {}),
            )
        return summaries

    def build_one(
        self,
        title: str = "",
        author: str = "",
        plot: str = "",
        keywords: str = "",
        genres: dict[str, float] | None = None,
    ) -> str:
        """Concatenate the configured fields of one book into its summary."""
        parts: list[str] = []
        for field in self.fields:
            if field == "title":
                parts.append(title)
            elif field == "author":
                parts.append(author)
            elif field == "plot":
                parts.append(plot)
            elif field == "keywords":
                parts.append(keywords)
            elif field == "genres":
                parts.append(render_genres(genres or {}))
        return " ".join(part for part in parts if part).strip()


def render_genres(genres: dict[str, float]) -> str:
    """Render a genre-probability map as weighted repeated labels.

    A genre with probability ``p`` appears ``max(1, round(p * GENRE_REPEATS))``
    times, so dominant genres carry proportionally more embedding mass.
    Labels are emitted in decreasing-probability order for determinism.
    """
    tokens: list[str] = []
    ordered = sorted(genres.items(), key=lambda item: (-item[1], item[0]))
    for genre, probability in ordered:
        repeats = max(1, round(probability * GENRE_REPEATS))
        tokens.extend([genre] * repeats)
    return " ".join(tokens)

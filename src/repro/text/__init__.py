"""Text embedding substrate — the SBERT substitute.

The paper embeds each book's *metadata summary* with a pre-trained SBERT
model and ranks unread books by average cosine similarity to the user's
history. Pre-trained transformer weights are not available offline, so this
subpackage provides a deterministic drop-in:
:class:`~repro.text.embedder.HashedTfidfEmbedder` maps a string to a dense
L2-normalised vector via signed feature hashing of word and character
n-grams, weighted by TF-IDF learned on the catalogue.

What matters for reproducing the paper's content-based results is that the
embedding makes summaries sharing authors, genres, and vocabulary close in
cosine space — which both SBERT and this embedder do — not transformer
semantics; the CB conclusions (author+genre best, title-only ≈ random) are
about *which fields* enter the summary.
"""

from repro.text.tokenize import TokenizerConfig, normalize_text, tokenize
from repro.text.hashing import hash_feature, hashed_vector
from repro.text.tfidf import TfidfModel
from repro.text.embedder import HashedTfidfEmbedder, SentenceEmbedder
from repro.text.similarity import (
    cosine_similarity_matrix,
    truncated_similarity_matrix,
)
from repro.text.summary import (
    METADATA_FIELDS,
    MetadataSummaryBuilder,
    field_combinations,
)

__all__ = [
    "TokenizerConfig",
    "normalize_text",
    "tokenize",
    "hash_feature",
    "hashed_vector",
    "TfidfModel",
    "HashedTfidfEmbedder",
    "SentenceEmbedder",
    "cosine_similarity_matrix",
    "truncated_similarity_matrix",
    "METADATA_FIELDS",
    "MetadataSummaryBuilder",
    "field_combinations",
]

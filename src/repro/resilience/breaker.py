"""A circuit breaker guarding calls into an unreliable dependency.

Classic three-state machine (Nygard's *Release It!* pattern):

- **closed** — calls flow through; outcomes are recorded in a sliding
  window. When the window holds at least ``min_calls`` outcomes and the
  failure rate reaches ``failure_threshold``, the breaker opens.
- **open** — calls are rejected instantly (the caller degrades to its
  fallback) until ``cooldown_seconds`` have elapsed.
- **half-open** — after the cool-down, a limited number of trial calls are
  let through. ``successes_to_close`` consecutive successes close the
  breaker and clear the window; any failure re-opens it and restarts the
  cool-down.

The clock is injectable so state transitions are fully deterministic in
tests: advance a fake clock past the cool-down and the next
:meth:`allow` observes the half-open transition.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.errors import ConfigurationError

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate circuit breaker with a cool-down and half-open probes.

    Args:
        failure_threshold: failure rate in the window that opens the
            breaker (``0 < threshold <= 1``).
        min_calls: outcomes required in the window before the rate is
            trusted (prevents one early failure from opening the breaker).
        window: sliding-window size in calls.
        cooldown_seconds: how long the breaker stays open before probing.
        successes_to_close: consecutive half-open successes needed to close.
        clock: injectable monotonic clock.
        on_transition: optional ``callback(old_state, new_state)`` invoked
            on every state change (the observability layer wires this to a
            transition counter and a state gauge). Exceptions are not
            caught: the callback must be infallible.

    Thread safety: every state read and mutation happens under one
    re-entrant lock, so concurrent serving threads observe a consistent
    state machine (no torn open/half-open transitions, no lost window
    outcomes). ``on_transition`` fires while the lock is held — the
    callback must not call back into the breaker.
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        min_calls: int = 5,
        window: int = 20,
        cooldown_seconds: float = 30.0,
        successes_to_close: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: "Callable[[str, str], None] | None" = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_calls < 1 or window < 1 or successes_to_close < 1:
            raise ConfigurationError(
                "min_calls, window and successes_to_close must be >= 1"
            )
        if cooldown_seconds < 0:
            raise ConfigurationError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.cooldown_seconds = cooldown_seconds
        self.successes_to_close = successes_to_close
        self._clock = clock
        self.on_transition = on_transition
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = STATE_CLOSED
        self._opened_at = 0.0
        self._half_open_successes = 0
        self._lock = threading.RLock()
        self.opened_count = 0
        """How many times the breaker has transitioned closed/half-open -> open."""

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, observing a due open -> half-open transition."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    @property
    def failure_rate(self) -> float:
        """Failing share of the outcome window (0.0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(
                1 for ok in self._outcomes if not ok
            ) / len(self._outcomes)

    def snapshot(self) -> dict:
        """A JSON-friendly view for health reports."""
        with self._lock:
            return {
                "state": self.state,
                "failure_rate": round(self.failure_rate, 4),
                "window_calls": len(self._outcomes),
                "opened_count": self.opened_count,
                "cooldown_seconds": self.cooldown_seconds,
            }

    # ------------------------------------------------------------------
    # protocol: allow() -> call -> record_success()/record_failure()
    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """Whether the guarded call may proceed right now."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state != STATE_OPEN

    def record_success(self) -> None:
        """Record one successful guarded call (may close the breaker)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == STATE_HALF_OPEN:
                self._half_open_successes += 1
                if self._half_open_successes >= self.successes_to_close:
                    self._close_locked()
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        """Record one failed guarded call (may open the breaker)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == STATE_HALF_OPEN:
                self._open_locked()
                return
            self._outcomes.append(False)
            if (
                self._state == STATE_CLOSED
                and len(self._outcomes) >= self.min_calls
                and self.failure_rate >= self.failure_threshold
            ):
                self._open_locked()

    def reset(self) -> None:
        """Force-close the breaker and clear its window (e.g. on redeploy)."""
        with self._lock:
            self._close_locked()

    # ------------------------------------------------------------------
    # transitions — the ``_locked`` suffix asserts the caller holds
    # ``self._lock`` (the static lock-discipline rule relies on it)
    # ------------------------------------------------------------------

    def _open_locked(self) -> None:
        previous = self._state
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._half_open_successes = 0
        self.opened_count += 1
        self._notify_locked(previous, STATE_OPEN)

    def _close_locked(self) -> None:
        previous = self._state
        self._state = STATE_CLOSED
        self._outcomes.clear()
        self._half_open_successes = 0
        self._notify_locked(previous, STATE_CLOSED)

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = STATE_HALF_OPEN
            self._half_open_successes = 0
            self._notify_locked(STATE_OPEN, STATE_HALF_OPEN)

    def _notify_locked(self, old: str, new: str) -> None:
        if self.on_transition is not None and old != new:
            self.on_transition(old, new)

"""The ambient fault-injection hook.

Lives in its own dependency-free module so low-level code (``tables/io``,
``app/persistence``) can call :func:`fault_check` without importing the
full fault-injection machinery — :mod:`repro.resilience.faults` pulls in
:mod:`repro.core`, which itself depends on :mod:`repro.tables`, and a
module-level import from there would be circular.
"""

from __future__ import annotations

_active = None


def get_ambient():
    """The currently active :class:`FaultInjector`, or ``None``."""
    return _active


def set_ambient(injector):
    """Swap the ambient injector; returns the previous one (for restore)."""
    global _active
    previous = _active
    _active = injector
    return previous


def fault_check(site: str) -> None:
    """Crash-point hook for code without an injectable seam (file I/O).

    No-op in production; raises
    :class:`~repro.errors.InjectedFaultError` when a chaos test activated
    an injector (``with injector.injecting(): ...``) and the injector
    decides this call fails.
    """
    if _active is not None:
        _active.check(site)

"""Resilience layer: keep the serving stack answering when parts fail.

Four building blocks, wired through the app/persistence/pipeline layers:

- :mod:`~repro.resilience.retry` — deterministic exponential backoff with
  jitter (:func:`retry_call`) and per-request :class:`Deadline` budgets;
- :mod:`~repro.resilience.breaker` — a :class:`CircuitBreaker`
  (closed/open/half-open) guarding the primary model in
  :class:`~repro.app.service.RecommendationService`;
- :mod:`~repro.resilience.artefacts` — crash-safe writes
  (:func:`atomic_write`) and SHA-256 checksum manifests
  (:func:`write_manifest` / :func:`verify_manifest`);
- :mod:`~repro.resilience.faults` — the :class:`FaultInjector` chaos
  harness (probabilistic or scripted failures at named sites).

``faults`` wraps recommenders and therefore imports :mod:`repro.core`,
which depends on :mod:`repro.tables` — the very module that needs
``artefacts`` for atomic writes. To keep that import chain acyclic the
fault classes are exported lazily (PEP 562) below.
"""

from repro.resilience._ambient import fault_check
from repro.resilience.artefacts import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    atomic_write,
    manifest_path_for,
    sha256_file,
    verify_manifest,
    write_manifest,
)
from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.retry import BackoffPolicy, Deadline, retry_call

_LAZY_FAULT_EXPORTS = (
    "FaultInjector",
    "FaultyEmbedder",
    "FaultyModel",
    "SITE_EMBEDDER_ENCODE",
    "SITE_IO_READ",
    "SITE_IO_RENAME",
    "SITE_IO_WRITE",
    "SITE_MODEL_SCORE",
)

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "Deadline",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "atomic_write",
    "fault_check",
    "manifest_path_for",
    "retry_call",
    "sha256_file",
    "verify_manifest",
    "write_manifest",
    *_LAZY_FAULT_EXPORTS,
]


def __getattr__(name: str):
    if name in _LAZY_FAULT_EXPORTS:
        # repro: allow[layering] — lazy re-export; faults wraps core models
        from repro.resilience import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Crash-safe artefact writing and checksum manifests.

Two guarantees for everything the library persists:

1. **Atomicity** — :func:`atomic_write` writes to a hidden temp file in
   the same directory, flushes and fsyncs it, then ``os.replace``-renames
   it over the destination. A crash (or injected fault) at any point
   leaves either the previous artefact or nothing — never a half-written
   file under the final name.
2. **Integrity** — :func:`write_manifest` records the byte length and
   SHA-256 of each file beside the artefact; :func:`verify_manifest`
   re-hashes on load and raises a *precise* error: missing manifest,
   truncated file, corrupted bytes, or incompatible format version each
   get their own :class:`~repro.errors.PersistenceError` subclass.

The ambient :func:`~repro.resilience._ambient.fault_check` hooks
(``io.write`` before the temp file is written, ``io.rename`` between the
fsync and the rename) are the crash points the chaos suite drives.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from repro.errors import (
    ArtefactVersionError,
    ChecksumMismatchError,
    ManifestMissingError,
    PersistenceError,
    TruncatedArtefactError,
)
from repro.resilience._ambient import fault_check

#: Format version stamped into every manifest this release writes.
MANIFEST_VERSION = 1

#: Manifest file name for directory artefacts (single files use
#: ``<name>.manifest.json`` beside the file).
MANIFEST_NAME = "MANIFEST.json"

_CHUNK = 1 << 20


@contextmanager
def atomic_write(
    path: str | Path, mode: str = "w", **open_kwargs
) -> Iterator[IO]:
    """Open a temp file that replaces ``path`` only on successful exit.

    The temp file lives in the destination directory (same filesystem, so
    the final rename is atomic) under a dotted name invisible to loaders.
    On any exception the temp file is removed and ``path`` is untouched.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp")
    fault_check("io.write")
    handle = tmp.open(mode, **open_kwargs)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        fault_check("io.rename")
        os.replace(tmp, path)
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Best-effort durability for the rename itself."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def sha256_file(path: str | Path) -> str:
    """Streamed SHA-256 hex digest of a file."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        while chunk := handle.read(_CHUNK):
            digest.update(chunk)
    return digest.hexdigest()


def manifest_path_for(artefact: str | Path) -> Path:
    """Where the manifest of ``artefact`` lives.

    Directories keep a ``MANIFEST.json`` inside; single files get a
    ``<name>.manifest.json`` sibling.
    """
    artefact = Path(artefact)
    if artefact.is_dir():
        return artefact / MANIFEST_NAME
    return artefact.with_name(artefact.name + ".manifest.json")


def write_manifest(
    artefact: str | Path,
    files: list[Path],
    kind: str,
    extra: dict | None = None,
) -> Path:
    """Write the checksum manifest for ``files`` beside ``artefact``.

    Args:
        artefact: the artefact the manifest describes (file or directory);
            determines the manifest location via :func:`manifest_path_for`.
        files: the files to fingerprint (hashed as they are on disk now).
        kind: artefact kind tag (``"dataset"``, ``"bpr-model"``, ...);
            checked on load so a model manifest cannot vouch for a dataset.
        extra: optional extra keys merged into the manifest root.
    """
    manifest_path = manifest_path_for(artefact)
    entries = {}
    for file in files:
        file = Path(file)
        entries[file.name] = {
            "bytes": file.stat().st_size,
            "sha256": sha256_file(file),
        }
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "kind": kind,
        "files": entries,
    }
    if extra:
        manifest.update(extra)
    with atomic_write(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest_path


def verify_manifest(artefact: str | Path, kind: str | None = None) -> dict:
    """Verify every file listed in the manifest beside ``artefact``.

    Returns the parsed manifest on success. Raises:

    - :class:`ManifestMissingError` — no manifest beside the artefact;
    - :class:`ArtefactVersionError` — manifest written by an incompatible
      format version, or its ``kind`` does not match ``kind``;
    - :class:`TruncatedArtefactError` — a file is shorter than recorded;
    - :class:`ChecksumMismatchError` — byte length matches (or exceeds)
      the record but the SHA-256 does not;
    - :class:`PersistenceError` — a listed file is absent or the manifest
      itself is unreadable.
    """
    artefact = Path(artefact)
    manifest_path = manifest_path_for(artefact)
    if not manifest_path.exists():
        raise ManifestMissingError(
            f"{artefact} has no checksum manifest ({manifest_path.name}); "
            "was it written by save_dataset/save_bpr?"
        )
    fault_check("io.read")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(
            f"cannot read manifest {manifest_path}: {exc}"
        ) from exc
    version = manifest.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ArtefactVersionError(
            f"{manifest_path} has manifest_version {version!r}; this build "
            f"reads version {MANIFEST_VERSION}"
        )
    if kind is not None and manifest.get("kind") != kind:
        raise ArtefactVersionError(
            f"{manifest_path} describes a {manifest.get('kind')!r} artefact, "
            f"expected {kind!r}"
        )
    base = artefact if artefact.is_dir() else artefact.parent
    for name, entry in manifest.get("files", {}).items():
        file = base / name
        if not file.exists():
            raise PersistenceError(
                f"{artefact}: file {name!r} listed in the manifest is missing"
            )
        actual_bytes = file.stat().st_size
        if actual_bytes < int(entry["bytes"]):
            raise TruncatedArtefactError(
                f"{file} is truncated: {actual_bytes} bytes on disk, "
                f"manifest records {entry['bytes']}"
            )
        actual_sha = sha256_file(file)
        if actual_sha != entry["sha256"]:
            raise ChecksumMismatchError(
                f"{file} is corrupt: sha256 {actual_sha[:12]}... does not "
                f"match manifest {entry['sha256'][:12]}..."
            )
    return manifest

"""Deterministic retry primitives: backoff policies and deadline budgets.

Transient failures (a flaky embedder call, a file briefly locked by a
concurrent writer) should be retried with exponential backoff; systemic
failures should give up fast. Both behaviours are configured through
:class:`BackoffPolicy` and executed by :func:`retry_call`.

Everything here is deterministic: jitter is drawn from a
:func:`repro.rng.derive_rng` stream, the clock and the sleep function are
injectable, so a test (or the chaos suite) can replay the exact same
schedule from a fixed seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from repro.rng import derive_rng

T = TypeVar("T")


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with multiplicative jitter.

    The delay before attempt ``n`` (1-based; the first attempt has no
    delay) is ``min(base_delay * multiplier**(n - 1), max_delay)`` scaled
    by a jitter factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delays(self, rng: np.random.Generator) -> list[float]:
        """The full jittered delay schedule (one entry per retry)."""
        schedule = []
        for attempt in range(self.max_attempts - 1):
            raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
            factor = 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
            schedule.append(raw * factor)
        return schedule


class Deadline:
    """A per-request time budget against an injectable monotonic clock.

    ``Deadline.start(0.05)`` gives the request 50 ms; downstream code calls
    :meth:`check` at its own safe points and gets a
    :class:`DeadlineExceededError` once the budget is spent. A ``None``
    budget produces an infinite deadline so callers need no special case.
    """

    def __init__(
        self,
        budget_seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_seconds is not None and budget_seconds <= 0:
            raise ConfigurationError(
                f"deadline budget must be positive, got {budget_seconds}"
            )
        self._clock = clock
        self._budget = budget_seconds
        self._started = clock()

    @classmethod
    def start(
        cls,
        budget_seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """Start a deadline now; ``None`` budget means unlimited."""
        return cls(budget_seconds, clock)

    @property
    def budget_seconds(self) -> float | None:
        """The configured budget (``None`` for an unlimited deadline)."""
        return self._budget

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` for an unlimited deadline)."""
        if self._budget is None:
            return float("inf")
        return self._budget - self.elapsed()

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining() <= 0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self._budget:.3f}s deadline "
                f"({self.elapsed():.3f}s elapsed)"
            )


def retry_call(
    fn: Callable[[], T],
    policy: BackoffPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    seed: int | None = None,
    scope: str = "retry",
    sleep: Callable[[float], None] = time.sleep,
    deadline: Deadline | None = None,
) -> T:
    """Call ``fn`` until it succeeds, with deterministic backoff between tries.

    Args:
        fn: zero-argument callable to invoke.
        policy: backoff configuration (defaults to :class:`BackoffPolicy`).
        retry_on: exception types that trigger a retry; anything else
            propagates immediately.
        seed: seed for the jitter stream (``repro.rng`` semantics).
        scope: name mixed into the jitter stream so co-seeded callers do
            not share a schedule.
        sleep: injectable sleep (tests pass a recorder).
        deadline: optional budget; retries stop — and the *last* error is
            wrapped in :class:`RetryExhaustedError` — once it expires.

    Raises:
        RetryExhaustedError: every attempt failed (carries ``last_error``).
        DeadlineExceededError: the deadline was already spent before the
            first attempt.
    """
    policy = policy or BackoffPolicy()
    delays = policy.delays(derive_rng(seed, "resilience", scope))
    if deadline is not None:
        deadline.check("retry_call")
    last_error: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as exc:
            last_error = exc
            out_of_budget = deadline is not None and deadline.expired
            if attempt == policy.max_attempts - 1 or out_of_budget:
                raise RetryExhaustedError(attempt + 1, exc) from exc
            sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover

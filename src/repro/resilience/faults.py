"""Fault injection: deterministic failures for chaos testing.

A :class:`FaultInjector` decides, per named *site*, whether a call should
fail. Two modes compose freely:

- **probabilistic** — ``rates={"model.score": 0.3}`` fails ~30 % of calls,
  drawn from an independent :func:`repro.rng.derive_rng` stream per site,
  so a fixed seed replays the exact same failure sequence regardless of
  how other sites interleave;
- **scripted** — ``script={"io.rename": [False, True]}`` fails exactly the
  second call, then never again (precise crash-point placement).

Model/embedder faults are injected by wrapping the object
(:class:`FaultyModel`, :class:`FaultyEmbedder`). File-I/O faults use the
*ambient* injector: persistence code calls :func:`fault_check` at its
crash points, which is a no-op unless a test activated an injector via
``with injector.injecting(): ...``.
"""

from __future__ import annotations

import contextlib
from collections import Counter
from typing import Iterator, Sequence

import numpy as np

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, InjectedFaultError
from repro.resilience._ambient import fault_check, get_ambient, set_ambient
from repro.rng import derive_rng

__all__ = [
    "FaultInjector",
    "FaultyEmbedder",
    "FaultyModel",
    "SITE_EMBEDDER_ENCODE",
    "SITE_IO_READ",
    "SITE_IO_RENAME",
    "SITE_IO_WRITE",
    "SITE_MODEL_SCORE",
    "fault_check",
]

#: Canonical injection sites wired through the library.
SITE_MODEL_SCORE = "model.score"
SITE_EMBEDDER_ENCODE = "embedder.encode"
SITE_IO_WRITE = "io.write"
SITE_IO_RENAME = "io.rename"
SITE_IO_READ = "io.read"


class FaultInjector:
    """Decides which calls fail, deterministically under a fixed seed.

    Args:
        seed: seed for the probabilistic streams (``repro.rng`` semantics).
        rates: per-site failure probability in ``[0, 1]``.
        script: per-site explicit schedule; each call consumes one entry
            (``True`` = fail) and calls beyond the schedule succeed.
            A scripted site ignores its rate.
    """

    def __init__(
        self,
        seed: int | None = None,
        rates: dict[str, float] | None = None,
        script: dict[str, Sequence[bool]] | None = None,
    ) -> None:
        rates = dict(rates or {})
        for site, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate for {site!r} must be in [0, 1], got {rate}"
                )
        self.seed = seed
        self._rates = rates
        self._script = {site: list(plan) for site, plan in (script or {}).items()}
        self._cursors: Counter = Counter()
        self._streams: dict[str, np.random.Generator] = {}
        self.checked: Counter = Counter()
        """Calls per site that consulted the injector."""
        self.fired: Counter = Counter()
        """Calls per site that were made to fail."""

    def set_rate(self, site: str, rate: float) -> None:
        """(Re)configure a probabilistic site; 0 disables it."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"fault rate for {site!r} must be in [0, 1], got {rate}"
            )
        self._rates[site] = rate

    def should_fire(self, site: str) -> bool:
        """Consume one decision for ``site`` (advances schedules/streams)."""
        self.checked[site] += 1
        if site in self._script:
            cursor = self._cursors[site]
            self._cursors[site] += 1
            plan = self._script[site]
            fire = cursor < len(plan) and bool(plan[cursor])
        else:
            rate = self._rates.get(site, 0.0)
            if rate <= 0.0:
                return False
            if site not in self._streams:
                self._streams[site] = derive_rng(self.seed, "fault", site)
            fire = bool(self._streams[site].uniform() < rate)
        if fire:
            self.fired[site] += 1
        return fire

    def check(self, site: str) -> None:
        """Raise :class:`InjectedFaultError` when this call should fail."""
        if self.should_fire(site):
            raise InjectedFaultError(site)

    def reset(self) -> None:
        """Rewind schedules, streams and counters to the initial state."""
        self._cursors.clear()
        self._streams.clear()
        self.checked.clear()
        self.fired.clear()

    @contextlib.contextmanager
    def injecting(self) -> Iterator["FaultInjector"]:
        """Activate this injector for ambient :func:`fault_check` sites."""
        previous = set_ambient(self)
        try:
            yield self
        finally:
            set_ambient(previous)

    @staticmethod
    def ambient() -> "FaultInjector | None":
        """The injector currently active for ambient sites, if any."""
        return get_ambient()


class FaultyModel(Recommender):
    """A recommender wrapper that injects faults into every scoring call.

    All scoring paths (``recommend``, ``recommend_batch``, ``rank_items``)
    funnel through :meth:`score_users`, so one check covers them all.
    """

    def __init__(
        self,
        model: Recommender,
        injector: FaultInjector,
        site: str = SITE_MODEL_SCORE,
    ) -> None:
        super().__init__()
        self._model = model
        self._injector = injector
        self._site = site
        self._train = model._train
        self.exclude_seen = model.exclude_seen

    @property
    def name(self) -> str:
        """The wrapped model's name with a fault-injection marker."""
        return f"{self._model.name} [fault-injected]"

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        self._model.fit(train, dataset)

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        """Score via the wrapped model, after the injector's fault check."""
        self._injector.check(self._site)
        return self._model.score_users(user_indices)


class FaultyEmbedder:
    """A :class:`~repro.text.embedder.SentenceEmbedder` wrapper injecting
    faults into ``encode`` (``fit`` is passed through untouched)."""

    def __init__(
        self,
        embedder,
        injector: FaultInjector,
        site: str = SITE_EMBEDDER_ENCODE,
    ) -> None:
        self._embedder = embedder
        self._injector = injector
        self._site = site

    @property
    def dim(self) -> int:
        """Embedding dimensionality of the wrapped embedder."""
        return self._embedder.dim

    @property
    def is_fitted(self) -> bool:
        """Whether the wrapped embedder has been fitted."""
        return self._embedder.is_fitted

    def fit(self, corpus: Sequence[str]) -> "FaultyEmbedder":
        """Fit the wrapped embedder (never fault-injected) and return self."""
        self._embedder.fit(corpus)
        return self

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Encode via the wrapped embedder, after the fault check."""
        self._injector.check(self._site)
        return self._embedder.encode(texts)

"""Measure the parallel execution paths against their serial references.

Three surfaces are benchmarked, one per wired layer:

- **grid search** — :func:`repro.eval.grid.grid_search_bpr` with
  ``n_jobs=1`` vs ``n_jobs=2`` worker processes over the same grid; the
  winner and every grid point must be bit-identical, and the parallel
  sweep must actually be faster (the acceptance floor is the recorded
  ``speedup`` field).
- **embedding** — :class:`repro.text.HashedTfidfEmbedder` fit+encode
  over the catalogue summaries, serial vs chunked across processes,
  with the resulting matrices compared element-for-element.
- **merge pipeline** — :func:`repro.pipeline.merge.build_merged_dataset`
  serial vs parallel genre-parse/match-key stages, with the
  :class:`~repro.pipeline.merge.MergeReport` compared field-for-field.

Results are written to ``BENCH_parallel.json`` so the speedup trajectory
stays visible across PRs, next to ``BENCH_fastpath.json``.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.bpr import BPRConfig
from repro.datasets.synthetic import generate_sources
from repro.datasets.world import WorldConfig
from repro.eval.grid import grid_search_bpr
from repro.eval.split import split_readings
from repro.perf.timer import Timer, best_of
from repro.pipeline.merge import MergeConfig, build_merged_dataset
from repro.resilience.artefacts import atomic_write
from repro.text.embedder import HashedTfidfEmbedder
from repro.text.summary import MetadataSummaryBuilder

DEFAULT_OUTPUT = "BENCH_parallel.json"


@dataclass(frozen=True)
class ParallelBenchConfig:
    """Shape and worker knobs for the parallel bench.

    The defaults build a catalogue large enough that each grid cell
    trains for around a second — long enough that process start-up and
    task pickling are noise against the work they distribute, small
    enough that the whole bench finishes in about a minute.
    """

    n_books: int = 2500
    n_authors: int = 600
    n_bct_users: int = 250
    n_anobii_users: int = 1200
    min_user_readings: int = 10
    min_book_readings: int = 3
    seed: int = 7
    n_jobs: int = 2
    backend: str = "process"
    factor_grid: tuple[int, ...] = (5, 10, 20)
    learning_rate_grid: tuple[float, ...] = (0.1, 0.2)
    epochs: int = 15
    k: int = 20
    repeats: int = 5
    """Best-of repeats per measurement (the :func:`repro.perf.timer.best_of`
    defence against scheduler noise — essential on shared machines, where
    a single run can land in a CPU-stolen window)."""
    embed_repeat: int = 4
    """Concatenate the summary corpus this many times for the embedding
    measurement, so the per-text hashing work dominates pool overhead."""


def run_parallel_bench(
    config: ParallelBenchConfig | None = None,
    output_path: str | Path | None = DEFAULT_OUTPUT,
) -> dict[str, Any]:
    """Run every serial-vs-parallel measurement and (optionally) write JSON.

    Every section reports best-of-``repeats`` serial seconds, parallel
    seconds, the speedup ratio, and an ``identical`` flag confirming the
    parallel result is bit-equal to the serial one — a speedup that
    changes the answer is not a speedup.
    """
    config = config or ParallelBenchConfig()
    report: dict[str, Any] = {
        "bench": "parallel",
        "config": asdict(config),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }

    with Timer("dataset build") as build_timer:
        world = WorldConfig(
            n_books=config.n_books,
            n_authors=config.n_authors,
            n_bct_users=config.n_bct_users,
            n_anobii_users=config.n_anobii_users,
            seed=config.seed,
        )
        sources = generate_sources(world)
        merge_config = MergeConfig(
            min_user_readings=config.min_user_readings,
            min_book_readings=config.min_book_readings,
        )
        merged, _ = build_merged_dataset(
            sources.bct, sources.anobii, merge_config
        )
        split = split_readings(merged)
    report["dataset"] = {
        "books": merged.books.num_rows,
        "readings": merged.readings.num_rows,
        "build_seconds": build_timer.seconds,
    }

    report["grid"] = _bench_grid(config, split, merged)
    report["embedding"] = _bench_embedding(config, merged)
    report["merge"] = _bench_merge(config, sources, merge_config)

    if output_path is not None:
        path = Path(output_path)
        with atomic_write(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2) + "\n")
        report["output_path"] = str(path)
    return report


def _timed_best(fn, repeats: int) -> tuple[Any, float]:
    """Run ``fn`` ``repeats`` times; return its result and best seconds."""
    holder: dict[str, Any] = {}

    def call() -> None:
        holder["result"] = fn()

    seconds = best_of(call, repeats)
    return holder["result"], seconds


def _bench_grid(config, split, merged) -> dict[str, Any]:
    """Serial vs multiprocess hyper-parameter sweep over the same grid."""
    base = BPRConfig(epochs=config.epochs, seed=config.seed)

    def sweep(n_jobs: int, backend: str):
        return grid_search_bpr(
            split, merged, base,
            factor_grid=config.factor_grid,
            learning_rate_grid=config.learning_rate_grid,
            k=config.k, n_jobs=n_jobs, backend=backend,
        )

    serial, serial_seconds = _timed_best(
        lambda: sweep(1, "serial"), config.repeats
    )
    parallel, parallel_seconds = _timed_best(
        lambda: sweep(config.n_jobs, config.backend), config.repeats
    )
    return {
        "cells": len(config.factor_grid) * len(config.learning_rate_grid),
        "n_jobs": config.n_jobs,
        "backend": config.backend,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "identical": serial.points == parallel.points
        and serial.best == parallel.best,
        "best": {
            "n_factors": serial.best.n_factors,
            "learning_rate": serial.best.learning_rate,
            "val_urr": serial.best.val_urr,
        },
    }


def _bench_embedding(config, merged) -> dict[str, Any]:
    """Serial vs multiprocess tokenise-and-hash over the book summaries."""
    summaries = MetadataSummaryBuilder().build_all(merged)
    corpus = [summaries[k] for k in sorted(summaries)] * config.embed_repeat

    def embed(n_jobs: int):
        embedder = HashedTfidfEmbedder(n_jobs=n_jobs, backend=config.backend)
        return embedder.fit(corpus).encode(corpus)

    serial, serial_seconds = _timed_best(lambda: embed(1), config.repeats)
    parallel, parallel_seconds = _timed_best(
        lambda: embed(config.n_jobs), config.repeats
    )
    return {
        "texts": len(corpus),
        "n_jobs": config.n_jobs,
        "backend": config.backend,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "identical": bool(np.array_equal(serial, parallel)),
    }


def _bench_merge(config, sources, merge_config) -> dict[str, Any]:
    """Serial vs parallel merge pipeline (genre parse + match keys)."""
    (serial_data, serial_report), serial_seconds = _timed_best(
        lambda: build_merged_dataset(
            sources.bct, sources.anobii, merge_config, n_jobs=1
        ),
        config.repeats,
    )
    (parallel_data, parallel_report), parallel_seconds = _timed_best(
        lambda: build_merged_dataset(
            sources.bct, sources.anobii, merge_config,
            n_jobs=config.n_jobs, backend=config.backend,
        ),
        config.repeats,
    )
    identical = str(serial_report) == str(parallel_report) and bool(
        np.array_equal(
            serial_data.readings["book_id"], parallel_data.readings["book_id"]
        )
    )
    return {
        "n_jobs": config.n_jobs,
        "backend": config.backend,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "identical": identical,
    }

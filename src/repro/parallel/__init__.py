"""Parallel execution layer: seeded, deterministic work distribution.

One abstraction — :class:`WorkerPool` — hides serial, thread, and
process execution behind a chunked, order-stable ``map`` interface, with
per-task seed derivation (:func:`task_seeds`) done in the parent so that
seeded work is bit-identical on every backend. The three hot surfaces
wired through it:

- **grid search** — :func:`repro.eval.grid.grid_search_bpr` runs
  independent hyper-parameter cells in worker processes
  (``n_jobs=...``), merging per-cell metrics snapshots and trace spans
  back into the parent registry/tracer;
- **embedding and pipeline** — :class:`repro.text.HashedTfidfEmbedder`
  and the merge/genre stages chunk their per-book work across workers
  with order-stable reassembly;
- **serving** — :class:`repro.app.service.RecommendationService` is
  thread-safe (locked cache, lock-guarded stats and metrics), exercised
  by the ``scripts/loadgen.py`` concurrent load generator.

``python -m repro bench-parallel`` measures the speedups into
``BENCH_parallel.json``; ``tests/parallel/`` holds the serial-vs-thread-
vs-process equivalence suite. Determinism rules are documented in
``docs/determinism.md``.
"""

from repro.parallel.pool import (
    BACKENDS,
    WorkerPool,
    chunk_slices,
    parallel_map,
    resolve_n_jobs,
    shared_payload,
    task_seeds,
)

__all__ = [
    "BACKENDS",
    "WorkerPool",
    "chunk_slices",
    "parallel_map",
    "resolve_n_jobs",
    "shared_payload",
    "task_seeds",
]

"""Seeded, deterministic work distribution: the :class:`WorkerPool`.

One abstraction hides three execution backends behind a single chunked,
order-stable ``map`` interface:

- ``serial`` — a plain loop in the calling thread (the reference path);
- ``thread`` — a :class:`concurrent.futures.ThreadPoolExecutor` (right
  for GIL-releasing numpy work and I/O);
- ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`
  (right for pure-Python CPU work such as tokenisation/hashing and for
  whole grid-search cells).

Determinism contract (see ``docs/determinism.md``): results are a
function of the inputs only, never of the backend or of scheduling.
Three properties guarantee it:

1. **Order-stable reassembly** — items are split into contiguous index
   chunks and results are reassembled by chunk index, so ``pool.map(f,
   xs) == [f(x) for x in xs]`` for any pure ``f`` on every backend.
2. **Parent-side seed derivation** — :func:`task_seeds` derives one
   integer seed per task from ``(seed, scope, task count)`` *before*
   any work is dispatched, so a task's randomness does not depend on
   which worker runs it or when.
3. **Stateless workers** — the pool never shares mutable state between
   tasks; anything a worker needs travels in its (picklable) task.

The process backend prefers the cheap copy-on-write ``fork`` start
method where the platform offers it and falls back to the default
context elsewhere; either way task functions and arguments must be
picklable (module-level functions, dataclasses, numpy arrays).

Large read-only payloads that every task needs (a dataset, a split)
should travel through the pool's ``shared`` channel rather than inside
each task: the payload is delivered once per worker at start-up — free
of any copy under ``fork`` — and read back with :func:`shared_payload`.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import multiprocessing

from repro.errors import ConfigurationError
from repro.rng import derive_rng

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Recognised backend names; ``"auto"`` resolves to ``"process"`` for
#: ``n_jobs > 1`` and ``"serial"`` otherwise.
BACKENDS = ("serial", "thread", "process")

#: Ceiling applied to ``n_jobs=-1`` resolution when the scheduler offers
#: an unreasonable core count (keeps forked-pool start-up bounded).
MAX_AUTO_JOBS = 16


def resolve_n_jobs(n_jobs: int) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    Args:
        n_jobs: ``1`` for serial execution, ``N > 1`` for ``N`` workers,
            or ``-1`` for "all CPUs" (``os.cpu_count()`` capped at
            :data:`MAX_AUTO_JOBS`).

    Returns:
        A worker count ``>= 1``.

    Raises:
        ConfigurationError: for ``0``, negative values other than
            ``-1``, or non-integer input.
    """
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool):
        raise ConfigurationError(f"n_jobs must be an int, got {n_jobs!r}")
    if n_jobs == -1:
        return max(1, min(os.cpu_count() or 1, MAX_AUTO_JOBS))
    if n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be >= 1 or -1 (all CPUs), got {n_jobs}"
        )
    return n_jobs


def chunk_slices(n_items: int, n_chunks: int) -> list[slice]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous slices.

    Chunk sizes differ by at most one item and concatenating the slices
    in order reproduces ``range(n_items)`` exactly — the property the
    order-stable reassembly of :meth:`WorkerPool.map` relies on.

    Args:
        n_items: number of items to cover (``>= 0``).
        n_chunks: requested chunk count (``>= 1``); capped at ``n_items``.

    Returns:
        A list of ``slice`` objects covering ``range(n_items)`` in order.

    Raises:
        ConfigurationError: when ``n_items < 0`` or ``n_chunks < 1``.
    """
    if n_items < 0:
        raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
    if n_chunks < 1:
        raise ConfigurationError(f"n_chunks must be >= 1, got {n_chunks}")
    n_chunks = min(n_chunks, n_items)
    if n_chunks == 0:
        return []
    base, extra = divmod(n_items, n_chunks)
    slices = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def task_seeds(seed: int | None, scope: str, count: int) -> list[int]:
    """Derive ``count`` per-task integer seeds from ``(seed, scope)``.

    The derivation runs in the parent before any dispatch and depends
    only on its arguments — never on the backend, worker identity, or
    completion order — so seeded tasks produce bit-identical results on
    every backend. Task ``i`` of a ``count``-task submission always
    receives the same seed for the same ``(seed, scope, count)``.

    Args:
        seed: the experiment seed (``None`` selects the library default).
        scope: a task-family label, e.g. ``"grid.cells"`` — distinct
            scopes get independent seed streams from the same seed.
        count: number of tasks (``>= 0``).

    Returns:
        ``count`` independent seeds in ``[0, 2**31 - 1)``.

    Raises:
        ConfigurationError: when ``count`` is negative.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    rng = derive_rng(seed, "parallel", scope)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]


#: Per-worker slot for the pool's ``shared`` payload (see
#: :func:`shared_payload`). In worker processes it is populated by the
#: executor initializer; under the serial and thread backends it lives
#: in the calling process.
_WORKER_SHARED: object = None


def _init_worker(payload: object) -> None:
    """Executor initializer: stash the pool's shared payload (per worker)."""
    global _WORKER_SHARED
    _WORKER_SHARED = payload


def shared_payload() -> object:
    """The ``shared`` payload of the pool running the current task.

    Task functions call this instead of carrying a large read-only
    object (dataset, split, model) inside every task: the payload is
    delivered once per worker when the executor starts — with the
    ``fork`` start method it is inherited copy-on-write, costing no
    pickling at all — rather than once per task.

    Returns:
        Whatever was passed as ``WorkerPool(shared=...)``, or ``None``
        when the pool has no shared payload.
    """
    return _WORKER_SHARED


def _run_chunk(fn: Callable, chunk: list) -> list:
    """Apply ``fn`` to every item of one chunk (runs inside a worker)."""
    return [fn(item) for item in chunk]


def _run_star_chunk(fn: Callable, chunk: list) -> list:
    """Apply ``fn(*args)`` to every argument tuple of one chunk."""
    return [fn(*args) for args in chunk]


class WorkerPool:
    """Chunked, order-stable ``map`` over one of three backends.

    A pool is cheap to construct: the executor is created lazily on the
    first parallel call and reused across subsequent calls, so a
    multi-stage pipeline pays worker start-up once. :meth:`close` (or
    the context-manager form) tears the executor down; a closed pool
    transparently rebuilds it when mapped again.

    Args:
        n_jobs: worker count (``1`` = serial, ``-1`` = all CPUs; see
            :func:`resolve_n_jobs`).
        backend: ``"serial"``, ``"thread"``, ``"process"``, or
            ``"auto"`` (process when ``n_jobs > 1``, serial otherwise).
        chunk_size: items per submitted task; defaults to an even split
            into ``2 * n_jobs`` chunks (bounded scheduling overhead with
            some load-balancing slack).
        shared: optional read-only payload delivered to every worker at
            executor start-up and read with :func:`shared_payload`.
            Under the ``fork`` start method the delivery is a
            copy-on-write inheritance — no pickling — which is how the
            grid search ships one dataset to many cells. The serial and
            thread backends route the payload through the process-wide
            slot instead, so two simultaneously-mapping thread pools
            must not carry *different* payloads.

    Raises:
        ConfigurationError: for an unknown backend, invalid ``n_jobs``,
            or a non-positive ``chunk_size``.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        backend: str = "auto",
        chunk_size: int | None = None,
        shared: object = None,
    ) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        if backend == "auto":
            backend = "process" if self.n_jobs > 1 else "serial"
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected one of "
                f"{BACKENDS + ('auto',)}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.backend = backend if self.n_jobs > 1 else "serial"
        self.chunk_size = chunk_size
        self.shared = shared
        self._live_executor: Executor | None = None

    def __repr__(self) -> str:
        """``WorkerPool(n_jobs=…, backend=…)`` for logs and spans."""
        return (
            f"{type(self).__name__}(n_jobs={self.n_jobs}, "
            f"backend={self.backend!r})"
        )

    def __enter__(self) -> "WorkerPool":
        """Use the pool as a context manager; :meth:`close` on exit."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Tear down the executor when the ``with`` block exits."""
        self.close()

    def close(self) -> None:
        """Shut down the cached executor (idempotent).

        The pool stays usable: the next parallel call simply builds a
        fresh executor. Serial pools hold no resources and close is a
        no-op.
        """
        if self._live_executor is not None:
            self._live_executor.shutdown(wait=True)
            self._live_executor = None

    def with_shared(self, shared: object) -> "WorkerPool":
        """A new pool with the same settings but a different ``shared``.

        The fresh pool has its own (lazily created) executor, so the
        payload is captured before any worker starts — the rule that
        makes ``fork`` inheritance sound.
        """
        return type(self)(
            n_jobs=self.n_jobs,
            backend=self.backend,
            chunk_size=self.chunk_size,
            shared=shared,
        )

    # ------------------------------------------------------------------
    # mapping
    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        chunk_size: int | None = None,
    ) -> list[ResultT]:
        """``[fn(item) for item in items]``, possibly in parallel.

        Items are split into contiguous chunks, chunks run on the
        backend's workers, and results are reassembled in submission
        order — for a pure ``fn`` the result is bit-identical to the
        serial loop on every backend.

        Args:
            fn: a pure function of one item. For the process backend it
                must be picklable (a module-level function or a
                ``functools.partial`` of one).
            items: the work list (materialised once, in order).
            chunk_size: per-call override of the pool's chunking.

        Returns:
            One result per item, in the order of ``items``.

        Raises:
            Exception: the first exception raised by ``fn`` propagates
                unchanged (remaining chunks are cancelled or drained).
        """
        return self._map_chunked(_run_chunk, fn, list(items), chunk_size)

    def starmap(
        self,
        fn: Callable[..., ResultT],
        items: Iterable[tuple],
        chunk_size: int | None = None,
    ) -> list[ResultT]:
        """``[fn(*args) for args in items]`` with :meth:`map` semantics.

        Args:
            fn: a pure function; each item supplies its positional args.
            items: an iterable of argument tuples.
            chunk_size: per-call override of the pool's chunking.

        Returns:
            One result per argument tuple, in submission order.
        """
        return self._map_chunked(
            _run_star_chunk, fn, [tuple(args) for args in items], chunk_size
        )

    def map_seeded(
        self,
        fn: Callable[[ItemT, int], ResultT],
        items: Iterable[ItemT],
        seed: int | None,
        scope: str,
        chunk_size: int | None = None,
    ) -> list[ResultT]:
        """Map ``fn(item, task_seed)`` with parent-derived per-task seeds.

        Seeds come from :func:`task_seeds` — derived before dispatch,
        independent of the backend — so a stochastic-but-seeded task
        family produces bit-identical output serial or parallel.

        Args:
            fn: a function of ``(item, seed)``.
            items: the work list.
            seed: the experiment seed the task seeds derive from.
            scope: the task-family label for the seed stream.
            chunk_size: per-call override of the pool's chunking.

        Returns:
            One result per item, in the order of ``items``.
        """
        work = list(items)
        seeds = task_seeds(seed, scope, len(work))
        return self.starmap(fn, zip(work, seeds), chunk_size)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _map_chunked(
        self,
        runner: Callable[[Callable, list], list],
        fn: Callable,
        work: list,
        chunk_size: int | None,
    ) -> list:
        if self.backend == "serial" or len(work) <= 1:
            return self._run_serial(runner, fn, work)
        chunk_size = chunk_size or self.chunk_size
        if chunk_size is not None:
            n_chunks = max(1, -(-len(work) // chunk_size))
        else:
            n_chunks = 2 * self.n_jobs
        slices = chunk_slices(len(work), n_chunks)
        executor = self._executor()
        futures = [
            executor.submit(runner, fn, work[piece]) for piece in slices
        ]
        results: list = []
        for future in futures:
            results.extend(future.result())
        return results

    def _run_serial(
        self, runner: Callable[[Callable, list], list], fn: Callable, work: list
    ) -> list:
        """The in-process reference path, honouring ``shared``."""
        if self.shared is None:
            return runner(fn, work)
        global _WORKER_SHARED
        previous = _WORKER_SHARED
        _WORKER_SHARED = self.shared
        try:
            return runner(fn, work)
        finally:
            _WORKER_SHARED = previous

    def _executor(self) -> Executor:
        if self._live_executor is not None:
            return self._live_executor
        initializer = _init_worker if self.shared is not None else None
        initargs = (self.shared,) if self.shared is not None else ()
        if self.backend == "thread":
            self._live_executor = ThreadPoolExecutor(
                max_workers=self.n_jobs,
                initializer=initializer,
                initargs=initargs,
            )
        else:
            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._live_executor = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            )
        return self._live_executor


def parallel_map(
    fn: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    n_jobs: int = 1,
    backend: str = "auto",
    chunk_size: int | None = None,
) -> list[ResultT]:
    """One-shot :meth:`WorkerPool.map` without keeping a pool around.

    Args:
        fn: a pure function of one item (picklable for ``process``).
        items: the work list.
        n_jobs: worker count (``1`` = serial, ``-1`` = all CPUs).
        backend: ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``.
        chunk_size: items per submitted task (defaults to an even split).

    Returns:
        One result per item, in the order of ``items``.
    """
    with WorkerPool(
        n_jobs=n_jobs, backend=backend, chunk_size=chunk_size
    ) as pool:
        return pool.map(fn, items, chunk_size)

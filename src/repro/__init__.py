"""repro — reproduction of *Recommendation Systems in Libraries: an
Application with Heterogeneous Data Sources* (EDBT 2023).

The package rebuilds the paper's full system:

- :mod:`repro.tables` — a small columnar table engine (the relational
  substrate of the data pipeline);
- :mod:`repro.datasets` — the BCT and Anobii source schemas plus a
  calibrated synthetic world standing in for the proprietary dumps;
- :mod:`repro.pipeline` — the Section-3 integration pipeline (filters,
  genre aggregation, catalogue merge, activity floors);
- :mod:`repro.text` — the SBERT-substitute sentence embedding stack;
- :mod:`repro.core` — the recommenders: Random, Most Read, Closest Items
  (content-based) and BPR with WARP sampling (collaborative filtering);
- :mod:`repro.eval` — the Section-5 protocol: per-user temporal splits and
  the URR/NRR/P/R/FR metrics;
- :mod:`repro.experiments` — one module per table/figure of the paper;
- :mod:`repro.app` — the Reading&Machine serving path and persistence.

Quickstart::

    from repro.experiments import ExperimentContext
    from repro.experiments.config import config_for_scale
    from repro.experiments.registry import run_experiment

    context = ExperimentContext(config_for_scale("small"))
    print(run_experiment("table1", context).render())
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]

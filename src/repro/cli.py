"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiment <name>`` — run one paper experiment (table1, fig3, ...) and
  print its table/series. ``--scale small|default|paper``, ``--seed N``.
- ``suite`` — run every experiment at one scale and print all outputs
  (this regenerates the EXPERIMENTS.md numbers).
- ``generate <dir>`` — build the synthetic sources, run the merge
  pipeline, and save the merged dataset as CSV tables.
- ``serve-demo`` — fit BPR and answer a few sample recommendation
  requests through the application service.
- ``bench`` — run the fast-path perf bench (masking, rank-only
  evaluation, similarity build, cached serving) and write
  ``BENCH_fastpath.json``.
- ``health <path>`` — verify the checksum manifests of saved artefacts
  (datasets, models, and versioned model stores) and print a health
  report; exits 1 on corruption. For a model store the report lists every
  version, its manifest status, and which one ``CURRENT`` points at, and
  fails when ``CURRENT`` dangles or its version is corrupt.
- ``lifecycle <action> <store>`` — manage a versioned model store:
  ``publish`` fits BPR (warm-started from the current version when
  possible) and publishes it as the next version, ``rollback`` repoints
  ``CURRENT`` at an earlier intact version, ``list`` prints the version
  table, ``gc`` sweeps old/broken versions.
- ``metrics <path>`` — run the instrumented demo (pipeline → fit →
  evaluate → serve), write the metrics snapshot JSON to ``<path>``, and
  optionally export the span trace (``--trace out.jsonl``) plus a
  per-stage timing table. ``--deterministic`` pins the tracer/service
  clocks so the output is bit-reproducible (the golden-test setting).
- ``bench-parallel`` — run the serial-vs-parallel bench (grid search,
  embedding, merge pipeline) and write ``BENCH_parallel.json``.
- ``bench-train`` — benchmark the BPR training tiers (reference /
  fast / hogwild) and write ``BENCH_train.json``.
- ``corpus <dir>`` — generate a sharded, out-of-core synthetic corpus
  (columnar npz shards behind checksum manifests) for the paper-scale
  data path; ``--resume`` continues an interrupted write, reusing every
  shard that already verifies.
- ``bench-scale`` — run the out-of-core scale bench (sharded corpus
  generation + streaming merge, rows/sec and peak RSS per phase) and
  write ``BENCH_scale.json``.
- ``bench-serve`` — run the serving retrieval bench (exact-tier
  equivalence, recall@k-vs-latency across IVF probe widths, Zipf
  replay through the shard store) and write ``BENCH_serve.json``.
- ``check [paths]`` — run the static analyzer (determinism, layering,
  lock discipline, seed lineage, dtype tiers, lock ordering, resource
  lifetimes, exception hygiene, docs integrity) over the given paths
  (default ``src``); exits 1 when findings survive suppression. Warm
  re-runs hit the incremental cache (``--no-cache`` to bypass); output
  formats are text, JSON, and SARIF 2.1.0, and ``--explain
  <fingerprint>`` prints a finding's interprocedural witness path.

The global ``--jobs N`` flag parallelises the merge pipeline and the
grid search across N worker processes; results are bit-identical to
``--jobs 1`` (see ``docs/determinism.md``). The global
``--train-kernel``/``--train-workers`` flags select the BPR training
tier (``reference`` is bit-stable; ``fast``, optionally with workers,
trades bit-identity for throughput — see ``docs/determinism.md``). The
global ``--retrieval``/``--probe-cells`` flags select the serving
retrieval tier for ``serve-demo`` (``exact`` is bit-stable; ``ivf``
probes ``--probe-cells`` k-means cells — see ``docs/serving.md``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentContext
from repro.experiments.config import config_for_scale
from repro.experiments.registry import available_experiments, run_experiment


#: Shown under ``python -m repro --help`` so every subcommand is
#: discoverable from the top level (argparse otherwise hides them behind
#: ``<command> --help``). Keep in sync with the subparsers below — the
#: CLI test asserts each registered command appears here.
EPILOG = """\
commands:
  experiment <name>   run one paper experiment (table1, fig3, ...)
  suite               run every experiment at one scale
  generate <dir>      build + merge the synthetic sources, save as CSV
  serve-demo          fit BPR and answer sample requests
  bench               fast-path perf bench -> BENCH_fastpath.json
  bench-parallel      serial-vs-parallel bench -> BENCH_parallel.json
  bench-train         BPR training-tier bench -> BENCH_train.json
  bench-scale         out-of-core corpus + streaming-merge bench -> BENCH_scale.json
  bench-serve         serving retrieval bench (recall@k vs latency) -> BENCH_serve.json
  corpus <dir>        generate a sharded synthetic corpus (npz shards + manifests)
  health <path>       verify artefact checksum manifests (exit 1 = corrupt)
  lifecycle <action> <store>
                      versioned model store: publish | rollback | list | gc
  metrics <path>      instrumented demo -> metrics snapshot JSON
  check [paths]       run the static analyzer (exit 1 = findings)

run `python -m repro <command> --help` for per-command options.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Recommendation Systems in Libraries' "
            "(EDBT 2023)"
        ),
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scale", choices=("small", "default", "paper"), default="default",
        help="dataset scale preset (default: default)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="world seed override"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the merge pipeline and grid search "
        "(default: 1 = serial; -1 = all CPUs; results are bit-identical "
        "for every value)",
    )
    parser.add_argument(
        "--train-kernel", choices=("reference", "fast"), default=None,
        help="BPR training tier: 'reference' (float64, bit-stable default) "
        "or 'fast' (float32 pre-drawn kernel; converges to the same KPIs "
        "but is not bit-identical)",
    )
    parser.add_argument(
        "--train-workers", type=int, default=None, metavar="N",
        help="HogWild worker processes for BPR training (requires "
        "--train-kernel fast; -1 = all CPUs; see docs/determinism.md for "
        "the relaxed convergence contract)",
    )
    parser.add_argument(
        "--retrieval", choices=("exact", "ivf"), default=None,
        help="serving retrieval tier for serve-demo: 'exact' (full "
        "catalogue, bit-stable default) or 'ivf' (probe k-means cells and "
        "re-rank exactly; see docs/serving.md)",
    )
    parser.add_argument(
        "--probe-cells", type=int, default=None, metavar="N",
        help="IVF probe width for --retrieval ivf (default: half the "
        "cells; >= the cell count serves exactly, bit for bit)",
    )
    parser.add_argument(
        "--output", default=None, metavar="DIR",
        help="also write each experiment's rendered output to DIR/<name>.txt",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("name", choices=available_experiments())

    sub.add_parser("suite", help="run every experiment")

    generate = sub.add_parser(
        "generate", help="generate and save the merged dataset"
    )
    generate.add_argument("directory")

    sub.add_parser("serve-demo", help="fit BPR and serve sample requests")

    bench = sub.add_parser(
        "bench", help="run the fast-path perf bench and write JSON"
    )
    bench.add_argument(
        "--bench-output", default=None, metavar="PATH",
        help="where to write the bench JSON (default: BENCH_fastpath.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=None,
        help="best-of repeats per kernel (default: 5)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small dataset for smoke runs (not representative)",
    )

    bench_parallel = sub.add_parser(
        "bench-parallel",
        help="run the serial-vs-parallel bench and write JSON",
    )
    bench_parallel.add_argument(
        "--bench-output", default=None, metavar="PATH",
        help="where to write the bench JSON (default: BENCH_parallel.json)",
    )
    bench_parallel.add_argument(
        "--repeats", type=int, default=None,
        help="best-of repeats per measurement (default: 5)",
    )
    bench_parallel.add_argument(
        "--quick", action="store_true",
        help="small dataset for smoke runs (not representative)",
    )

    bench_train = sub.add_parser(
        "bench-train",
        help="benchmark the BPR training tiers and write JSON",
    )
    bench_train.add_argument(
        "--bench-output", default=None, metavar="PATH",
        help="where to write the bench JSON (default: BENCH_train.json)",
    )
    bench_train.add_argument(
        "--repeats", type=int, default=None,
        help="fit repeats per tier (default: 3)",
    )
    bench_train.add_argument(
        "--quick", action="store_true",
        help="small dataset for smoke runs (not representative)",
    )

    bench_scale = sub.add_parser(
        "bench-scale",
        help="run the out-of-core scale bench and write JSON",
    )
    bench_scale.add_argument(
        "--bench-output", default=None, metavar="PATH",
        help="where to write the bench JSON (default: BENCH_scale.json)",
    )
    bench_scale.add_argument(
        "--quick", action="store_true",
        help="small corpus for smoke runs; also measures the in-memory "
        "reference merge for the RSS comparison",
    )

    bench_serve = sub.add_parser(
        "bench-serve",
        help="run the serving retrieval bench and write JSON",
    )
    bench_serve.add_argument(
        "--bench-output", default=None, metavar="PATH",
        help="where to write the bench JSON (default: BENCH_serve.json)",
    )
    bench_serve.add_argument(
        "--quick", action="store_true",
        help="small catalogue for smoke runs (not representative)",
    )

    corpus = sub.add_parser(
        "corpus",
        help="generate a sharded synthetic corpus (npz shards + manifests)",
    )
    corpus.add_argument("directory", help="where to write the corpus")
    corpus.add_argument(
        "--loans", type=int, default=None, metavar="N",
        help="number of BCT loan events (default: 100000)",
    )
    corpus.add_argument(
        "--ratings", type=int, default=None, metavar="N",
        help="number of Anobii rating events (default: 100000)",
    )
    corpus.add_argument(
        "--books", type=int, default=None, metavar="N",
        help="catalogue size (default: 2000)",
    )
    corpus.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shards per event stream (default: 8; row-identical for "
        "every value)",
    )
    corpus.add_argument(
        "--rows-per-chunk", type=int, default=None, metavar="N",
        help="rows per deterministic generation chunk (default: 65536)",
    )
    corpus.add_argument(
        "--resume", action="store_true",
        help="keep shards that already verify against their manifests "
        "and only regenerate the rest",
    )

    health = sub.add_parser(
        "health",
        help="verify artefact checksums and print a health report",
    )
    health.add_argument(
        "target",
        help="artefact to check: a dataset/model directory, a model store, "
        "or a file",
    )

    lifecycle = sub.add_parser(
        "lifecycle",
        help="manage a versioned model store (publish/rollback/list/gc)",
    )
    lifecycle.add_argument(
        "action", choices=("publish", "rollback", "list", "gc"),
        help="publish: fit + publish the next version (warm-started from "
        "CURRENT when possible); rollback: repoint CURRENT at an earlier "
        "intact version; list: print the version table; gc: sweep "
        "old/broken versions",
    )
    lifecycle.add_argument("store", help="model store directory")
    lifecycle.add_argument(
        "--to", default=None, metavar="VERSION",
        help="rollback target version name (default: newest intact "
        "version older than CURRENT)",
    )
    lifecycle.add_argument(
        "--keep", type=int, default=None, metavar="N",
        help="intact versions gc keeps besides CURRENT (default: 2)",
    )
    lifecycle.add_argument(
        "--cold", action="store_true",
        help="publish without warm-starting from the current version",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run the instrumented demo and write a metrics snapshot",
    )
    metrics.add_argument(
        "snapshot", help="where to write the metrics snapshot JSON"
    )
    metrics.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also export the span trace as JSONL and print a stage table",
    )
    metrics.add_argument(
        "--deterministic", action="store_true",
        help="pin tracer/service clocks for bit-reproducible output",
    )

    check = sub.add_parser(
        "check",
        help="run the static analyzer over source paths",
    )
    check.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    check.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    check.add_argument(
        "--rule", action="append", default=None, metavar="RULE-ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    check.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of grandfathered findings to ignore",
    )
    check.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write surviving findings as a new baseline and exit 0",
    )
    check.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root (default: auto-detected from the first path)",
    )
    check.add_argument(
        "--explain", default=None, metavar="FINGERPRINT",
        help="print the witness path of one finding (any unique "
        "fingerprint prefix) instead of the report",
    )
    check.add_argument(
        "--no-cache", action="store_true",
        help="bypass the incremental cache under .cache/repro-check/",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "health":
        return _health(args.target)
    if args.command == "lifecycle":
        return _lifecycle(args)
    if args.command == "metrics":
        return _metrics(args)
    if args.command == "bench-parallel":
        return _bench_parallel(args)
    if args.command == "bench-train":
        return _bench_train(args)
    if args.command == "bench-scale":
        return _bench_scale(args)
    if args.command == "bench-serve":
        return _bench_serve(args)
    if args.command == "corpus":
        return _corpus(args)
    if args.command == "check":
        return _check(args)
    config = config_for_scale(
        args.scale, seed=args.seed, n_jobs=args.jobs,
        train_kernel=args.train_kernel, train_workers=args.train_workers,
    )
    context = ExperimentContext(config)
    if args.command == "experiment":
        result = run_experiment(args.name, context)
        _print_result(result)
        if args.output:
            _write_result(args.output, args.name, result)
    elif args.command == "suite":
        for name in available_experiments():
            started = time.perf_counter()
            result = run_experiment(name, context)
            elapsed = time.perf_counter() - started
            print(f"===== {name} ({elapsed:.1f}s) =====")
            _print_result(result)
            print()
            if args.output:
                _write_result(args.output, name, result)
    elif args.command == "generate":
        _generate(context, args.directory)
    elif args.command == "serve-demo":
        _serve_demo(context, args)
    elif args.command == "bench":
        _bench(args)
    return 0


def _print_result(result: object) -> None:
    print(_render_result(result))


def _render_result(result: object) -> str:
    if isinstance(result, tuple):
        return "\n".join(item.render() for item in result)  # type: ignore[attr-defined]
    return result.render()  # type: ignore[attr-defined]


def _write_result(directory: str, name: str, result: object) -> None:
    from pathlib import Path

    from repro.resilience.artefacts import atomic_write

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"{name}.txt"
    with atomic_write(path, "w", encoding="utf-8") as handle:
        handle.write(_render_result(result) + "\n")
    print(f"(written to {path})")


def _generate(context: ExperimentContext, directory: str) -> None:
    from repro.app.persistence import save_dataset

    merged = context.merged
    print(context.merge_report)
    save_dataset(merged, directory)
    print(
        f"saved merged dataset to {directory}: {merged.n_books} books, "
        f"{merged.n_users} users, {merged.n_readings} readings"
    )


def _serve_demo(
    context: ExperimentContext, args: "argparse.Namespace | None" = None
) -> None:
    from repro.app.service import RecommendationRequest, RecommendationService

    service_kwargs = {}
    if args is not None and args.retrieval is not None:
        service_kwargs["retrieval"] = args.retrieval
    if args is not None and args.probe_cells is not None:
        service_kwargs["probe_cells"] = args.probe_cells
    model = context.model("bpr")
    service = RecommendationService(
        model, context.split.train, context.merged, **service_kwargs
    )
    users = context.merged.bct_user_ids[:3]
    for user_id in users:
        books = service.recommend(RecommendationRequest(user_id=user_id, k=5))
        print(f"user {user_id}:")
        for book in books:
            print(f"  {book.rank:2d}. {book.title} — {book.author}")
    retrieval = service.health()["retrieval"]
    tier = retrieval["active"]
    if tier == "ivf":
        tier += (
            f" ({retrieval['probe_cells']}/{retrieval['cells']} cells probed)"
        )
    print(
        f"served {service.stats.requests} requests via {tier} retrieval, "
        f"mean latency {service.stats.mean_seconds * 1000:.1f} ms"
    )


def _health(target: str) -> int:
    """Verify artefact manifests under ``target``; 0 = healthy, 1 = not."""
    from pathlib import Path

    from repro.errors import PersistenceError
    from repro.resilience.artefacts import MANIFEST_NAME, verify_manifest

    from repro.app.lifecycle import ModelStore

    root = Path(target)
    if not root.exists():
        print(f"health: {root} does not exist")
        return 1
    if ModelStore.is_store(root):
        return _health_store(ModelStore(root))
    checks: list[tuple[str, Path]] = []
    if root.is_file():
        checks.append((root.name, root))
    else:
        if (root / MANIFEST_NAME).exists():
            checks.append((f"{root.name}/", root))
        for manifest in sorted(root.glob("*.manifest.json")):
            artefact = manifest.with_name(manifest.name[: -len(".manifest.json")])
            checks.append((artefact.name, artefact))
        for sub in sorted(p for p in root.iterdir() if p.is_dir()):
            if (sub / MANIFEST_NAME).exists():
                checks.append((f"{sub.name}/", sub))
    print(f"artefact health report for {root}")
    if not checks:
        print("  no manifested artefacts found")
        print("status: unknown")
        return 1
    failures = 0
    for label, artefact in checks:
        try:
            manifest = verify_manifest(artefact)
        except PersistenceError as exc:
            failures += 1
            print(f"  {label:<24} FAIL  {type(exc).__name__}: {exc}")
        else:
            kind = manifest.get("kind", "artefact")
            n_files = len(manifest.get("files", {}))
            print(f"  {label:<24} ok    {kind}, {n_files} file(s) verified")
    if failures:
        print(f"status: corrupt ({failures} of {len(checks)} artefacts failed)")
        return 1
    print(f"status: ok ({len(checks)} artefact(s) verified)")
    return 0


def _health_store(store) -> int:
    """Report a model store's versions and ``CURRENT`` pointer.

    Exit 0 only when ``CURRENT`` resolves to an intact version. Broken
    *non-current* versions are listed (they are ``lifecycle gc`` fodder)
    but do not fail the store.
    """
    report = store.health_report()
    print(f"model store health report for {report['root']}")
    if not report["versions"]:
        print("  no versions published")
    for version in report["versions"]:
        marker = "  <- CURRENT" if version["name"] == report["current"] else ""
        state = "ok   " if version["status"] == "ok" else "FAIL "
        detail = "" if version["status"] == "ok" else f" {version['status']}"
        print(f"  {version['name']:<12} {state}{detail}{marker}")
    if report["current"] is None:
        print("  CURRENT: (unpublished)")
    else:
        print(f"  CURRENT: {report['current']} [{report['current_status']}]")
    print(f"status: {report['status']}")
    return 0 if report["status"] == "ok" else 1


def _lifecycle(args: argparse.Namespace) -> int:
    """Drive the versioned model store; exit 1 on lifecycle failures."""
    from repro.app.lifecycle import DEFAULT_GC_KEEP, ModelStore
    from repro.errors import PersistenceError, ReproError

    store = ModelStore(args.store)
    try:
        if args.action == "publish":
            return _lifecycle_publish(args, store)
        if args.action == "rollback":
            target = store.rollback(args.to)
            print(f"rolled back: CURRENT -> {target.name}")
            return 0
        if args.action == "gc":
            keep = args.keep if args.keep is not None else DEFAULT_GC_KEEP
            removed = store.gc(keep=keep)
            names = ", ".join(v.name for v in removed) if removed else "nothing"
            print(f"gc removed: {names} (kept {keep} + CURRENT)")
            return 0
    except (PersistenceError, ReproError) as exc:
        print(f"lifecycle: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    # list
    report = store.health_report()
    if not report["versions"]:
        print(f"model store {args.store}: no versions published")
        return 0
    print(f"model store {args.store}")
    for version in report["versions"]:
        marker = "  <- CURRENT" if version["name"] == report["current"] else ""
        print(f"  {version['name']:<12} {version['status']}{marker}")
    return 0


def _lifecycle_publish(args: argparse.Namespace, store) -> int:
    """Fit BPR at the configured scale and publish it as the next version."""
    from repro.errors import PersistenceError

    config = config_for_scale(
        args.scale, seed=args.seed, n_jobs=args.jobs,
        train_kernel=args.train_kernel, train_workers=args.train_workers,
    )
    context = ExperimentContext(config)
    warm = None
    if not args.cold:
        try:
            warm, _ = store.load()
        except PersistenceError:
            warm = None  # first publish, or broken current: cold start
        if warm is not None and warm.config.n_factors != config.bpr.n_factors:
            print(
                f"warm start skipped: current version has "
                f"{warm.config.n_factors} factors, config wants "
                f"{config.bpr.n_factors}"
            )
            warm = None
    from repro.core.bpr import BPR

    model = BPR(config.bpr)
    train = context.split.train
    model.fit(train, context.merged, warm_start=warm)
    version = store.publish(model, train)
    mode = "warm-started" if warm is not None else "cold"
    print(
        f"published {version.name} ({mode}): "
        f"{train.n_users} users x {train.n_items} items, "
        f"CURRENT -> {version.name}"
    )
    return 0


def _check(args: argparse.Namespace) -> int:
    """Run the static analyzer; 0 = clean, 1 = findings, 2 = usage error."""
    from pathlib import Path

    from repro.analysis import run_check, write_baseline
    from repro.analysis.cache import CACHE_DIRNAME
    from repro.analysis.runner import detect_root, explain_finding

    path_list = [Path(p) for p in args.paths]
    resolved_root = (
        Path(args.root).resolve() if args.root else detect_root(path_list)
    )
    cache_dir = None if args.no_cache else resolved_root / CACHE_DIRNAME
    try:
        result = run_check(
            args.paths,
            root=resolved_root,
            rule_ids=args.rule,
            baseline=args.baseline,
            cache_dir=cache_dir,
        )
    except ValueError as exc:
        print(f"check: {exc}", file=sys.stderr)
        return 2
    if args.explain:
        explanation = explain_finding(result, args.explain)
        if explanation is None:
            print(
                f"check: no finding matches fingerprint {args.explain!r}",
                file=sys.stderr,
            )
            return 2
        print(explanation)
        return 0
    if args.write_baseline:
        write_baseline(result.all_findings, Path(args.write_baseline))
        print(
            f"baseline written to {args.write_baseline} "
            f"({len(result.all_findings)} finding(s))"
        )
        return 0
    if args.format == "json":
        print(result.render_json())
    elif args.format == "sarif":
        print(result.render_sarif())
    else:
        print(result.render_text())
    return 0 if result.ok else 1


def _metrics(args: argparse.Namespace) -> int:
    """Run the instrumented demo; write snapshot JSON and optional trace."""
    import json

    from repro.obs.demo import run_instrumented_demo
    from repro.obs.report import render_stage_table
    from repro.resilience.artefacts import atomic_write

    kwargs = {"deterministic": args.deterministic}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    run = run_instrumented_demo(**kwargs)

    snapshot = run.metrics.snapshot()
    with atomic_write(args.snapshot) as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"metrics snapshot written to {args.snapshot}")
    print(
        f"  {len(snapshot['counters'])} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms"
    )
    if args.trace:
        run.tracer.export_jsonl(args.trace)
        spans = [span.as_dict() for span in run.tracer.spans]
        print(f"trace ({len(spans)} spans) written to {args.trace}")
        print(render_stage_table(spans))
    print(f"service health: {run.health['status']}")
    return 0


def _bench(args: argparse.Namespace) -> None:
    from dataclasses import replace as dc_replace

    from repro.perf.fastpath import (
        DEFAULT_OUTPUT,
        FastpathBenchConfig,
        run_fastpath_bench,
    )

    config = FastpathBenchConfig()
    if args.quick:
        config = dc_replace(
            config,
            n_books=600, n_authors=200, n_bct_users=120, n_anobii_users=500,
            repeats=2, serve_requests=60,
        )
    if args.repeats is not None:
        config = dc_replace(config, repeats=args.repeats)
    report = run_fastpath_bench(
        config, output_path=args.bench_output or DEFAULT_OUTPUT
    )
    print(render_bench_report(report))


def _bench_parallel(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.parallel.bench import (
        DEFAULT_OUTPUT,
        ParallelBenchConfig,
        run_parallel_bench,
    )

    config = ParallelBenchConfig()
    if args.quick:
        config = dc_replace(
            config,
            n_books=600, n_authors=200, n_bct_users=120, n_anobii_users=500,
            epochs=5, repeats=2, embed_repeat=2,
        )
    if args.repeats is not None:
        config = dc_replace(config, repeats=args.repeats)
    if args.jobs is not None:
        config = dc_replace(config, n_jobs=args.jobs)
    report = run_parallel_bench(
        config, output_path=args.bench_output or DEFAULT_OUTPUT
    )
    print(render_parallel_bench_report(report))
    return 0


def _bench_train(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.perf.trainbench import (
        DEFAULT_OUTPUT,
        TrainBenchConfig,
        run_train_bench,
    )

    config = TrainBenchConfig()
    if args.quick:
        config = dc_replace(
            config,
            n_books=600, n_authors=200, n_bct_users=120, n_anobii_users=500,
            epochs=4, repeats=1,
        )
    if args.repeats is not None:
        config = dc_replace(config, repeats=args.repeats)
    if args.train_workers is not None:
        config = dc_replace(config, workers=args.train_workers)
    report = run_train_bench(
        config, output_path=args.bench_output or DEFAULT_OUTPUT
    )
    print(render_train_bench_report(report))
    return 0


def _bench_scale(args: argparse.Namespace) -> int:
    from repro.perf.scalebench import (
        DEFAULT_OUTPUT,
        ScaleBenchConfig,
        render_scale_report,
        run_scale_bench,
    )

    config = ScaleBenchConfig.quick() if args.quick else ScaleBenchConfig()
    report = run_scale_bench(
        config, output_path=args.bench_output or DEFAULT_OUTPUT
    )
    print(render_scale_report(report))
    return 0


def _bench_serve(args: argparse.Namespace) -> int:
    from repro.perf.servebench import (
        DEFAULT_OUTPUT,
        ServeBenchConfig,
        render_serve_report,
        run_serve_bench,
    )

    config = ServeBenchConfig.quick() if args.quick else ServeBenchConfig()
    report = run_serve_bench(
        config, output_path=args.bench_output or DEFAULT_OUTPUT
    )
    print(render_serve_report(report))
    return 0


def _corpus(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.datasets.corpus import CorpusConfig, ShardedCorpusWriter

    config = CorpusConfig()
    if args.seed is not None:
        config = dc_replace(config, seed=args.seed)
    if args.loans is not None:
        config = dc_replace(config, n_loans=args.loans)
    if args.ratings is not None:
        config = dc_replace(config, n_ratings=args.ratings)
    if args.books is not None:
        config = dc_replace(config, n_books=args.books)
    if args.shards is not None:
        config = dc_replace(config, n_shards=args.shards)
    if args.rows_per_chunk is not None:
        config = dc_replace(config, rows_per_chunk=args.rows_per_chunk)
    corpus = ShardedCorpusWriter(args.directory, config).write(
        resume=args.resume
    )
    meta = corpus.meta
    print(
        f"corpus written to {args.directory}: "
        f"{meta['n_loans']} loans in {meta['loan_shards']} shard(s), "
        f"{meta['n_ratings']} ratings in {meta['rating_shards']} shard(s)"
    )
    print(f"verify with: python -m repro health {args.directory}")
    return 0


def render_train_bench_report(report: dict) -> str:
    """A human-readable summary of a training-tier bench report."""
    dataset = report["dataset"]
    lines = [
        "train bench "
        f"({dataset['books']} books x {dataset['readings']} readings, "
        f"{dataset['train_pairs']} train pairs, "
        f"{report['config']['epochs']} epochs)"
    ]
    for name, tier in report["tiers"].items():
        if "skipped" in tier:
            lines.append(f"  {name:<10} skipped: {tier['skipped']}")
            continue
        lines.append(
            f"  {name:<10} {tier['best_samples_per_second']:10.0f} pairs/s "
            f"({tier['speedup_vs_reference']:.2f}x vs reference, "
            f"val URR {tier['val_urr']:.3f}, "
            f"delta {tier['val_urr_delta_vs_reference']:+.3f})"
        )
    if "output_path" in report:
        lines.append(f"  written to {report['output_path']}")
    return "\n".join(lines)


def render_parallel_bench_report(report: dict) -> str:
    """A human-readable summary of a parallel bench report."""
    lines = [
        f"parallel bench (n_jobs={report['config']['n_jobs']}, "
        f"backend={report['config']['backend']}, "
        f"{report['dataset']['books']} books x "
        f"{report['dataset']['readings']} readings)"
    ]
    for section in ("grid", "embedding", "merge"):
        data = report[section]
        identical = "identical" if data["identical"] else "MISMATCH"
        lines.append(
            f"  {section:<10} {data['serial_seconds']:7.2f} s -> "
            f"{data['parallel_seconds']:7.2f} s "
            f"({data['speedup']:.2f}x, {identical})"
        )
    if "output_path" in report:
        lines.append(f"  written to {report['output_path']}")
    return "\n".join(lines)


def render_bench_report(report: dict) -> str:
    """A human-readable summary of a fast-path bench report."""
    dataset = report["dataset"]
    masking = report["masking"]
    evaluation = report["evaluation"]
    similarity = report["similarity"]
    serving = report["serving"]
    lines = [
        "fast-path bench "
        f"({dataset['n_users']} users x {dataset['n_items']} items, "
        f"{dataset['n_test_users']} eval users)",
        f"  masking     {masking['reference_seconds'] * 1e3:8.2f} ms -> "
        f"{masking['fast_seconds'] * 1e3:8.2f} ms "
        f"({masking['speedup']:.1f}x)",
        f"  evaluation  {evaluation['argsort_seconds'] * 1e3:8.2f} ms -> "
        f"{evaluation['count_seconds'] * 1e3:8.2f} ms "
        f"({evaluation['speedup']:.1f}x)",
        f"  similarity  {similarity['dense_build_seconds'] * 1e3:8.2f} ms dense, "
        f"{similarity['blockwise_float32_build_seconds'] * 1e3:.2f} ms "
        f"blockwise f32; memory {similarity['dense_nbytes'] / 1e6:.1f} MB -> "
        f"{similarity['truncated_sparse_nbytes'] / 1e6:.1f} MB "
        f"({similarity['memory_ratio']:.1f}x smaller, "
        f"top-{similarity['top_n_neighbors']})",
        f"  serving     {serving['uncached_seconds_per_request'] * 1e3:8.3f} ms -> "
        f"{serving['cached_seconds_per_request'] * 1e3:8.3f} ms/request cached "
        f"({serving['cache_speedup']:.0f}x), batch "
        f"{serving['batch_seconds_per_request'] * 1e3:.3f} ms/request",
    ]
    if "output_path" in report:
        lines.append(f"  written to {report['output_path']}")
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())

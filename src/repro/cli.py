"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiment <name>`` — run one paper experiment (table1, fig3, ...) and
  print its table/series. ``--scale small|default|paper``, ``--seed N``.
- ``suite`` — run every experiment at one scale and print all outputs
  (this regenerates the EXPERIMENTS.md numbers).
- ``generate <dir>`` — build the synthetic sources, run the merge
  pipeline, and save the merged dataset as CSV tables.
- ``serve-demo`` — fit BPR and answer a few sample recommendation
  requests through the application service.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentContext
from repro.experiments.config import config_for_scale
from repro.experiments.registry import available_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Recommendation Systems in Libraries' "
            "(EDBT 2023)"
        ),
    )
    parser.add_argument(
        "--scale", choices=("small", "default", "paper"), default="default",
        help="dataset scale preset (default: default)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="world seed override"
    )
    parser.add_argument(
        "--output", default=None, metavar="DIR",
        help="also write each experiment's rendered output to DIR/<name>.txt",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("name", choices=available_experiments())

    sub.add_parser("suite", help="run every experiment")

    generate = sub.add_parser(
        "generate", help="generate and save the merged dataset"
    )
    generate.add_argument("directory")

    sub.add_parser("serve-demo", help="fit BPR and serve sample requests")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = config_for_scale(args.scale, seed=args.seed)
    context = ExperimentContext(config)
    if args.command == "experiment":
        result = run_experiment(args.name, context)
        _print_result(result)
        if args.output:
            _write_result(args.output, args.name, result)
    elif args.command == "suite":
        for name in available_experiments():
            started = time.perf_counter()
            result = run_experiment(name, context)
            elapsed = time.perf_counter() - started
            print(f"===== {name} ({elapsed:.1f}s) =====")
            _print_result(result)
            print()
            if args.output:
                _write_result(args.output, name, result)
    elif args.command == "generate":
        _generate(context, args.directory)
    elif args.command == "serve-demo":
        _serve_demo(context)
    return 0


def _print_result(result: object) -> None:
    print(_render_result(result))


def _render_result(result: object) -> str:
    if isinstance(result, tuple):
        return "\n".join(item.render() for item in result)  # type: ignore[attr-defined]
    return result.render()  # type: ignore[attr-defined]


def _write_result(directory: str, name: str, result: object) -> None:
    from pathlib import Path

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"{name}.txt"
    path.write_text(_render_result(result) + "\n", encoding="utf-8")
    print(f"(written to {path})")


def _generate(context: ExperimentContext, directory: str) -> None:
    from repro.app.persistence import save_dataset

    merged = context.merged
    print(context.merge_report)
    save_dataset(merged, directory)
    print(
        f"saved merged dataset to {directory}: {merged.n_books} books, "
        f"{merged.n_users} users, {merged.n_readings} readings"
    )


def _serve_demo(context: ExperimentContext) -> None:
    from repro.app.service import RecommendationRequest, RecommendationService

    model = context.model("bpr")
    service = RecommendationService(model, context.split.train, context.merged)
    users = context.merged.bct_user_ids[:3]
    for user_id in users:
        books = service.recommend(RecommendationRequest(user_id=user_id, k=5))
        print(f"user {user_id}:")
        for book in books:
            print(f"  {book.rank:2d}. {book.title} — {book.author}")
    print(
        f"served {service.stats.requests} requests, "
        f"mean latency {service.stats.mean_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    sys.exit(main())

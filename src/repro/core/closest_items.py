"""The Closest Items content-based recommender (paper Section 4, Eq. 1).

For each unread book ``b``, its score is the *average* cosine similarity
between its metadata-summary embedding and the embeddings of the books the
user has already read:

    s_b = (1 / |N_u|) * sum_{i in N_u} s_{b,i}

The metadata summary is a configurable concatenation of title, author,
plot, genres, and keywords (Section 6.2 ablates every combination; author +
genres wins). Embeddings come from any :class:`SentenceEmbedder`; the
default is the SBERT substitute :class:`HashedTfidfEmbedder`.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, NotFittedError
from repro.text.embedder import HashedTfidfEmbedder, SentenceEmbedder
from repro.text.similarity import cosine_similarity_matrix
from repro.text.summary import MetadataSummaryBuilder


class ClosestItems(Recommender):
    """Content-based recommendation by average similarity to the history.

    Args:
        fields: metadata fields forming the summary. Defaults to the
            paper's best combination, ``("author", "genres")``.
        embedder: a fitted-on-demand sentence embedder. Defaults to a fresh
            :class:`HashedTfidfEmbedder`.
    """

    exclude_seen = True

    def __init__(
        self,
        fields: tuple[str, ...] = ("author", "genres"),
        embedder: SentenceEmbedder | None = None,
    ) -> None:
        super().__init__()
        self.summary_builder = MetadataSummaryBuilder(fields)
        self.embedder = embedder or HashedTfidfEmbedder()
        self._similarity: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "Closest Items"

    @property
    def fields(self) -> tuple[str, ...]:
        return self.summary_builder.fields

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        if dataset is None:
            raise ConfigurationError(
                "ClosestItems needs the merged dataset's metadata; "
                "pass dataset= to fit()"
            )
        summaries_by_book = self.summary_builder.build_all(dataset)
        try:
            summaries = [
                summaries_by_book[int(train.items.id_of(i))]
                for i in range(train.n_items)
            ]
        except KeyError as exc:
            raise ConfigurationError(
                f"training matrix contains a book without metadata: {exc}"
            ) from exc
        self.embedder.fit(summaries)
        embeddings = self.embedder.encode(summaries)
        self._similarity = cosine_similarity_matrix(embeddings)
        # A book is trivially most similar to itself; zero the diagonal so
        # self-similarity never contributes to Eq. (1).
        np.fill_diagonal(self._similarity, 0.0)

    @property
    def similarity(self) -> np.ndarray:
        """The item-item cosine similarity matrix (diagonal zeroed)."""
        if self._similarity is None:
            raise NotFittedError(self.name)
        return self._similarity

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        similarity = self.similarity
        train = self.train
        scores = np.zeros((len(user_indices), train.n_items), dtype=np.float64)
        for row, user_index in enumerate(np.asarray(user_indices)):
            history = train.user_items(int(user_index))
            if history.size:
                scores[row] = similarity[:, history].mean(axis=1)
        return scores

    def most_similar(self, item_index: int, k: int = 10) -> list[tuple[int, float]]:
        """The ``k`` catalogue items most similar to one item (diagnostics)."""
        row = self.similarity[item_index]
        top = np.argsort(-row, kind="stable")[:k]
        return [(int(i), float(row[i])) for i in top]

"""The Closest Items content-based recommender (paper Section 4, Eq. 1).

For each unread book ``b``, its score is the *average* cosine similarity
between its metadata-summary embedding and the embeddings of the books the
user has already read:

    s_b = (1 / |N_u|) * sum_{i in N_u} s_{b,i}

The metadata summary is a configurable concatenation of title, author,
plot, genres, and keywords (Section 6.2 ablates every combination; author +
genres wins). Embeddings come from any :class:`SentenceEmbedder`; the
default is the SBERT substitute :class:`HashedTfidfEmbedder`.

Serving-scale controls: ``block_size`` and ``dtype`` bound the similarity
build's working set (see :func:`~repro.text.similarity.cosine_similarity_matrix`),
and ``top_n_neighbors`` switches to a truncated sparse similarity — each
item keeps only its ``n`` strongest neighbours in a CSR matrix, and Eq. (1)
becomes one sparse matmul against the chunk's user-history indicator rows
instead of a per-user ``similarity[:, history].mean`` loop.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError, NotFittedError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, start_span
from repro.text.embedder import HashedTfidfEmbedder, SentenceEmbedder
from repro.text.similarity import (
    cosine_similarity_matrix,
    truncated_similarity_matrix,
)
from repro.text.summary import MetadataSummaryBuilder


class ClosestItems(Recommender):
    """Content-based recommendation by average similarity to the history.

    Args:
        fields: metadata fields forming the summary. Defaults to the
            paper's best combination, ``("author", "genres")``.
        embedder: a fitted-on-demand sentence embedder. Defaults to a fresh
            :class:`HashedTfidfEmbedder`.
        top_n_neighbors: when set, keep only each item's ``n`` strongest
            similarities in a CSR matrix (O(B·n) memory instead of the
            O(B²) dense matrix) and score via sparse matmul. ``None``
            (the default) keeps the paper's exact dense similarity.
        block_size: row-block size for the similarity build; ``None``
            computes it in one pass.
        dtype: similarity precision (``np.float64`` default;
            ``np.float32`` halves memory).
        tracer: optional :class:`~repro.obs.trace.Tracer`; when set, the
            fit emits ``closest_items.summaries`` / ``.embed`` /
            ``.similarity`` spans. ``None`` (default) is allocation-free.
        metrics: optional registry recording the fitted similarity's
            footprint (``closest_items.similarity_nbytes`` gauge).
    """

    exclude_seen = True

    def __init__(
        self,
        fields: tuple[str, ...] = ("author", "genres"),
        embedder: SentenceEmbedder | None = None,
        top_n_neighbors: int | None = None,
        block_size: int | None = None,
        dtype: np.dtype | type = np.float64,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__()
        if top_n_neighbors is not None and top_n_neighbors < 1:
            raise ConfigurationError(
                f"top_n_neighbors must be >= 1 or None, got {top_n_neighbors}"
            )
        self.summary_builder = MetadataSummaryBuilder(fields)
        self.embedder = embedder or HashedTfidfEmbedder()
        self.top_n_neighbors = top_n_neighbors
        self.block_size = block_size
        self.dtype = dtype
        self.tracer = tracer
        self.metrics = metrics
        self._similarity: np.ndarray | None = None
        self._similarity_sparse: sparse.csr_matrix | None = None

    @property
    def name(self) -> str:
        return "Closest Items"

    @property
    def fields(self) -> tuple[str, ...]:
        return self.summary_builder.fields

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        if dataset is None:
            raise ConfigurationError(
                "ClosestItems needs the merged dataset's metadata; "
                "pass dataset= to fit()"
            )
        with start_span(
            self.tracer, "closest_items.summaries", n_items=train.n_items
        ):
            summaries_by_book = self.summary_builder.build_all(dataset)
            try:
                summaries = [
                    summaries_by_book[int(train.items.id_of(i))]
                    for i in range(train.n_items)
                ]
            except KeyError as exc:
                raise ConfigurationError(
                    f"training matrix contains a book without metadata: {exc}"
                ) from exc
        with start_span(
            self.tracer, "closest_items.embed", n_summaries=len(summaries)
        ):
            self.embedder.fit(summaries)
            embeddings = self.embedder.encode(summaries)
        sparse_mode = self.top_n_neighbors is not None
        with start_span(
            self.tracer, "closest_items.similarity", sparse=sparse_mode
        ) as span:
            if sparse_mode:
                self._similarity_sparse = truncated_similarity_matrix(
                    embeddings,
                    self.top_n_neighbors,
                    block_size=self.block_size,
                    dtype=self.dtype,
                )
                self._similarity = None
            else:
                self._similarity = cosine_similarity_matrix(
                    embeddings, block_size=self.block_size, dtype=self.dtype
                )
                # A book is trivially most similar to itself; zero the
                # diagonal so self-similarity never contributes to Eq. (1).
                np.fill_diagonal(self._similarity, 0.0)
                self._similarity_sparse = None
            nbytes = self.similarity_nbytes()
            span.set_attrs(similarity_nbytes=nbytes)
        if self.metrics is not None:
            self.metrics.gauge("closest_items.similarity_nbytes").set(
                float(nbytes)
            )

    @property
    def is_sparse(self) -> bool:
        """Whether the fitted similarity is the truncated sparse form."""
        return self._similarity_sparse is not None

    @property
    def similarity(self) -> np.ndarray:
        """The item-item cosine similarity matrix (diagonal zeroed).

        In truncated sparse mode this densifies the CSR matrix — use
        :attr:`similarity_sparse` for the memory-bounded representation.
        """
        if self._similarity is not None:
            return self._similarity
        if self._similarity_sparse is not None:
            return self._similarity_sparse.toarray()
        raise NotFittedError(self.name)

    @property
    def similarity_sparse(self) -> sparse.csr_matrix:
        """The truncated top-N similarity (only in sparse mode)."""
        if self._similarity_sparse is None:
            raise NotFittedError(self.name)
        return self._similarity_sparse

    def similarity_nbytes(self) -> int:
        """Bytes held by the fitted similarity representation."""
        if self._similarity_sparse is not None:
            csr = self._similarity_sparse
            return int(
                csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
            )
        if self._similarity is not None:
            return int(self._similarity.nbytes)
        raise NotFittedError(self.name)

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        user_indices = np.asarray(user_indices, dtype=np.int64)
        train = self.train
        if self._similarity_sparse is not None:
            # Eq. (1) for the whole chunk in one sparse matmul: the binary
            # history rows H (chunk × B) against S^T give
            # (H @ S^T)[u, b] = sum_{i in N_u} s_{b,i}; divide by |N_u|.
            history = train.binary()[user_indices]
            sums = np.asarray(
                (history @ self._similarity_sparse.T).todense(),
                dtype=np.float64,
            )
            counts = np.asarray(history.sum(axis=1)).ravel()
            safe = np.where(counts > 0, counts, 1.0)
            return sums / safe[:, None]
        similarity = self.similarity
        scores = np.zeros((len(user_indices), train.n_items), dtype=np.float64)
        for row, user_index in enumerate(user_indices):
            history = train.user_items(int(user_index))
            if history.size:
                scores[row] = similarity[:, history].mean(axis=1)
        return scores

    def most_similar(self, item_index: int, k: int = 10) -> list[tuple[int, float]]:
        """The ``k`` catalogue items most similar to one item (diagnostics)."""
        if self._similarity_sparse is not None:
            row = np.asarray(
                self._similarity_sparse.getrow(item_index).todense()
            ).ravel()
        else:
            row = self.similarity[item_index]
        top = np.argsort(-row, kind="stable")[:k]
        return [(int(i), float(row[i])) for i in top]

"""Hybrid CB + CF blending (extension, the paper's natural follow-up).

The paper's Fig. 4 shows the content-based model overtaking BPR for users
with long histories while BPR dominates for short ones. The obvious next
step — blending both scores — is implemented here: each component's scores
are rank-normalised per user into [0, 1] and combined with a fixed weight.
The ablation bench sweeps the weight to show where the blend sits between
its parents.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError


class HybridRecommender(Recommender):
    """A per-user rank-normalised blend of two recommenders.

    Args:
        first, second: component recommenders (fitted by this model's own
            ``fit``).
        weight: contribution of ``first``; ``1 - weight`` goes to
            ``second``.
    """

    exclude_seen = True

    def __init__(
        self, first: Recommender, second: Recommender, weight: float = 0.5
    ) -> None:
        super().__init__()
        if not 0.0 <= weight <= 1.0:
            raise ConfigurationError(f"weight must be in [0, 1], got {weight}")
        self.first = first
        self.second = second
        self.weight = weight

    @property
    def name(self) -> str:
        return (
            f"Hybrid({self.first.name} * {self.weight:.2f} + "
            f"{self.second.name} * {1 - self.weight:.2f})"
        )

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        self.first.fit(train, dataset)
        self.second.fit(train, dataset)

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        first = _rank_normalize(self.first.score_users(user_indices))
        second = _rank_normalize(self.second.score_users(user_indices))
        return self.weight * first + (1.0 - self.weight) * second


def _rank_normalize(scores: np.ndarray) -> np.ndarray:
    """Map each row's scores to their normalised ranks in [0, 1].

    Rank normalisation makes heterogeneous score scales (cosine
    similarities vs factor dot products) commensurable before blending.
    """
    order = np.argsort(np.argsort(scores, axis=1, kind="stable"), axis=1)
    denominator = max(scores.shape[1] - 1, 1)
    return order / denominator

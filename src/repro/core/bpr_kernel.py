"""Tiered training kernels for the BPR/WARP trainer (see ``repro.core.bpr``).

Three tiers trade strictness of the determinism contract for speed (the
full table lives in ``docs/determinism.md``):

- **reference** — the float64 per-trial rejection loop with ``np.add.at``
  scatter updates. This is the pre-existing trainer moved here verbatim;
  it remains bit-identical to the historical implementation and is the
  anchor every faster tier is equivalence-tested against.
- **fast** — float32 factors, *pre-drawn* negative sampling (multi-trial
  candidate blocks are drawn up front and scored with one einsum each;
  each row's first margin violator is found with a vectorised
  ``argmax`` instead of a per-trial Python loop), and
  ``np.bincount``-based segment-sum updates replacing the notoriously
  slow ``np.add.at``. Deterministic given the seed, but *not*
  bit-comparable to the reference — equivalence is asserted at the
  converged-KPI level.
- **hogwild** — the fast kernel sharded across worker processes that
  update *shared-memory* factor matrices lock-free (Hogwild!-style SGD).
  Sampling stays deterministic (per-shard seeds derive in the parent via
  :func:`repro.parallel.task_seeds`) but concurrent unsynchronised
  updates race benignly, so the contract relaxes to
  *converges-to-the-same-KPIs* rather than bit-identical.

The shared matrices are anonymous ``mmap`` buffers: under the ``fork``
start method (the :class:`~repro.parallel.WorkerPool` process backend's
preference) children inherit the mapping itself, so every worker writes
the same physical pages as the parent — no pickling, no copies, no
cleanup handles. Platforms without ``fork`` fall back to in-process
training (see :func:`fork_sharing_available`).
"""

from __future__ import annotations

import mmap
import multiprocessing
from typing import TYPE_CHECKING

import numpy as np

from repro.parallel.pool import WorkerPool, chunk_slices, shared_payload, task_seeds
from repro.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.bpr import BPRConfig

#: Recognised training kernels (``BPRConfig.kernel``). The hogwild tier
#: is the fast kernel with ``BPRConfig.workers > 1``, not a third name.
KERNELS = ("reference", "fast")

#: Rejection-redraw rounds for negative sampling. Each user has read a
#: small fraction of the catalogue, so a handful of rounds resolve all
#: but a vanishing fraction of collisions.
RESAMPLE_ROUNDS = 4


# ----------------------------------------------------------------------
# negative sampling
# ----------------------------------------------------------------------


def sample_unseen(
    users: np.ndarray,
    seen_keys: np.ndarray,
    n_items: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw one candidate negative per user, rejecting read books.

    Membership tests run against the sorted ``user * n_items + item``
    key array via ``np.searchsorted``. Two pinned edge behaviours
    (``tests/core/test_bpr_kernel.py``):

    - a key larger than every entry makes ``searchsorted`` land at
      ``len(seen_keys)``; the position is clamped to the last entry,
      whose key cannot match, so the candidate is correctly kept;
    - a user who has read all but one item may exhaust the
      :data:`RESAMPLE_ROUNDS` redraw rounds without hitting the single
      unseen item. Survivor collisions keep their last draw: the pair
      trains "positive vs itself", whose gradient contribution on the
      shared item factor cancels to the regularisation pull alone — a
      rare, unbiased, near-no-op update rather than a bias towards any
      particular negative.

    The RNG call sequence is exactly the historical trainer's (one
    full-width draw plus one redraw per round over the colliding
    subset), which keeps the reference kernel bit-identical to the
    pre-refactor implementation.
    """
    candidates = rng.integers(0, n_items, size=len(users), dtype=np.int64)
    for _ in range(RESAMPLE_ROUNDS):
        keys = users * np.int64(n_items) + candidates
        positions = np.searchsorted(seen_keys, keys)
        positions = np.minimum(positions, len(seen_keys) - 1)
        seen = seen_keys[positions] == keys
        if not seen.any():
            break
        candidates[seen] = rng.integers(
            0, n_items, size=int(seen.sum()), dtype=np.int64
        )
    return candidates


# repro: tier[float32]
def predraw_candidates(
    users: np.ndarray,
    seen_keys: np.ndarray,
    n_items: int,
    max_trials: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw the full ``(batch, max_trials)`` WARP candidate matrix up front.

    Rejection-of-seen runs on the whole matrix: colliding entries are
    redrawn for :data:`RESAMPLE_ROUNDS` rounds, and any survivor is
    *masked invalid* instead of looping further (the fast kernel skips
    invalid slots when searching for the first violator, mirroring the
    reference sampler's keep-the-last-draw no-op semantics).

    Returns:
        ``(candidates, valid)`` — an int64 candidate matrix and a
        boolean mask of the entries that are genuinely unseen.
    """
    shape = (len(users), max_trials)
    total = shape[0] * max_trials
    candidates = rng.integers(0, n_items, size=total, dtype=np.int64)
    base = np.repeat(users * np.int64(n_items), max_trials)
    clamp = max(len(seen_keys) - 1, 0)
    # One full-matrix membership test, then redraw rounds that touch
    # only the (vanishing) colliding subset — the full searchsorted is
    # the expensive step, and repeating it per round would cost more
    # than the whole scoring einsum.
    keys = base + candidates
    positions = np.minimum(np.searchsorted(seen_keys, keys), clamp)
    colliding = np.flatnonzero(seen_keys[positions] == keys)
    for _ in range(RESAMPLE_ROUNDS):
        if colliding.size == 0:
            break
        candidates[colliding] = rng.integers(
            0, n_items, size=colliding.size, dtype=np.int64
        )
        keys = base[colliding] + candidates[colliding]
        positions = np.minimum(np.searchsorted(seen_keys, keys), clamp)
        colliding = colliding[seen_keys[positions] == keys]
    valid = np.ones(total, dtype=bool)
    valid[colliding] = False
    return candidates.reshape(shape), valid.reshape(shape)


def stable_neg_sigmoid(x: np.ndarray) -> np.ndarray:
    """``sigma(-x) = 1 / (1 + e^x)`` without overflow warnings.

    The naive form overflows ``np.exp`` (a ``RuntimeWarning``, an error
    under the test suite's ``filterwarnings``) once ``x`` exceeds ~709.
    This split evaluates ``exp`` on ``-|x|`` only, which never
    overflows:

    - ``x <= 0``: ``1 / (1 + e^x)`` — the exponent equals ``-|x|``, so
      the result is bit-identical to the naive form;
    - ``x > 0``: ``e^-x / (1 + e^-x)``, algebraically equal and within
      one ulp of the naive form wherever the latter is finite.

    Preserves the input dtype (float32 stays float32).
    """
    z = np.exp(-np.abs(x))
    return np.where(x > 0.0, z, x.dtype.type(1.0)) / (x.dtype.type(1.0) + z)


# ----------------------------------------------------------------------
# scatter updates
# ----------------------------------------------------------------------


# repro: tier[float32]
def scatter_add(
    target: np.ndarray, indices: np.ndarray, updates: np.ndarray
) -> None:
    """``target[indices] += updates`` with duplicate indices accumulated.

    A drop-in replacement for ``np.add.at(target, indices, updates)``
    built from one :func:`np.bincount` segment-sum per factor column —
    an order of magnitude faster than the buffered ufunc ``.at`` path
    for the wide-and-short update matrices SGD batches produce.

    ``np.bincount`` accumulates in float64 regardless of input dtype, so
    a float32 ``target`` sees each batch's duplicate-summation performed
    at higher precision before the single rounding on add-back.
    """
    n_rows = target.shape[0]
    for column in range(target.shape[1]):
        target[:, column] += np.bincount(
            indices, weights=updates[:, column], minlength=n_rows
        ).astype(target.dtype, copy=False)


def _apply_updates_reference(
    V: np.ndarray,
    P: np.ndarray,
    users: np.ndarray,
    items: np.ndarray,
    negatives: np.ndarray,
    weight: np.ndarray,
    config: "BPRConfig",
) -> None:
    """The historical ``np.add.at`` update step (bit-exact reference)."""
    lr = config.learning_rate
    reg = config.regularization
    Vu = V[users]
    diff = P[items] - P[negatives]
    w = weight[:, None]
    np.add.at(V, users, lr * (w * diff - reg * Vu))
    np.add.at(P, items, lr * (w * Vu - reg * P[items]))
    np.add.at(P, negatives, lr * (-w * Vu - reg * P[negatives]))


# repro: tier[float32]
def _apply_updates_fast(
    V: np.ndarray,
    P: np.ndarray,
    users: np.ndarray,
    items: np.ndarray,
    negatives: np.ndarray,
    weight: np.ndarray,
    config: "BPRConfig",
) -> None:
    """The float32 segment-sum update step of the fast kernel.

    Positive and negative item updates concatenate into a single
    :func:`scatter_add` over ``P`` so each batch pays two segment-sum
    passes (one per factor matrix) instead of three ``np.add.at`` calls.
    """
    lr = V.dtype.type(config.learning_rate)
    reg = V.dtype.type(config.regularization)
    Vu = V[users]
    Pi = P[items]
    Pn = P[negatives]
    w = weight[:, None]
    scatter_add(V, users, lr * (w * (Pi - Pn) - reg * Vu))
    scatter_add(
        P,
        np.concatenate([items, negatives]),
        np.concatenate([lr * (w * Vu - reg * Pi), lr * (-w * Vu - reg * Pn)]),
    )


# ----------------------------------------------------------------------
# batch kernels
# ----------------------------------------------------------------------


def train_batch_reference(
    V: np.ndarray,
    P: np.ndarray,
    users: np.ndarray,
    items: np.ndarray,
    seen_keys: np.ndarray,
    n_items: int,
    rng: np.random.Generator,
    config: "BPRConfig",
) -> tuple[float, int]:
    """One float64 SGD step; returns (sum of trials, updated pairs).

    This is the pre-refactor ``BPR._train_batch`` moved verbatim (same
    RNG call sequence, same float64 arithmetic, same ``np.add.at``
    updates), so seeded reference training stays bit-identical to the
    historical trainer — ``tests/core/test_bpr_kernel.py`` pins the
    equality against a frozen copy of the original implementation. The
    only intentional change is the numerically stable sigmoid of the
    uniform sampler, which is bit-identical wherever the naive form did
    not overflow for non-positive margins (see :func:`stable_neg_sigmoid`).
    """
    batch = len(users)
    Vu = V[users]
    pos_scores = np.einsum("ij,ij->i", Vu, P[items])

    if config.sampler == "uniform":
        negatives = sample_unseen(users, seen_keys, n_items, rng)
        neg_scores = np.einsum("ij,ij->i", Vu, P[negatives])
        # sigma(-x), the Eq. 3 gradient, via the overflow-safe split.
        weight = stable_neg_sigmoid(pos_scores - neg_scores)
        _apply_updates_reference(V, P, users, items, negatives, weight, config)
        return float(batch), batch

    # WARP: keep drawing negatives until one violates the margin.
    negatives = np.zeros(batch, dtype=np.int64)
    trials = np.zeros(batch, dtype=np.int64)
    unresolved = np.ones(batch, dtype=bool)
    for trial in range(1, config.max_trials + 1):
        active = np.flatnonzero(unresolved)
        if active.size == 0:
            break
        candidates = sample_unseen(users[active], seen_keys, n_items, rng)
        cand_scores = np.einsum("ij,ij->i", Vu[active], P[candidates])
        violating = cand_scores > pos_scores[active] - config.margin
        hit = active[violating]
        negatives[hit] = candidates[violating]
        trials[hit] = trial
        unresolved[hit] = False
    resolved = trials > 0
    if not resolved.any():
        return 0.0, 0
    # Float division: floor division quantises the estimate for small
    # catalogues and collapses to 0 (rescued only by the maximum) as
    # soon as trials exceeds n_items - 1.
    rank_estimate = np.maximum((n_items - 1) / trials[resolved], 1.0)
    weight = np.log1p(rank_estimate) / np.log1p(n_items - 1)
    _apply_updates_reference(
        V, P, users[resolved], items[resolved], negatives[resolved], weight,
        config,
    )
    return float(trials[resolved].sum()), int(resolved.sum())


# repro: tier[float32]
def train_batch_fast(
    V: np.ndarray,
    P: np.ndarray,
    users: np.ndarray,
    items: np.ndarray,
    seen_keys: np.ndarray,
    n_items: int,
    rng: np.random.Generator,
    config: "BPRConfig",
) -> tuple[float, int]:
    """One float32 SGD step over pre-drawn negatives.

    WARP sampling pre-draws multi-trial candidate blocks
    (:func:`predraw_candidates`), scores each block with a single
    batched einsum, and locates each row's first margin violator with a
    vectorised ``argmax`` — no per-trial Python loop. A row's trial
    count is the violator's overall column index + 1, matching the
    reference's "draws needed" semantics; rows none of whose
    ``max_trials`` pre-drawn candidates violate are skipped exactly like
    reference rows that exhaust ``max_trials``.
    """
    batch = len(users)
    Vu = V[users]
    pos_scores = np.einsum("ij,ij->i", Vu, P[items])

    if config.sampler == "uniform":
        negatives = sample_unseen(users, seen_keys, n_items, rng)
        neg_scores = np.einsum("ij,ij->i", Vu, P[negatives])
        weight = stable_neg_sigmoid(pos_scores - neg_scores)
        _apply_updates_fast(V, P, users, items, negatives, weight, config)
        return float(batch), batch

    margin = V.dtype.type(config.margin)
    thresholds = pos_scores - margin
    # Pre-draw candidate blocks of doubling width for still-unresolved
    # rows: each block is one multi-trial draw + rejection, one gather,
    # one einsum, and one argmax. WARP resolves most rows within a
    # couple of trials, so drawing and scoring the full
    # ``(batch, max_trials)`` matrix up front would do
    # ~max_trials / mean_trials times the necessary work; the doubling
    # schedule keeps the Python loop at O(log max_trials) iterations
    # while paying only for the trials rows actually consume.
    negatives = np.zeros(batch, dtype=np.int64)
    trials = np.zeros(batch, dtype=np.int64)
    unresolved = np.arange(batch)
    drawn, width = 0, 4
    while drawn < config.max_trials and unresolved.size:
        width = min(width, config.max_trials - drawn)
        block, valid = predraw_candidates(
            users[unresolved], seen_keys, n_items, width, rng
        )
        block_scores = np.einsum("bf,btf->bt", Vu[unresolved], P[block])
        violating = valid & (block_scores > thresholds[unresolved, None])
        hit = violating.any(axis=1)
        hit_rows = unresolved[hit]
        first = np.argmax(violating[hit], axis=1)
        trials[hit_rows] = drawn + first + 1
        negatives[hit_rows] = block[hit, first]
        unresolved = unresolved[~hit]
        drawn, width = drawn + width, width * 2
    rows = np.flatnonzero(trials)
    if rows.size == 0:
        return 0.0, 0
    rank_estimate = np.maximum((n_items - 1) / trials[rows], 1.0)
    weight = (np.log1p(rank_estimate) / np.log1p(n_items - 1)).astype(V.dtype)
    _apply_updates_fast(
        V, P, users[rows], items[rows], negatives[rows], weight, config
    )
    return float(trials[rows].sum()), int(rows.size)


#: Batch kernel per tier name (the hogwild tier reuses ``fast``).
BATCH_KERNELS = {
    "reference": train_batch_reference,
    "fast": train_batch_fast,
}


# ----------------------------------------------------------------------
# HogWild multi-worker training
# ----------------------------------------------------------------------


def fork_sharing_available() -> bool:
    """Whether forked children can inherit the shared factor mappings.

    HogWild training requires the ``fork`` start method: the anonymous
    ``mmap`` buffers backing the factor matrices are shared with workers
    by inheritance, not pickling. Without ``fork`` (e.g. Windows), the
    trainer transparently falls back to in-process fast-kernel training.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def shared_empty(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    """An array backed by an anonymous shared ``mmap`` buffer.

    Forked child processes inherit the mapping itself (``MAP_SHARED``),
    so parent and every worker read and write the same physical pages —
    the substrate of lock-free HogWild updates. The buffer is released
    with the array by the garbage collector; no explicit handle to
    close.
    """
    count = int(np.prod(shape))
    itemsize = np.dtype(dtype).itemsize
    buffer = mmap.mmap(-1, max(count * itemsize, 1))
    return np.frombuffer(buffer, dtype=dtype, count=count).reshape(shape)


def hogwild_pool(
    V: np.ndarray,
    P: np.ndarray,
    pos_users: np.ndarray,
    pos_items: np.ndarray,
    seen_keys: np.ndarray,
    n_items: int,
    config: "BPRConfig",
    n_workers: int,
) -> WorkerPool:
    """A process pool whose workers share the factor matrices.

    Everything epoch-invariant — the shared (mmap-backed) factors, the
    positive pairs, the seen-key index — travels once through the pool's
    ``shared`` channel; per-epoch tasks then carry only their shard's
    pair indices and seed.
    """
    return WorkerPool(
        n_jobs=n_workers,
        backend="process",
        shared=(V, P, pos_users, pos_items, seen_keys, n_items, config),
    )


def _hogwild_shard(indices: np.ndarray, seed: int) -> tuple[float, int]:
    """Train one shard of an epoch against the shared factors (worker side).

    Runs the fast batch kernel over the shard's positive pairs, writing
    straight into the inherited shared matrices without locks. Returns
    ``(sum of trials, updated pairs)`` for the parent's epoch stats.
    """
    V, P, pos_users, pos_items, seen_keys, n_items, config = shared_payload()
    rng = derive_rng(seed, "bpr", "hogwild.shard")
    trial_total, updated_total = 0.0, 0
    for start in range(0, len(indices), config.batch_size):
        batch = indices[start:start + config.batch_size]
        trials, updated = train_batch_fast(
            V, P, pos_users[batch], pos_items[batch],
            seen_keys, n_items, rng, config,
        )
        trial_total += trials
        updated_total += updated
    return trial_total, updated_total


def hogwild_epoch(
    pool: WorkerPool,
    order: np.ndarray,
    epoch: int,
    seed: int | None,
    n_workers: int,
) -> tuple[float, int]:
    """Run one epoch's positive pairs sharded across the pool's workers.

    The epoch permutation splits into ``n_workers`` contiguous shards;
    each shard's sampling seed derives in the parent
    (:func:`~repro.parallel.task_seeds`), so which negatives a shard
    draws never depends on scheduling. Only the *interleaving* of the
    lock-free factor updates races — the documented relaxed contract.
    """
    shards = chunk_slices(len(order), n_workers)
    seeds = task_seeds(seed, f"bpr.hogwild.epoch{epoch}", len(shards))
    results = pool.starmap(
        _hogwild_shard,
        [(order[piece], shard_seed) for piece, shard_seed in zip(shards, seeds)],
        chunk_size=1,
    )
    trial_total = float(sum(result[0] for result in results))
    updated_total = int(sum(result[1] for result in results))
    return trial_total, updated_total

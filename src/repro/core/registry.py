"""A name -> factory registry for recommenders.

Used by the CLI and the experiment harness so configurations can reference
models by name ("bpr", "closest", ...) and applications can register their
own without patching the library.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import Recommender
from repro.core.bpr import BPR, BPRConfig
from repro.core.closest_items import ClosestItems
from repro.core.item_knn import ItemKNN
from repro.core.most_read import MostReadItems
from repro.core.random_items import RandomItems
from repro.core.sequential import SequentialMarkov
from repro.errors import ConfigurationError, UnknownModelError

_REGISTRY: dict[str, Callable[..., Recommender]] = {}


def register_model(name: str, factory: Callable[..., Recommender]) -> None:
    """Register a recommender factory under ``name`` (lower-case)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(f"model {name!r} is already registered")
    _REGISTRY[key] = factory


def available_models() -> tuple[str, ...]:
    """Registered model names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_model(name: str, **kwargs) -> Recommender:
    """Instantiate a registered recommender by name.

    Keyword arguments are forwarded to the factory, e.g.
    ``create_model("bpr", config=BPRConfig(epochs=5))`` or
    ``create_model("closest", fields=("author",))``.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise UnknownModelError(name, available_models())
    return _REGISTRY[key](**kwargs)


def _bpr_factory(config: BPRConfig | None = None, **kwargs) -> BPR:
    if config is None and kwargs:
        config = BPRConfig(**kwargs)
        kwargs = {}
    if kwargs:
        raise ConfigurationError(
            f"unexpected arguments for bpr: {sorted(kwargs)}"
        )
    return BPR(config)


register_model("random", RandomItems)
register_model("most_read", MostReadItems)
register_model("closest", ClosestItems)
register_model("bpr", _bpr_factory)
register_model("item_knn", ItemKNN)
register_model("sequential", SequentialMarkov)

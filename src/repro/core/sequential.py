"""A sequential (Markov-chain) recommender — the paper's other future work.

The paper notes it ignores "the user specific sequence of loans, namely the
fact that a book has been chosen after another" and points to sequential
recommender systems (Wang et al., IJCAI 2019) as the natural follow-up.
This module implements the classical first-order baseline of that family:

- training counts catalogue-level transitions ``book_t -> book_{t+1}``
  over every user's time-ordered reading sequence;
- transition counts are normalised per source book with add-``alpha``
  smoothing and damped by the destination's global popularity (so the
  chain does not collapse onto bestsellers);
- a user's score for an unread book blends the transition probabilities
  out of their ``window`` most recent readings, most recent first
  (geometric decay).

Because the merged ``readings`` table carries dates, the model consumes the
dataset directly (the interaction matrix alone has no order).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset
from repro.errors import ConfigurationError


class SequentialMarkov(Recommender):
    """First-order Markov-chain recommender over reading sequences.

    Args:
        window: how many of the user's most recent readings seed the
            prediction.
        decay: geometric weight applied per step back in history
            (1.0 = uniform over the window).
        alpha: additive smoothing on transition counts.
    """

    exclude_seen = True

    def __init__(
        self, window: int = 5, decay: float = 0.7, alpha: float = 0.05
    ) -> None:
        super().__init__()
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.window = window
        self.decay = decay
        self.alpha = alpha
        self._transitions: np.ndarray | None = None
        self._recent: dict[int, list[int]] = {}

    @property
    def name(self) -> str:
        return "Sequential Markov"

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        if dataset is None:
            raise ConfigurationError(
                "SequentialMarkov needs the merged dataset's dated readings; "
                "pass dataset= to fit()"
            )
        n_items = train.n_items
        sequences = self._training_sequences(train, dataset)

        rows: list[int] = []
        cols: list[int] = []
        for sequence in sequences.values():
            rows.extend(sequence[:-1])
            cols.extend(sequence[1:])
        counts = sparse.coo_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n_items, n_items)
        ).toarray()
        np.fill_diagonal(counts, 0.0)

        # Row-normalise with smoothing, then damp destination popularity so
        # the chain ranks "what follows this book" rather than "what is
        # popular overall".
        smoothed = counts + self.alpha
        transition = smoothed / smoothed.sum(axis=1, keepdims=True)
        in_degree = counts.sum(axis=0)
        damping = 1.0 / np.sqrt(1.0 + in_degree)
        self._transitions = transition * damping[None, :]
        self._recent = {
            user: sequence[-self.window:]
            for user, sequence in sequences.items()
        }

    def _training_sequences(
        self, train: InteractionMatrix, dataset: MergedDataset
    ) -> dict[int, list[int]]:
        """Each user's *training* readings as a time-ordered item-index list.

        Holdout books are excluded (they are not in the training matrix);
        repeat borrows keep their first occurrence only.
        """
        dated: dict[int, list[tuple[np.datetime64, int]]] = {}
        users = train.users
        items = train.items
        train_sets = {
            u: set(train.user_items(u).tolist()) for u in range(train.n_users)
        }
        seen: set[tuple[int, int]] = set()
        readings = dataset.readings
        for user_id, book_id, read_date in zip(
            readings["user_id"], readings["book_id"], readings["read_date"]
        ):
            user_id = str(user_id)
            book_id = int(book_id)
            if user_id not in users or book_id not in items:
                continue
            user = users.index_of(user_id)
            item = items.index_of(book_id)
            if item not in train_sets[user] or (user, item) in seen:
                continue
            seen.add((user, item))
            dated.setdefault(user, []).append((read_date, item))
        return {
            user: [item for _, item in sorted(pairs, key=lambda p: (p[0], p[1]))]
            for user, pairs in dated.items()
        }

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        if self._transitions is None:
            from repro.errors import NotFittedError

            raise NotFittedError(self.name)
        n_items = self._transitions.shape[0]
        scores = np.zeros((len(user_indices), n_items), dtype=np.float64)
        for row, user_index in enumerate(np.asarray(user_indices)):
            recent = self._recent.get(int(user_index), [])
            weight = 1.0
            for item in reversed(recent):
                scores[row] += weight * self._transitions[item]
                weight *= self.decay
        return scores

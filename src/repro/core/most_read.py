"""The Most Read Items baseline (paper Section 4).

Counts how often each book was read in the training set and recommends the
global top-``k`` to every user. Per the paper, "the same recommendations
apply to all users" — already-read books are *not* removed, which is why
this baseline underperforms even Random Items in Table 1: the most popular
books tend to already sit in an active user's history.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Recommender
from repro.core.interactions import InteractionMatrix
from repro.datasets.merged import MergedDataset


class MostReadItems(Recommender):
    """Global popularity ranking.

    Args:
        personalized: when True, deviates from the paper by masking each
            user's already-read books (the conventional popularity
            baseline). Default False reproduces the paper's variant.
    """

    def __init__(self, personalized: bool = False) -> None:
        super().__init__()
        self.exclude_seen = personalized

    @property
    def name(self) -> str:
        return "Most Read Items" + (" (personalized)" if self.exclude_seen else "")

    def _fit(self, train: InteractionMatrix, dataset: MergedDataset | None) -> None:
        counts = train.item_counts().astype(np.float64)
        # Tiny index-based tiebreak keeps the ranking total and deterministic.
        self._scores = counts - np.arange(len(counts)) * 1e-9

    def score_users(self, user_indices: np.ndarray) -> np.ndarray:
        return np.tile(self._scores, (len(user_indices), 1))

    def top_items(self, k: int) -> np.ndarray:
        """The global top-``k`` item indices (identical for every user)."""
        return np.argsort(-self._scores, kind="stable")[:k]
